//! Cross-crate integration: the distributed pipeline under fault
//! injection (ISSUE 3 tentpole). The per-algorithm chaos coverage lives
//! in `crates/distsim/tests/chaos.rs`; this file pins the end-to-end
//! pipeline contract: valid matchings under every standing plan,
//! deterministic replay, zero-fault equality with the perfect-network
//! pipeline, and the ack/retry resilience layer recovering matching size
//! at a visible (and accounted) round cost.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::distsim::algorithms::pipeline::{
    distributed_approx_mcm, distributed_approx_mcm_faulty, distributed_maximal_baseline,
    distributed_maximal_baseline_faulty, distributed_randomized_maximal,
    distributed_randomized_maximal_faulty, DistributedOutcome,
};
use sparsimatch::distsim::{FaultPlan, FaultRates, FaultStats, ResilienceParams};
use sparsimatch::prelude::*;

fn chaos_graph() -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    clique_union(
        CliqueUnionConfig {
            n: 120,
            diversity: 2,
            clique_size: 24,
        },
        &mut rng,
    )
}

fn standing_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan::new(
                seed,
                FaultRates {
                    drop: 0.3,
                    ..Default::default()
                },
            )
            .with_horizon(40),
        ),
        (
            "mixed",
            FaultPlan::new(
                seed,
                FaultRates {
                    drop: 0.25,
                    duplicate: 0.25,
                    reorder: 0.5,
                    ..Default::default()
                },
            )
            .with_horizon(60),
        ),
        (
            "crash",
            FaultPlan::new(
                seed,
                FaultRates {
                    crash: 0.15,
                    ..Default::default()
                },
            )
            .with_crash_period(4)
            .with_horizon(48),
        ),
    ]
}

fn assert_outcomes_equal(a: &DistributedOutcome, b: &DistributedOutcome, ctx: &str) {
    let pa: Vec<_> = a.matching.pairs().collect();
    let pb: Vec<_> = b.matching.pairs().collect();
    assert_eq!(pa, pb, "{ctx}: matchings differ");
    assert_eq!(a.metrics, b.metrics, "{ctx}: metrics differ");
    assert_eq!(a.phase_rounds, b.phase_rounds, "{ctx}: phase rounds differ");
    assert_eq!(a.faults, b.faults, "{ctx}: fault counters differ");
    assert_eq!(
        a.composed_max_degree, b.composed_max_degree,
        "{ctx}: composed degree differs"
    );
}

#[test]
fn pipeline_stays_valid_and_replayable_under_every_plan() {
    let g = chaos_graph();
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    type Variant =
        fn(&CsrGraph, &SparsifierParams, u64, &FaultPlan, ResilienceParams) -> DistributedOutcome;
    let variants: [(&str, Variant); 3] = [
        ("approx_mcm", distributed_approx_mcm_faulty),
        ("maximal_baseline", distributed_maximal_baseline_faulty),
        ("randomized_maximal", distributed_randomized_maximal_faulty),
    ];
    for (vname, run) in variants {
        for (pname, plan) in standing_plans(41) {
            let ctx = format!("{vname}/{pname}");
            let out = run(&g, &params, 7, &plan, ResilienceParams::off());
            assert!(out.matching.is_valid_for(&g), "{ctx}: invalid matching");
            let again = run(&g, &params, 7, &plan, ResilienceParams::off());
            assert_outcomes_equal(&out, &again, &ctx);
            // Faults actually happened — the plan is not a silent no-op.
            assert!(
                out.faults.dropped + out.faults.duplicated + out.faults.crashed_rounds > 0,
                "{ctx}: plan injected nothing"
            );
        }
    }
}

#[test]
fn zero_fault_pipeline_equals_perfect_network_exactly() {
    let g = chaos_graph();
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    let plan = FaultPlan::none();
    let off = ResilienceParams::off();

    let ctxs = [
        (
            distributed_approx_mcm(&g, &params, 7),
            distributed_approx_mcm_faulty(&g, &params, 7, &plan, off),
            "approx_mcm",
        ),
        (
            distributed_maximal_baseline(&g, &params, 7),
            distributed_maximal_baseline_faulty(&g, &params, 7, &plan, off),
            "maximal_baseline",
        ),
        (
            distributed_randomized_maximal(&g, &params, 7),
            distributed_randomized_maximal_faulty(&g, &params, 7, &plan, off),
            "randomized_maximal",
        ),
    ];
    for (perfect, faulty, ctx) in &ctxs {
        assert_outcomes_equal(perfect, faulty, ctx);
        assert_eq!(faulty.faults, FaultStats::default(), "{ctx}");
    }
}

#[test]
fn resilience_recovers_matching_size_at_a_round_cost() {
    let g = chaos_graph();
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    // Heavy early losses: 60% drops in the first 3 rounds hit the
    // one-round sparsifier phases hard.
    let plan = FaultPlan::new(
        2,
        FaultRates {
            drop: 0.6,
            ..Default::default()
        },
    )
    .with_horizon(3);

    let fragile =
        distributed_maximal_baseline_faulty(&g, &params, 7, &plan, ResilienceParams::off());
    let hardened =
        distributed_maximal_baseline_faulty(&g, &params, 7, &plan, ResilienceParams::retry(3));
    let baseline = distributed_maximal_baseline(&g, &params, 7);

    assert!(fragile.matching.is_valid_for(&g));
    assert!(hardened.matching.is_valid_for(&g));
    // Retries win back sparsifier edges the drops destroyed.
    assert!(
        hardened.matching.len() >= fragile.matching.len(),
        "resilience made things worse: {} < {}",
        hardened.matching.len(),
        fragile.matching.len()
    );
    assert!(hardened.faults.retries > 0, "retry layer never fired");
    // The recovery is paid for in accounted rounds and messages (acks).
    assert!(hardened.metrics.rounds > fragile.metrics.rounds);
    assert!(hardened.metrics.messages > fragile.metrics.messages);
    // And with losses confined to 3 rounds + 3 retries each, the hardened
    // run should land close to the fault-free baseline.
    assert!(
        hardened.matching.len() * 10 >= baseline.matching.len() * 9,
        "hardened {} too far below baseline {}",
        hardened.matching.len(),
        baseline.matching.len()
    );
}

#[test]
fn drop_rate_degrades_matching_size_monotonically_in_expectation() {
    // The sweep experiment's core claim, pinned at test scale: averaged
    // over seeds, matching size does not increase when the drop rate does.
    let g = chaos_graph();
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    let exact = maximum_matching(&g).len();
    let mut means = Vec::new();
    for drop in [0.0, 0.4, 0.95] {
        let mut total = 0usize;
        for seed in 0..5u64 {
            let plan = FaultPlan::new(
                seed,
                FaultRates {
                    drop,
                    ..Default::default()
                },
            )
            .with_horizon(2); // both one-round sparsifier phases disrupted
            let out = distributed_maximal_baseline_faulty(
                &g,
                &params,
                seed,
                &plan,
                ResilienceParams::off(),
            );
            assert!(out.matching.is_valid_for(&g));
            total += out.matching.len();
        }
        means.push(total as f64 / 5.0);
    }
    assert!(
        means[0] >= means[1] && means[1] >= means[2],
        "matching size not degrading with drop rate: {means:?}"
    );
    assert!(means[0] as usize * 2 >= exact, "p=0 sanity bound");
}
