//! Cross-crate integration: the streaming and MPC applications agree with
//! the sequential pipeline on the same inputs.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::distsim::mpc::{mpc_approx_mcm, MpcConfig, MpcError};
use sparsimatch::prelude::*;
use sparsimatch::stream::StreamingSparsifierMatcher;

fn dense_host(n: usize, rng: &mut StdRng) -> CsrGraph {
    clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: n / 3,
        },
        rng,
    )
}

#[test]
fn all_three_models_meet_the_guarantee_on_one_input() {
    let mut rng = StdRng::seed_from_u64(0x30);
    let n = 300;
    let g = dense_host(n, &mut rng);
    let eps = 0.3;
    let params = SparsifierParams::practical(2, eps);
    let exact = maximum_matching(&g).len();
    let bound = 1.0 + eps;

    // Sequential.
    let seq = approx_mcm_via_sparsifier(&g, &params, 11, 2).unwrap();
    assert!(exact as f64 <= bound * seq.matching.len() as f64);

    // Streaming (random arrival order).
    let mut stream: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
    stream.shuffle(&mut rng);
    let mut sm = StreamingSparsifierMatcher::new(n, params);
    for (u, v) in stream {
        sm.push_edge(u, v, &mut rng);
    }
    let (stream_m, stream_stats) = sm.finish();
    assert!(stream_m.is_valid_for(&g));
    assert!(exact as f64 <= bound * stream_m.len() as f64);
    assert!(stream_stats.edges_retained < g.num_edges());

    // MPC.
    let cfg = MpcConfig {
        machines: 8,
        memory_words: 4 * g.num_edges(),
    };
    let mpc = mpc_approx_mcm(&g, &params, &cfg, 9).unwrap();
    assert!(mpc.matching.is_valid_for(&g));
    assert!(exact as f64 <= bound * mpc.matching.len() as f64);
    assert_eq!(mpc.rounds, 2);
}

#[test]
fn mpc_memory_errors_are_reported_not_silent() {
    let mut rng = StdRng::seed_from_u64(0x31);
    let g = dense_host(200, &mut rng);
    let params = SparsifierParams::practical(2, 0.5);
    let cfg = MpcConfig {
        machines: 4,
        memory_words: 100,
    };
    match mpc_approx_mcm(&g, &params, &cfg, 1) {
        Err(MpcError::MemoryExceeded {
            round: 1,
            load,
            cap,
        }) => {
            assert!(load > cap);
        }
        other => panic!("expected a round-1 memory error, got {other:?}"),
    }
}

#[test]
fn streaming_memory_scales_with_delta_not_with_stream_length() {
    let mut rng = StdRng::seed_from_u64(0x32);
    let n = 240;
    let sparse_host = dense_host(n, &mut rng);
    let denser_host = clique(n);
    let params = SparsifierParams::practical(2, 0.4);
    let mut retained = Vec::new();
    for g in [&sparse_host, &denser_host] {
        let mut sm = StreamingSparsifierMatcher::new(n, params);
        let mut stream: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
        stream.shuffle(&mut rng);
        for (u, v) in stream {
            sm.push_edge(u, v, &mut rng);
        }
        retained.push(sm.finish().1.edges_retained);
    }
    // The clique stream is ~2.5x longer but retention stays within the
    // n·mark_cap budget either way.
    assert!(retained[1] <= n * params.mark_cap());
    assert!(retained[0] <= n * params.mark_cap());
}
