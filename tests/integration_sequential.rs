//! Cross-crate integration: the sequential Theorem 3.1 pipeline against
//! the exact blossom ground truth on every benchmark family.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::core::lower_bounds::build_plain_sparsifier;
use sparsimatch::graph::analysis::independence::neighborhood_independence_at_most;
use sparsimatch::prelude::*;

fn families(n: usize, rng: &mut StdRng) -> Vec<(&'static str, CsrGraph, usize)> {
    vec![
        ("clique", clique(n), 1),
        (
            "clique-union",
            clique_union(
                CliqueUnionConfig {
                    n,
                    diversity: 2,
                    clique_size: n / 4,
                },
                rng,
            ),
            2,
        ),
        (
            "unit-disk",
            unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 14.0), rng),
            5,
        ),
        (
            "line-graph",
            line_graph(&gnp(n / 4, 16.0 / (n / 4) as f64, rng)),
            2,
        ),
    ]
}

#[test]
fn pipeline_meets_guarantee_on_all_families() {
    let mut rng = StdRng::seed_from_u64(0xA);
    for (name, g, beta) in families(240, &mut rng) {
        if g.num_edges() == 0 {
            continue;
        }
        let eps = 0.3;
        let params = SparsifierParams::practical(beta, eps);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &params, 0xA, 2).unwrap();
        assert!(r.matching.is_valid_for(&g), "{name}: invalid matching");
        assert!(
            exact as f64 <= (1.0 + eps) * r.matching.len().max(1) as f64,
            "{name}: ratio {} vs {}",
            exact,
            r.matching.len()
        );
    }
}

#[test]
fn family_beta_certificates_hold() {
    let mut rng = StdRng::seed_from_u64(0xB);
    for (name, g, beta) in families(120, &mut rng) {
        assert!(
            neighborhood_independence_at_most(&g, beta),
            "{name}: beta certificate failed"
        );
    }
}

#[test]
fn sparsifier_matching_is_matching_of_original() {
    // The central soundness property: any matching of G_Δ is verbatim a
    // matching of G.
    let mut rng = StdRng::seed_from_u64(0xC);
    let g = clique_union(
        CliqueUnionConfig {
            n: 150,
            diversity: 3,
            clique_size: 30,
        },
        &mut rng,
    );
    for delta in [1usize, 2, 8, 32] {
        let s = build_plain_sparsifier(&g, delta, &mut rng);
        let m = maximum_matching(&s);
        assert!(m.is_valid_for(&g), "delta {delta}");
    }
}

#[test]
fn probes_beat_edge_count_on_dense_input() {
    let g = clique(900); // m ≈ 404k
    let params = SparsifierParams::practical(1, 0.4);
    let r = approx_mcm_via_sparsifier(&g, &params, 0xD, 4).unwrap();
    assert!(
        r.probes.total() < g.num_edges() as u64 / 2,
        "probes {} vs m {}",
        r.probes.total(),
        g.num_edges()
    );
}

#[test]
fn facade_prelude_is_sufficient_for_the_readme_flow() {
    // The README quickstart must compile and hold using only the prelude.
    let mut rng = StdRng::seed_from_u64(1);
    let g = clique_union(
        CliqueUnionConfig {
            n: 400,
            diversity: 2,
            clique_size: 100,
        },
        &mut rng,
    );
    let params = SparsifierParams::practical(2, 0.2);
    let result = approx_mcm_via_sparsifier(&g, &params, 1, 4).unwrap();
    let exact = maximum_matching(&g).len();
    assert!(result.matching.len() as f64 >= exact as f64 / 1.2);
}
