//! Cross-crate integration: the dynamic Theorem 3.5 scheme under both
//! adversary models, audited against exact recomputation.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::dynamic::adversary::{Policy, StreamAdversary};
use sparsimatch::dynamic::harness::run_dynamic;
use sparsimatch::dynamic::scheme::DynamicMatcher;
use sparsimatch::prelude::*;

fn host(n: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: n / 5,
        },
        &mut rng,
    )
}

#[test]
fn oblivious_stream_stays_accurate() {
    let mut rng = StdRng::seed_from_u64(1);
    let h = host(80, 11);
    let mut adv = StreamAdversary::new(&h, Policy::Oblivious { p_insert: 0.7 });
    let mut dm = DynamicMatcher::new(80, SparsifierParams::practical(2, 0.5), 5);
    let s = run_dynamic(&mut dm, &mut adv, 4000, 400, &mut rng);
    assert!(s.worst_ratio < 1.8, "ratio {}", s.worst_ratio);
    assert!(s.audits >= 9);
}

#[test]
fn adaptive_stream_stays_accurate() {
    let mut rng = StdRng::seed_from_u64(2);
    let h = host(80, 13);
    let mut adv = StreamAdversary::new(&h, Policy::AdaptiveDeleteMatched { p_insert: 0.65 });
    let mut dm = DynamicMatcher::new(80, SparsifierParams::practical(2, 0.4), 7);
    let s = run_dynamic(&mut dm, &mut adv, 4000, 400, &mut rng);
    assert!(s.worst_ratio < 2.0, "adaptive ratio {}", s.worst_ratio);
}

#[test]
fn update_work_flat_while_n_quadruples() {
    let mut maxes = Vec::new();
    for n in [100usize, 400] {
        let mut rng = StdRng::seed_from_u64(3);
        let h = host(n, 17);
        let mut adv = StreamAdversary::new(&h, Policy::Oblivious { p_insert: 0.7 });
        let mut dm = DynamicMatcher::new(n, SparsifierParams::practical(2, 0.5), 9);
        let s = run_dynamic(&mut dm, &mut adv, 5000, 0, &mut rng);
        maxes.push(s.max_work);
    }
    assert!(
        maxes[1] <= maxes[0] * 3,
        "max work grew {maxes:?}: not flat in n"
    );
}

#[test]
fn served_matching_always_valid_under_churn() {
    let mut rng = StdRng::seed_from_u64(4);
    let h = host(60, 19);
    let mut adv = StreamAdversary::new(&h, Policy::AdaptiveDeleteMatched { p_insert: 0.55 });
    let mut dm = DynamicMatcher::new(60, SparsifierParams::practical(2, 0.5), 21);
    // run_dynamic audits validity at every audit point; audit densely.
    let s = run_dynamic(&mut dm, &mut adv, 1200, 40, &mut rng);
    assert_eq!(s.updates, 1200);
}
