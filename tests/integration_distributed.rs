//! Cross-crate integration: the distributed Theorem 3.2/3.3 pipeline.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::distsim::algorithms::pipeline::{
    distributed_approx_mcm, distributed_maximal_baseline,
};
use sparsimatch::prelude::*;

#[test]
fn distributed_matching_is_valid_and_accurate() {
    let mut rng = StdRng::seed_from_u64(0x21);
    let g = clique_union(
        CliqueUnionConfig {
            n: 240,
            diversity: 2,
            clique_size: 48,
        },
        &mut rng,
    );
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    let out = distributed_approx_mcm(&g, &params, 77);
    assert!(out.matching.is_valid_for(&g));
    let exact = maximum_matching(&g).len();
    assert!(
        exact as f64 <= 2.5 * out.matching.len().max(1) as f64,
        "gross accuracy check: {} vs {}",
        exact,
        out.matching.len()
    );
    // The two sparsifier phases are single rounds each.
    assert_eq!(out.phase_rounds.0, 1);
    assert_eq!(out.phase_rounds.1, 1);
}

#[test]
fn augmented_pipeline_beats_maximal_baseline() {
    let mut rng = StdRng::seed_from_u64(0x22);
    // A graph where maximal matchings can be ~half of maximum: long paths.
    let g = unit_disk(
        UnitDiskConfig::with_expected_degree(500, 1.0, 6.0),
        &mut rng,
    );
    let params = SparsifierParams::with_delta(5, 0.34, 10);
    let full = distributed_approx_mcm(&g, &params, 3);
    let base = distributed_maximal_baseline(&g, &params, 3);
    assert!(full.matching.len() >= base.matching.len());
}

#[test]
fn rounds_stay_flat_as_n_grows() {
    let mut rounds = Vec::new();
    for n in [200usize, 800, 3200] {
        let mut rng = StdRng::seed_from_u64(0x23 + n as u64);
        let g = unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 12.0), &mut rng);
        let params = SparsifierParams::with_delta(5, 0.5, 6);
        let out = distributed_approx_mcm(&g, &params, n as u64);
        rounds.push(out.metrics.rounds);
    }
    assert!(
        rounds[2] <= 3 * rounds[0] + 100,
        "rounds {rounds:?} grow too fast with n"
    );
}

#[test]
fn message_bits_account_one_bit_sparsifier_marks() {
    let g = clique(120);
    let mut net = sparsimatch::distsim::Network::new(&g);
    let params = SparsifierParams::with_delta(1, 0.5, 4);
    let _ =
        sparsimatch::distsim::algorithms::sparsify::distributed_sparsifier(&mut net, &params, 5);
    let m = net.metrics();
    assert_eq!(m.messages, m.bits, "sparsifier messages are exactly 1 bit");
    assert_eq!(m.messages, 120 * 4);
}
