//! Large-scale stress tests. Heavy by design, so they are `#[ignore]`d by
//! default; run with
//!
//! ```text
//! cargo test --release --test integration_scale -- --ignored
//! ```

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::prelude::*;

#[test]
#[ignore = "scale stress: ~1M-edge sequential pipeline"]
fn sequential_pipeline_at_million_edges() {
    let mut rng = StdRng::seed_from_u64(0x51);
    let n = 3_000;
    let g = clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: n / 3,
        },
        &mut rng,
    );
    assert!(g.num_edges() > 900_000, "m = {}", g.num_edges());
    let params = SparsifierParams::practical(2, 0.3);
    let r = approx_mcm_via_sparsifier(&g, &params, 0x51, 4).unwrap();
    assert!(r.matching.is_valid_for(&g));
    // The perfect matching is n/2 here; the pipeline must land within eps.
    assert!(r.matching.len() as f64 * 1.3 >= (n / 2) as f64);
    assert!(r.probes.total() < g.num_edges() as u64 / 2);
}

#[test]
#[ignore = "scale stress: 20k-node distributed network"]
fn distributed_pipeline_at_twenty_thousand_nodes() {
    use sparsimatch::distsim::algorithms::pipeline::distributed_approx_mcm;
    let mut rng = StdRng::seed_from_u64(0x52);
    let n = 20_000;
    let g = unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 12.0), &mut rng);
    let params = SparsifierParams::with_delta(5, 0.5, 6);
    let out = distributed_approx_mcm(&g, &params, 0x52);
    assert!(out.matching.is_valid_for(&g));
    // Rounds must stay in the hundreds even at this n (log* flat).
    assert!(
        out.metrics.rounds < 1_000,
        "rounds = {}",
        out.metrics.rounds
    );
}

#[test]
#[ignore = "scale stress: 100k-update dynamic stream"]
fn dynamic_stream_at_hundred_thousand_updates() {
    use sparsimatch::dynamic::adversary::{Policy, StreamAdversary};
    use sparsimatch::dynamic::harness::run_dynamic;
    use sparsimatch::dynamic::scheme::DynamicMatcher;
    let mut rng = StdRng::seed_from_u64(0x53);
    let n = 1_000;
    let host = clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: n / 4,
        },
        &mut rng,
    );
    let mut adv = StreamAdversary::new(&host, Policy::AdaptiveDeleteMatched { p_insert: 0.7 });
    let mut dm = DynamicMatcher::new(n, SparsifierParams::practical(2, 0.5), 3);
    let s = run_dynamic(&mut dm, &mut adv, 100_000, 20_000, &mut rng);
    assert!(s.worst_ratio < 1.8, "ratio {}", s.worst_ratio);
}
