#![warn(missing_docs)]

//! # sparsimatch — matching sparsifiers for bounded neighborhood independence
//!
//! A Rust reproduction of *“A Unified Sparsification Approach for Matching
//! Problems in Graphs of Bounded Neighborhood Independence”* (Milenković &
//! Solomon, SPAA 2020).
//!
//! The headline object is the random matching sparsifier `G_Δ`: every vertex
//! marks `Δ = Θ((β/ε)·log(1/ε))` random incident edges, and w.h.p. the marked
//! subgraph preserves the maximum matching size within `1 + ε`. Because the
//! construction is purely local, it yields:
//!
//! * a **sequential** `(1+ε)`-approximate maximum matching in time *sublinear
//!   in the number of edges* ([`core::pipeline`]),
//! * a **distributed** `(1+ε)`-approximate matching in
//!   `(β/ε)^O(1/ε) + O(1/ε²)·log* n` rounds with sublinear message complexity
//!   ([`distsim`]),
//! * a **fully dynamic** `(1+ε)`-approximate matching with worst-case update
//!   time `O((β/ε³)·log(1/ε))` against adaptive adversaries ([`dynamic`]).
//!
//! This facade crate re-exports the whole workspace; see each sub-crate for
//! details, `DESIGN.md` for the architecture, and `EXPERIMENTS.md` for the
//! reproduced claims.
//!
//! ## Quick start
//!
//! ```
//! use sparsimatch::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // A dense bounded-β graph: union of 2 clique layers => β ≤ 2.
//! let g = clique_union(CliqueUnionConfig { n: 400, diversity: 2, clique_size: 100 }, &mut rng);
//!
//! // Build the sparsifier and a (1+eps)-approximate matching on it.
//! // Seed 1, four worker threads — the result depends only on the seed.
//! let params = SparsifierParams::practical(2, 0.2);
//! let result = approx_mcm_via_sparsifier(&g, &params, 1, 4).unwrap();
//!
//! let exact = maximum_matching(&g).len();
//! assert!(result.matching.len() as f64 >= exact as f64 / 1.2);
//! ```

pub use sparsimatch_core as core;
pub use sparsimatch_distsim as distsim;
pub use sparsimatch_dynamic as dynamic;
pub use sparsimatch_graph as graph;
pub use sparsimatch_matching as matching;
pub use sparsimatch_stream as stream;

/// One-stop imports for applications.
pub mod prelude {
    pub use sparsimatch_core::params::SparsifierParams;
    pub use sparsimatch_core::pipeline::{approx_mcm_via_sparsifier, PipelineResult};
    pub use sparsimatch_core::sparsifier::{build_sparsifier, Sparsifier};
    pub use sparsimatch_graph::generators::{
        bipartite_gnp, clique, clique_minus_edge, clique_union, complete_bipartite, cycle, gnp,
        line_graph, path, star, two_cliques_bridge, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    pub use sparsimatch_graph::{AdjacencyOracle, CsrGraph, GraphBuilder, VertexId};
    pub use sparsimatch_matching::blossom::maximum_matching;
    pub use sparsimatch_matching::bounded_aug::approx_maximum_matching;
    pub use sparsimatch_matching::greedy::greedy_maximal_matching;
    pub use sparsimatch_matching::Matching;
}
