//! Property tests for edge-list I/O: write→read round-trips exactly, and
//! reading adversarial bytes never panics — every failure is a typed
//! [`ReadError`] (ISSUE 3 satellite: untrusted-input hardening).

use proptest::prelude::*;
use sparsimatch_graph::csr::from_edges;
use sparsimatch_graph::io::{read_edge_list, write_edge_list, ReadError};

const N: usize = 24;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..90)
}

/// Lines assembled from a small adversarial alphabet: numbers around the
/// limits, negatives, floats, junk tokens, comments, blanks.
fn arb_hostile_text() -> impl Strategy<Value = String> {
    let token = proptest::collection::vec(0u8..14, 1..4).prop_map(|picks| {
        picks
            .iter()
            .map(|p| match p {
                0 => "0".to_string(),
                1 => "1".to_string(),
                2 => "7".to_string(),
                3 => "134217728".to_string(), // MAX_VERTICES + 1
                4 => "268435457".to_string(), // MAX_EDGES + 1
                5 => "18446744073709551615".to_string(), // u64::MAX
                6 => "99999999999999999999999".to_string(), // > u64::MAX
                7 => "-3".to_string(),
                8 => "2.5".to_string(),
                9 => "x".to_string(),
                10 => "# c".to_string(),
                11 => String::new(),
                12 => "3 3".to_string(),
                _ => "0 1".to_string(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    });
    proptest::collection::vec(token, 0..12).prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip_is_exact(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write to Vec cannot fail");
        let h = read_edge_list(std::io::Cursor::new(buf)).expect("own output must parse");
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        let ge: Vec<_> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let he: Vec<_> = h.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        prop_assert_eq!(ge, he);
    }

    #[test]
    fn hostile_input_never_panics(text in arb_hostile_text()) {
        // The assertion is the absence of a panic/abort: any outcome must
        // be a normal return. Errors must also render (Display is part of
        // the CLI contract).
        match read_edge_list(std::io::Cursor::new(text)) {
            Ok(g) => prop_assert!(g.num_vertices() <= sparsimatch_graph::io::MAX_VERTICES),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn oversized_headers_are_rejected_without_allocation(
        n in 134_217_729u64..u64::MAX / 4,
        m in 268_435_457u64..u64::MAX / 4,
    ) {
        // Giant counts must fail fast with TooLarge — reaching this error
        // at proptest speed is itself evidence nothing was sized from them.
        let text = format!("{n} {m}\n");
        match read_edge_list(std::io::Cursor::new(text)) {
            Err(ReadError::TooLarge { line: 1, .. }) => {}
            other => prop_assert!(false, "expected TooLarge, got {:?}", other.map(|g| g.num_vertices())),
        }
    }
}
