//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::analysis::arboricity::{arboricity_bounds, degeneracy, max_density};
use sparsimatch_graph::csr::from_edges;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_graph::sparse_array::SparseArray;
use std::collections::HashSet;

const N: usize = 24;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..120)
}

#[derive(Clone, Debug)]
enum ArrayOp {
    Set(usize, u32),
    Clear,
}

fn arb_ops() -> impl Strategy<Value = Vec<ArrayOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..32usize, any::<u32>()).prop_map(|(i, v)| ArrayOp::Set(i, v)),
            Just(ArrayOp::Clear),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn sparse_array_matches_dense_model(ops in arb_ops()) {
        let mut sparse = SparseArray::new(32, 0u32);
        let mut dense = [0u32; 32];
        for op in ops {
            match op {
                ArrayOp::Set(i, v) => {
                    sparse.set(i, v);
                    dense[i] = v;
                }
                ArrayOp::Clear => {
                    sparse.clear();
                    dense.iter_mut().for_each(|x| *x = 0);
                }
            }
        }
        for (i, &d) in dense.iter().enumerate().take(32) {
            prop_assert_eq!(*sparse.get(i), d);
        }
    }

    #[test]
    fn csr_degree_sum_is_twice_edges(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let degsum: usize = (0..N).map(|v| g.degree(VertexId::new(v))).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn csr_has_edge_agrees_with_edge_list(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let set: HashSet<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        for u in 0..N as u32 {
            for v in 0..N as u32 {
                let expected = u != v && (set.contains(&(u.min(v), u.max(v))));
                prop_assert_eq!(g.has_edge(VertexId(u), VertexId(v)), expected);
            }
        }
    }

    #[test]
    fn full_edge_subgraph_is_identity(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let ids: Vec<_> = g.edges().map(|(e, _, _)| e).collect();
        let h = g.edge_subgraph(ids.into_iter());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for (_, u, v) in g.edges() {
            prop_assert!(h.has_edge(u, v));
        }
    }

    #[test]
    fn adjlist_tracks_reference_model(edges in arb_edges(), deletions in arb_edges()) {
        let mut g = AdjListGraph::new(N);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for (u, v) in edges {
            if u == v { continue; }
            let key = ((u.min(v)) as u32, (u.max(v)) as u32);
            prop_assert_eq!(
                g.insert_edge(VertexId::new(u), VertexId::new(v)),
                model.insert(key)
            );
        }
        for (u, v) in deletions {
            if u == v { continue; }
            let key = ((u.min(v)) as u32, (u.max(v)) as u32);
            prop_assert_eq!(
                g.delete_edge(VertexId::new(u), VertexId::new(v)),
                model.remove(&key)
            );
        }
        prop_assert_eq!(g.num_edges(), model.len());
        let csr = g.to_csr();
        prop_assert_eq!(csr.num_edges(), model.len());
    }

    #[test]
    fn degeneracy_below_max_degree(edges in arb_edges()) {
        let g = from_edges(N, edges);
        prop_assert!(degeneracy(&g) <= g.max_degree());
    }

    #[test]
    fn arboricity_window_is_sound(edges in arb_edges()) {
        let g = from_edges(N, edges);
        if g.num_edges() == 0 { return Ok(()); }
        let (lo, hi) = arboricity_bounds(&g);
        prop_assert!(lo <= hi);
        prop_assert!(hi - lo <= 1, "window ({lo},{hi}) wider than 1");
        // Nash–Williams global lower bound: ceil(m / (n'-1)) <= alpha <= hi.
        let n_prime = g.num_non_isolated();
        if n_prime >= 2 {
            let global = g.num_edges().div_ceil(n_prime - 1);
            prop_assert!(hi >= global);
        }
    }

    #[test]
    fn edge_list_io_roundtrip(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let mut buf = Vec::new();
        sparsimatch_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let h = sparsimatch_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for (_, u, v) in g.edges() {
            prop_assert!(h.has_edge(u, v));
        }
    }

    #[test]
    fn diversity_dominates_beta(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let beta = sparsimatch_graph::analysis::independence::neighborhood_independence_exact(&g);
        if let Some(div) = sparsimatch_graph::analysis::diversity::diversity(&g, 500_000) {
            prop_assert!(beta <= div, "beta {} > diversity {}", beta, div);
        }
    }

    #[test]
    fn max_density_at_least_global_density(edges in arb_edges()) {
        let g = from_edges(N, edges);
        if g.num_edges() == 0 { return Ok(()); }
        let (num, den) = max_density(&g);
        // rho* >= m / n.
        prop_assert!(num as u128 * g.num_vertices() as u128 >= g.num_edges() as u128 * den as u128);
        prop_assert!(den >= 1 && den <= g.num_vertices() as u64);
    }
}
