//! A plain bit-packed vertex set.
//!
//! The matching searchers keep several per-vertex boolean overlays
//! (even-level marks, blossom membership, LCA marks) that were stored as
//! `Vec<bool>` — one byte per vertex, and a full byte-wise sweep to
//! clear. [`BitSet`] packs them 64 per word, cutting the overlay
//! footprint 8× and turning whole-set clears into word fills, while
//! keeping `clear`-not-drop reuse semantics so warm scratch paths stay
//! allocation-free.

/// A fixed-universe set of `usize` keys packed 64 per `u64` word.
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the empty universe.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Number of keys in the universe (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize the universe to `n` keys with every bit false, reusing the
    /// backing words (allocation-free once grown to the high-water `n`).
    pub fn clear_and_resize(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
        self.len = n;
    }

    /// Set every bit false, keeping the universe size.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether `i` is in the set.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Insert `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Remove `i`.
    #[inline(always)]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bytes of backing capacity held (for scratch accounting).
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset_roundtrip() {
        let mut s = BitSet::new();
        s.clear_and_resize(130);
        assert_eq!(s.len(), 130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 8);
        s.unset(64);
        assert!(!s.get(64));
        assert!(s.get(63) && s.get(65));
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn resize_is_allocation_free_when_warm() {
        let mut s = BitSet::new();
        s.clear_and_resize(1000);
        s.set(999);
        let cap = s.capacity_bytes();
        s.clear_and_resize(500);
        assert_eq!(s.capacity_bytes(), cap);
        assert_eq!(s.count_ones(), 0);
        s.clear_and_resize(1000);
        assert_eq!(s.capacity_bytes(), cap);
        assert!(!s.get(999), "bits must come back false after regrow");
    }

    #[test]
    fn packs_eight_keys_per_byte() {
        let mut s = BitSet::new();
        s.clear_and_resize(64 * 100);
        assert_eq!(s.capacity_bytes(), 800);
    }
}
