//! Unstructured random graphs.
//!
//! These have no β guarantee — they exercise the matching substrate
//! (blossom, Hopcroft–Karp, bounded augmentation) on general inputs and
//! provide null-model comparisons for the sparsifier experiments.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` via geometric edge skipping (O(n + m) expected).
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(VertexId::new(u), VertexId::new(v));
            }
        }
        return b.build();
    }
    // Iterate over the C(n,2) potential edges, skipping ahead by
    // geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut idx: usize = 0;
    // First gap.
    let advance = |rng: &mut dyn rand::RngCore| -> usize {
        let u: f64 = rand::Rng::random_range(&mut *rng, f64::MIN_POSITIVE..1.0);
        (u.ln() / log_q).floor() as usize + 1
    };
    idx += advance(rng);
    while idx <= total {
        // Map linear index (1-based) to the (u, v) pair.
        let (u, v) = unrank_pair(idx - 1, n);
        b.add_edge(VertexId::new(u), VertexId::new(v));
        idx += advance(rng);
    }
    b.build()
}

/// Map a linear index in `0..C(n,2)` to the corresponding pair `(u, v)`,
/// `u < v`, in lexicographic order.
fn unrank_pair(mut k: usize, n: usize) -> (usize, usize) {
    // Row u contributes (n - 1 - u) pairs.
    let mut u = 0usize;
    loop {
        let row = n - 1 - u;
        if k < row {
            return (u, u + 1 + k);
        }
        k -= row;
        u += 1;
    }
}

/// Random bipartite graph: left side `0..a`, right side `a..a+b`, each of
/// the `a·b` cross pairs included independently with probability `p`.
/// Runs in `O(a + b + p·a·b)` expected time via geometric gap skipping,
/// like [`gnp`] — not `O(a·b)`.
pub fn bipartite_gnp(a: usize, b: usize, p: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut builder = GraphBuilder::new(a + b);
    if p == 0.0 || a == 0 || b == 0 {
        return builder.build();
    }
    if p >= 1.0 {
        for u in 0..a {
            for v in 0..b {
                builder.add_edge(VertexId::new(u), VertexId::new(a + v));
            }
        }
        return builder.build();
    }
    // Walk the a·b cross pairs in row-major order, skipping ahead by
    // geometrically distributed gaps; pair k is (k / b, a + k % b).
    let log_q = (1.0 - p).ln();
    let total = a * b;
    let advance = |rng: &mut dyn rand::RngCore| -> usize {
        let u: f64 = rand::Rng::random_range(&mut *rng, f64::MIN_POSITIVE..1.0);
        (u.ln() / log_q).floor() as usize + 1
    };
    let mut idx: usize = advance(rng);
    while idx <= total {
        let k = idx - 1;
        builder.add_edge(VertexId::new(k / b), VertexId::new(a + k % b));
        idx += advance(rng);
    }
    builder.build()
}

/// Power-law (scale-free) graph via preferential attachment
/// (Barabási–Albert): vertices `attach..n` arrive one at a time and each
/// connects to `attach` distinct earlier vertices chosen with probability
/// proportional to current degree, so `m = (n − attach)·attach` exactly
/// and the degree distribution develops the heavy tail the
/// massive-graph literature benchmarks against. No β guarantee — this is
/// the `huge` bench tier's unstructured skew family, where a handful of
/// hub vertices dwarf the mark cap while the bulk sits near `2·attach`.
///
/// Runs in `O(m)` expected time using the classic repeated-endpoint
/// list: every half-edge contributes one entry, so a uniform draw from
/// the list is a degree-proportional draw over vertices.
pub fn power_law(n: usize, attach: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(attach >= 1, "each arrival must attach at least one edge");
    if n <= attach {
        return GraphBuilder::new(n).build();
    }
    let mut b = GraphBuilder::new(n);
    // One entry per half-edge; reserves 2m up front.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n - attach) * attach);
    // Bootstrap: the first arrival connects to all of the seed vertices
    // (uniform — there are no degrees to prefer yet).
    for t in 0..attach {
        b.add_edge(VertexId::new(t), VertexId::new(attach));
        endpoints.push(t as u32);
        endpoints.push(attach as u32);
    }
    let mut picked: Vec<u32> = Vec::with_capacity(attach);
    for v in (attach + 1)..n {
        picked.clear();
        while picked.len() < attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(VertexId::new(t as usize), VertexId::new(v));
            endpoints.push(t);
        }
        // The arrival's half-edges go in after its draws, so a vertex
        // never attaches to itself.
        for _ in 0..attach {
            endpoints.push(v as u32);
        }
    }
    b.build()
}

/// A graph with a *planted* perfect matching (`n` even): the matching
/// `(2i, 2i+1)` plus `extra_per_vertex` random noise edges per vertex.
/// Returns the graph; by construction `MCM = n/2`, giving matching tests a
/// known optimum without running an exact solver.
pub fn random_matching_instance(n: usize, extra_per_vertex: usize, rng: &mut impl Rng) -> CsrGraph {
    assert!(n.is_multiple_of(2), "planted perfect matching needs even n");
    let mut b = GraphBuilder::new(n);
    for i in 0..n / 2 {
        b.add_edge(VertexId::new(2 * i), VertexId::new(2 * i + 1));
    }
    for u in 0..n {
        for _ in 0..extra_per_vertex {
            let v = rng.random_range(0..n);
            if v != u {
                b.add_edge(VertexId::new(u), VertexId::new(v));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn unrank_covers_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for k in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(k, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300;
        let p = 0.1;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.15 * expected,
            "expected ≈ {expected}, got {actual}"
        );
    }

    #[test]
    fn bipartite_respects_sides() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = bipartite_gnp(20, 30, 0.3, &mut rng);
        for (_, u, v) in g.edges() {
            let left = |x: VertexId| x.index() < 20;
            assert_ne!(left(u), left(v), "edge within one side");
        }
    }

    #[test]
    fn power_law_has_exact_edge_count_and_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let (n, attach) = (3_000, 4);
        let g = power_law(n, attach, &mut rng);
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_edges(), (n - attach) * attach);
        let max_deg = (0..n).map(|v| g.degree(VertexId::new(v))).max().unwrap();
        // Preferential attachment concentrates degree on early hubs far
        // beyond the 2·attach mean.
        assert!(
            max_deg > 10 * attach,
            "no hub emerged: max degree {max_deg}"
        );
        for (_, u, v) in g.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn power_law_degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(power_law(3, 5, &mut rng).num_edges(), 0);
        let g = power_law(5, 1, &mut rng);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn planted_matching_present() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_matching_instance(50, 3, &mut rng);
        for i in 0..25 {
            assert!(g.has_edge(VertexId::new(2 * i), VertexId::new(2 * i + 1)));
        }
    }
}
