//! Textual family specs, e.g. `clique-union:2:100` or `gnp:0.05`.
//!
//! One parser shared by every frontend that accepts a family by name —
//! the `sparsimatch generate` subcommand and the serve daemon's
//! `load_graph` request — so the spec grammar cannot drift between them.

use super::{
    clique, clique_union, cycle, gnp, line_graph, path, unit_disk, CliqueUnionConfig,
    UnitDiskConfig,
};
use crate::csr::CsrGraph;
use rand::Rng;

/// Why a family spec was rejected.
///
/// The two variants matter to frontends: an [`UnknownFamily`] is a usage
/// error (the user asked for something that does not exist), while a
/// [`BadValue`] names a family we know but with an unusable parameter.
///
/// [`UnknownFamily`]: FamilySpecError::UnknownFamily
/// [`BadValue`]: FamilySpecError::BadValue
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FamilySpecError {
    /// The leading family name (or its arity) is not one we generate.
    UnknownFamily(String),
    /// A parameter failed to parse or is semantically invalid
    /// (non-finite, out-of-range probability, non-positive degree).
    BadValue(String),
}

impl std::fmt::Display for FamilySpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilySpecError::UnknownFamily(m) | FamilySpecError::BadValue(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FamilySpecError {}

fn require_probability(name: &str, p: f64) -> Result<(), FamilySpecError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FamilySpecError::BadValue(format!(
            "{name} must be a probability in [0, 1], got {p}"
        )))
    }
}

fn require_positive(name: &str, x: f64) -> Result<(), FamilySpecError> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        Err(FamilySpecError::BadValue(format!(
            "{name} must be a finite positive number, got {x}"
        )))
    }
}

/// Build a graph on `n` vertices from a family spec.
///
/// Recognized specs (`:`-separated):
///
/// * `clique`
/// * `clique-union:<layers>:<clique_size>`
/// * `unit-disk:<avg_degree>`
/// * `gnp:<p>`
/// * `line-gnp:<p>`
/// * `path`
/// * `cycle`
///
/// Randomized families draw from `rng`; deterministic shapes ignore it.
pub fn family_from_spec(
    spec: &str,
    n: usize,
    rng: &mut impl Rng,
) -> Result<CsrGraph, FamilySpecError> {
    let bad =
        |e: std::num::ParseIntError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    let bad_f =
        |e: std::num::ParseFloatError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["clique"] => Ok(clique(n)),
        ["clique-union", layers, size] => {
            let diversity: usize = layers.parse().map_err(bad)?;
            let clique_size: usize = size.parse().map_err(bad)?;
            Ok(clique_union(
                CliqueUnionConfig {
                    n,
                    diversity,
                    clique_size,
                },
                rng,
            ))
        }
        ["unit-disk", deg] => {
            let avg: f64 = deg.parse().map_err(bad_f)?;
            require_positive("unit-disk average degree", avg)?;
            Ok(unit_disk(
                UnitDiskConfig::with_expected_degree(n, 1.0, avg),
                rng,
            ))
        }
        ["gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("gnp edge probability", p)?;
            Ok(gnp(n, p, rng))
        }
        ["line-gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("line-gnp edge probability", p)?;
            Ok(line_graph(&gnp(n, p, rng)))
        }
        ["path"] => Ok(path(n)),
        ["cycle"] => Ok(cycle(n)),
        _ => Err(FamilySpecError::UnknownFamily(format!(
            "unknown family {spec:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn error_classification() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            family_from_spec("nonsense", 5, &mut rng),
            Err(FamilySpecError::UnknownFamily(_))
        ));
        // Known family, wrong arity: also unknown (the spec as a whole).
        assert!(matches!(
            family_from_spec("clique:3", 5, &mut rng),
            Err(FamilySpecError::UnknownFamily(_))
        ));
        assert!(matches!(
            family_from_spec("clique-union:x:3", 5, &mut rng),
            Err(FamilySpecError::BadValue(_))
        ));
        for spec in ["gnp:NaN", "gnp:1.5", "gnp:-0.1", "unit-disk:0"] {
            assert!(
                matches!(
                    family_from_spec(spec, 5, &mut rng),
                    Err(FamilySpecError::BadValue(_))
                ),
                "{spec}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let build = |spec: &str| {
            let mut rng = StdRng::seed_from_u64(9);
            family_from_spec(spec, 40, &mut rng).unwrap()
        };
        for spec in ["clique-union:2:10", "gnp:0.2", "unit-disk:4"] {
            let (a, b) = (build(spec), build(spec));
            assert_eq!(a.num_edges(), b.num_edges(), "{spec}");
        }
    }
}
