//! Textual family specs, e.g. `clique-union:2:100` or `gnp:0.05`.
//!
//! One parser shared by every frontend that accepts a family by name —
//! the `sparsimatch generate` subcommand and the serve daemon's
//! `load_graph` request — so the spec grammar cannot drift between them.

use super::{
    clique, clique_union, cycle, gnp, line_graph, path, unit_disk, CliqueUnionConfig,
    UnitDiskConfig,
};
use crate::csr::CsrGraph;
use rand::Rng;

/// Why a family spec was rejected.
///
/// The two variants matter to frontends: an [`UnknownFamily`] is a usage
/// error (the user asked for something that does not exist), while a
/// [`BadValue`] names a family we know but with an unusable parameter.
///
/// [`UnknownFamily`]: FamilySpecError::UnknownFamily
/// [`BadValue`]: FamilySpecError::BadValue
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FamilySpecError {
    /// The leading family name (or its arity) is not one we generate.
    UnknownFamily(String),
    /// A parameter failed to parse or is semantically invalid
    /// (non-finite, out-of-range probability, non-positive degree).
    BadValue(String),
}

impl std::fmt::Display for FamilySpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilySpecError::UnknownFamily(m) | FamilySpecError::BadValue(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FamilySpecError {}

fn require_probability(name: &str, p: f64) -> Result<(), FamilySpecError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FamilySpecError::BadValue(format!(
            "{name} must be a probability in [0, 1], got {p}"
        )))
    }
}

fn require_positive(name: &str, x: f64) -> Result<(), FamilySpecError> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        Err(FamilySpecError::BadValue(format!(
            "{name} must be a finite positive number, got {x}"
        )))
    }
}

fn require_at_least(name: &str, x: usize, min: usize) -> Result<(), FamilySpecError> {
    if x >= min {
        Ok(())
    } else {
        Err(FamilySpecError::BadValue(format!(
            "{name} must be at least {min}, got {x}"
        )))
    }
}

/// Build a graph on `n` vertices from a family spec.
///
/// Recognized specs (`:`-separated):
///
/// * `clique`
/// * `clique-union:<layers>:<clique_size>`
/// * `unit-disk:<avg_degree>`
/// * `gnp:<p>`
/// * `line-gnp:<p>`
/// * `path`
/// * `cycle`
///
/// Randomized families draw from `rng`; deterministic shapes ignore it.
pub fn family_from_spec(
    spec: &str,
    n: usize,
    rng: &mut impl Rng,
) -> Result<CsrGraph, FamilySpecError> {
    let bad =
        |e: std::num::ParseIntError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    let bad_f =
        |e: std::num::ParseFloatError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["clique"] => Ok(clique(n)),
        ["clique-union", layers, size] => {
            let diversity: usize = layers.parse().map_err(bad)?;
            let clique_size: usize = size.parse().map_err(bad)?;
            require_at_least("clique-union layers", diversity, 1)?;
            require_at_least("clique-union clique size", clique_size, 2)?;
            Ok(clique_union(
                CliqueUnionConfig {
                    n,
                    diversity,
                    clique_size,
                },
                rng,
            ))
        }
        ["unit-disk", deg] => {
            let avg: f64 = deg.parse().map_err(bad_f)?;
            require_positive("unit-disk average degree", avg)?;
            Ok(unit_disk(
                UnitDiskConfig::with_expected_degree(n, 1.0, avg),
                rng,
            ))
        }
        ["gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("gnp edge probability", p)?;
            Ok(gnp(n, p, rng))
        }
        ["line-gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("line-gnp edge probability", p)?;
            Ok(line_graph(&gnp(n, p, rng)))
        }
        ["path"] => Ok(path(n)),
        ["cycle"] => {
            require_at_least("cycle length", n, 3)?;
            Ok(cycle(n))
        }
        _ => Err(FamilySpecError::UnknownFamily(format!(
            "unknown family {spec:?}"
        ))),
    }
}

/// Size estimate for the graph [`family_from_spec`] would build.
///
/// The counts are exact for deterministic shapes and *expectations* for
/// randomized families (`clique-union` gets an exact upper bound).
/// `vertices` differs from `n` only for `line-gnp`, whose vertex count
/// is the base graph's edge count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilySizeEstimate {
    /// Vertices of the generated graph.
    pub vertices: u128,
    /// Edges: exact or expected, per the family.
    pub edges: u128,
}

/// Estimate the size of [`family_from_spec`]'s output without building
/// anything.
///
/// Frontends that take specs from untrusted clients (the serve daemon's
/// `load_graph`) check this against their input caps *before*
/// generating, so a hostile `clique` on 10⁶ vertices is rejected up
/// front instead of materializing ~5·10¹¹ edges. Accepts and rejects
/// exactly the specs [`family_from_spec`] does (same grammar, same
/// parameter validation), which a test in this module pins.
pub fn family_size_estimate(spec: &str, n: usize) -> Result<FamilySizeEstimate, FamilySpecError> {
    let bad =
        |e: std::num::ParseIntError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    let bad_f =
        |e: std::num::ParseFloatError| FamilySpecError::BadValue(format!("family {spec:?}: {e}"));
    // Expectations are computed in f64 and converted with the saturating
    // float-to-int cast, so absurd parameters overflow toward u128::MAX
    // (and get rejected by the caller's cap) instead of wrapping.
    let sat = |x: f64| x.ceil().max(0.0) as u128;
    let n128 = n as u128;
    let nf = n as f64;
    let all_pairs = n128 * n128.saturating_sub(1) / 2;
    let parts: Vec<&str> = spec.split(':').collect();
    let (vertices, edges) = match parts.as_slice() {
        ["clique"] => (n128, all_pairs),
        ["clique-union", layers, size] => {
            let diversity: usize = layers.parse().map_err(bad)?;
            let clique_size: usize = size.parse().map_err(bad)?;
            require_at_least("clique-union layers", diversity, 1)?;
            require_at_least("clique-union clique size", clique_size, 2)?;
            // Per layer each vertex gains at most clique_size - 1
            // neighbors; layers may overlap, so this is an upper bound.
            (
                n128,
                (diversity as u128) * n128 * (clique_size as u128 - 1) / 2,
            )
        }
        ["unit-disk", deg] => {
            let avg: f64 = deg.parse().map_err(bad_f)?;
            require_positive("unit-disk average degree", avg)?;
            (n128, sat(nf * avg / 2.0))
        }
        ["gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("gnp edge probability", p)?;
            (n128, sat(all_pairs as f64 * p))
        }
        ["line-gnp", p] => {
            let p: f64 = p.parse().map_err(bad_f)?;
            require_probability("line-gnp edge probability", p)?;
            // L(G) has one vertex per base edge and one edge per path of
            // length 2 in the base: E[Σ_v C(deg v, 2)] = n·C(n-1, 2)·p².
            let m0 = sat(all_pairs as f64 * p);
            let wedges = nf * (nf - 1.0).max(0.0) * (nf - 2.0).max(0.0) / 2.0 * p * p;
            (m0, sat(wedges))
        }
        ["path"] => (n128, n128.saturating_sub(1)),
        ["cycle"] => {
            require_at_least("cycle length", n, 3)?;
            (n128, n128)
        }
        _ => {
            return Err(FamilySpecError::UnknownFamily(format!(
                "unknown family {spec:?}"
            )))
        }
    };
    Ok(FamilySizeEstimate { vertices, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn error_classification() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            family_from_spec("nonsense", 5, &mut rng),
            Err(FamilySpecError::UnknownFamily(_))
        ));
        // Known family, wrong arity: also unknown (the spec as a whole).
        assert!(matches!(
            family_from_spec("clique:3", 5, &mut rng),
            Err(FamilySpecError::UnknownFamily(_))
        ));
        assert!(matches!(
            family_from_spec("clique-union:x:3", 5, &mut rng),
            Err(FamilySpecError::BadValue(_))
        ));
        for spec in [
            "gnp:NaN",
            "gnp:1.5",
            "gnp:-0.1",
            "unit-disk:0",
            "clique-union:0:5",
            "clique-union:2:1",
        ] {
            assert!(
                matches!(
                    family_from_spec(spec, 5, &mut rng),
                    Err(FamilySpecError::BadValue(_))
                ),
                "{spec}"
            );
        }
        // A 2-cycle is rejected, not an assert failure.
        assert!(matches!(
            family_from_spec("cycle", 2, &mut rng),
            Err(FamilySpecError::BadValue(_))
        ));
    }

    #[test]
    fn estimate_matches_grammar_and_bounds_actual_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        // Same accept/reject decisions as family_from_spec, and for
        // accepted specs the estimate is exact (deterministic families)
        // or an upper bound within small-sample noise (randomized ones,
        // checked with 4x slack on the expectation).
        let specs = [
            "clique",
            "clique-union:2:10",
            "unit-disk:4",
            "gnp:0.2",
            "line-gnp:0.15",
            "path",
            "cycle",
            "nonsense",
            "clique:3",
            "clique-union:x:3",
            "clique-union:0:5",
            "gnp:1.5",
            "unit-disk:0",
        ];
        for spec in specs {
            for n in [0usize, 1, 2, 3, 40] {
                let est = family_size_estimate(spec, n);
                let got = family_from_spec(spec, n, &mut rng);
                match (&est, &got) {
                    (Ok(est), Ok(g)) => {
                        if !spec.starts_with("line-gnp") {
                            assert_eq!(est.vertices, g.num_vertices() as u128, "{spec} n={n}");
                        }
                        let slack = if spec.contains(':') && !spec.starts_with("clique-union") {
                            4
                        } else {
                            1
                        };
                        assert!(
                            g.num_edges() as u128 <= slack * est.edges.max(8),
                            "{spec} n={n}: {} edges vs estimate {}",
                            g.num_edges(),
                            est.edges
                        );
                    }
                    (Err(ea), Err(eb)) => assert_eq!(
                        std::mem::discriminant(ea),
                        std::mem::discriminant(eb),
                        "{spec} n={n}"
                    ),
                    _ => panic!("{spec} n={n}: estimate {est:?} vs generate {got:?}"),
                }
            }
        }
    }

    #[test]
    fn deterministic_estimates_are_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        for (spec, n) in [("clique", 13usize), ("path", 9), ("cycle", 9)] {
            let est = family_size_estimate(spec, n).unwrap();
            let g = family_from_spec(spec, n, &mut rng).unwrap();
            assert_eq!(est.vertices, g.num_vertices() as u128, "{spec}");
            assert_eq!(est.edges, g.num_edges() as u128, "{spec}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let build = |spec: &str| {
            let mut rng = StdRng::seed_from_u64(9);
            family_from_spec(spec, 40, &mut rng).unwrap()
        };
        for spec in ["clique-union:2:10", "gnp:0.2", "unit-disk:4"] {
            let (a, b) = (build(spec), build(spec));
            assert_eq!(a.num_edges(), b.num_edges(), "{spec}");
        }
    }
}
