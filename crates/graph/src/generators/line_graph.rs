//! Line graphs.
//!
//! The line graph `L(G)` has one vertex per edge of `G`, with two vertices
//! adjacent iff the corresponding edges share an endpoint. Line graphs have
//! neighborhood independence number at most 2 (the paper's first example):
//! the neighbors of an edge `{u, v}` split into edges through `u` and edges
//! through `v`, and edges sharing an endpoint are pairwise adjacent, so any
//! independent set in the neighborhood has ≤ 1 edge per side.
//!
//! A matching in `L(G)` pairs up adjacent edges of `G`, which models
//! conflict-free pairing of tasks that share a resource — see
//! `examples/job_assignment.rs`.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;

/// The line graph of `base`. Vertex `e` of the result corresponds to the
/// undirected edge with [`EdgeId`](crate::ids::EdgeId) `e` in `base`.
///
/// Size warning: `L(G)` has `Σ_v C(deg v, 2)` edges, quadratic in the
/// maximum degree of `base`.
pub fn line_graph(base: &CsrGraph) -> CsrGraph {
    let m = base.num_edges();
    let mut b = GraphBuilder::new(m);
    for v in 0..base.num_vertices() {
        let v = VertexId::new(v);
        let incident: Vec<u32> = base.incident(v).map(|(_, e)| e.0).collect();
        for i in 0..incident.len() {
            for j in (i + 1)..incident.len() {
                b.add_edge(VertexId(incident[i]), VertexId(incident[j]));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_exact;
    use crate::csr::from_edges;
    use crate::generators::{cycle, path, star};

    #[test]
    fn line_of_path_is_shorter_path() {
        let g = line_graph(&path(5)); // P5 has 4 edges -> L = P4
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn line_of_cycle_is_same_cycle() {
        let g = line_graph(&cycle(7));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 7);
        assert!((0..7).all(|v| g.degree(VertexId::new(v)) == 2));
    }

    #[test]
    fn line_of_star_is_clique() {
        let g = line_graph(&star(6)); // K_{1,5} -> K_5
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn beta_at_most_two() {
        // A graph with varied structure: two triangles sharing a vertex plus
        // a pendant path.
        let base = from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (4, 5),
                (5, 6),
            ],
        );
        let lg = line_graph(&base);
        assert!(neighborhood_independence_exact(&lg) <= 2);
    }

    #[test]
    fn line_graph_beta_of_random_base() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let base = crate::generators::gnp(18, 0.3, &mut rng);
        let lg = line_graph(&base);
        if lg.num_edges() > 0 {
            assert!(neighborhood_independence_exact(&lg) <= 2);
        }
    }
}
