//! Small deterministic graph shapes used across the test suites.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;

/// The path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(VertexId::new(v - 1), VertexId::new(v));
    }
    b.build()
}

/// The cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n {
        b.add_edge(VertexId::new(v - 1), VertexId::new(v));
    }
    b.add_edge(VertexId::new(n - 1), VertexId::new(0));
    b.build()
}

/// The star `K_{1,n-1}` with center 0. Neighborhood independence of the
/// center is `n - 1`, the worst case — useful for β-sensitivity tests.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(VertexId(0), VertexId::new(v));
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` with left side `0..a` and right
/// side `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut builder = GraphBuilder::with_capacity(a + b, a * b);
    for u in 0..a {
        for v in 0..b {
            builder.add_edge(VertexId::new(u), VertexId::new(a + v));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(VertexId::new(v)), 2);
        }
    }

    #[test]
    fn star_counts() {
        let g = star(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(VertexId(0)), 6);
        assert_eq!(g.degree(VertexId(3)), 1);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(VertexId(0)), 4);
        assert_eq!(g.degree(VertexId(5)), 3);
        // No edges within a side.
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(3), VertexId(4)));
    }
}
