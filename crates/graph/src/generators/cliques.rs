//! Clique-based families: the densest bounded-β graphs and the paper's
//! lower-bound instances.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// The complete graph `K_n`. β(K_n) = 1 and m = Θ(n²): the canonical
/// "reading the input is already too slow" instance of the paper.
pub fn clique(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(VertexId::new(u), VertexId::new(v));
        }
    }
    b.build()
}

/// `K_n` minus the single edge `{missing.0, missing.1}` — the family `G_n`
/// of Lemma 2.13. β = 2 (the two endpoints of the non-edge are the only
/// non-adjacent pair in any neighborhood), and the graph has a perfect
/// matching for even `n`.
pub fn clique_minus_edge(n: usize, missing: (usize, usize)) -> CsrGraph {
    assert!(missing.0 != missing.1 && missing.0 < n && missing.1 < n);
    let miss = (
        missing.0.min(missing.1) as u32,
        missing.0.max(missing.1) as u32,
    );
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2 - 1);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if (u, v) != miss {
                b.add_edge(VertexId(u), VertexId(v));
            }
        }
    }
    b.build()
}

/// The Observation 2.14 instance: two disjoint cliques `A = K_half` and
/// `B = K_half` with `half` **odd**, plus a single bridge edge between
/// vertex 0 (in A) and vertex `half` (in B).
///
/// Every MCM has size `half` (= n/2) and must contain the bridge: without
/// it, each odd clique matches at most `(half-1)/2` pairs internally, so
/// any bridge-free matching has size `half - 1`.
///
/// Returns the graph and the bridge endpoints.
pub fn two_cliques_bridge(half: usize) -> (CsrGraph, (VertexId, VertexId)) {
    assert!(half >= 3 && half % 2 == 1, "each side must be odd and ≥ 3");
    let n = 2 * half;
    let mut b = GraphBuilder::with_capacity(n, half * (half - 1) + 1);
    for u in 0..half {
        for v in (u + 1)..half {
            b.add_edge(VertexId::new(u), VertexId::new(v));
            b.add_edge(VertexId::new(half + u), VertexId::new(half + v));
        }
    }
    let bridge = (VertexId(0), VertexId::new(half));
    b.add_edge(bridge.0, bridge.1);
    (b.build(), bridge)
}

/// Configuration for [`clique_union`].
#[derive(Clone, Copy, Debug)]
pub struct CliqueUnionConfig {
    /// Number of vertices.
    pub n: usize,
    /// Diversity bound: each vertex joins at most this many cliques, so the
    /// generated graph has β ≤ `diversity`.
    pub diversity: usize,
    /// Size of each clique (the last clique of a layer may be smaller).
    pub clique_size: usize,
}

/// A random *bounded-diversity* graph: the union of `diversity` independent
/// random partitions of the vertex set into cliques of size `clique_size`.
///
/// Every vertex belongs to at most `diversity` maximal cliques, so the
/// neighborhood independence number is at most `diversity` (each clique
/// contributes at most one vertex to any independent set — Section 1.1 of
/// the paper). Density is tunable: `m ≈ n · diversity · (clique_size-1)/2`,
/// so with `clique_size = Θ(n)` these graphs are dense while keeping β
/// constant.
pub fn clique_union(cfg: CliqueUnionConfig, rng: &mut impl Rng) -> CsrGraph {
    assert!(cfg.clique_size >= 2, "cliques of size < 2 add no edges");
    assert!(cfg.diversity >= 1);
    let mut b = GraphBuilder::new(cfg.n);
    let mut order: Vec<u32> = (0..cfg.n as u32).collect();
    for _layer in 0..cfg.diversity {
        order.shuffle(rng);
        for group in order.chunks(cfg.clique_size) {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    b.add_edge(VertexId(group[i]), VertexId(group[j]));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_exact;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn clique_counts() {
        let g = clique(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(neighborhood_independence_exact(&g), 1);
    }

    #[test]
    fn clique_minus_edge_shape() {
        let g = clique_minus_edge(6, (1, 4));
        assert_eq!(g.num_edges(), 14);
        assert!(!g.has_edge(VertexId(1), VertexId(4)));
        assert!(g.has_edge(VertexId(1), VertexId(3)));
        assert_eq!(neighborhood_independence_exact(&g), 2);
    }

    #[test]
    fn bridge_instance_shape() {
        let (g, (a, b)) = two_cliques_bridge(5);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 2 * 10 + 1);
        assert!(g.has_edge(a, b));
        // The two sides are otherwise disconnected.
        for u in 0..5u32 {
            for v in 5..10u32 {
                if (u, v) != (a.0, b.0) {
                    assert!(!g.has_edge(VertexId(u), VertexId(v)));
                }
            }
        }
    }

    #[test]
    fn clique_union_respects_diversity_beta_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        for diversity in 1..=3 {
            let g = clique_union(
                CliqueUnionConfig {
                    n: 40,
                    diversity,
                    clique_size: 8,
                },
                &mut rng,
            );
            let beta = neighborhood_independence_exact(&g);
            assert!(
                beta <= diversity,
                "diversity {diversity} produced beta {beta}"
            );
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn clique_union_density_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let sparse = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 4,
            },
            &mut rng,
        );
        let dense = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 50,
            },
            &mut rng,
        );
        assert!(dense.num_edges() > 4 * sparse.num_edges());
    }
}
