//! Graph families for the experiments.
//!
//! The paper's theorems are parameterized by the neighborhood independence
//! number β, so the generators here come with *certified* β bounds:
//!
//! * [`line_graph`] — β ≤ 2 (the canonical example in the paper);
//! * [`unit_disk`] — β ≤ 5 (geometric packing bound; bounded growth family);
//! * [`clique_union`] — β ≤ k for graphs of diversity k (each vertex in at
//!   most k maximal cliques);
//! * [`clique`] — β = 1, the densest possible instance;
//! * [`clique_minus_edge`] — β = 2, the Lemma 2.13 lower-bound family;
//! * [`two_cliques_bridge`] — the Observation 2.14 instance whose unique
//!   MCM must use a single bridge edge;
//! * [`gnp`], [`bipartite_gnp`] — unstructured random graphs for general
//!   matching tests (β unbounded);
//! * [`power_law`] — preferential-attachment scale-free graphs (β
//!   unbounded), the degree-skew family of the `huge` bench tier;
//! * plus small deterministic shapes ([`path`], [`cycle`], [`star`],
//!   [`complete_bipartite`]) used throughout the test suites.

mod cliques;
mod geometric;
mod interval;
mod line_graph;
mod random;
mod shapes;
mod spec;

pub use cliques::{clique, clique_minus_edge, clique_union, two_cliques_bridge, CliqueUnionConfig};
pub use geometric::{
    build_disk_graph, build_disk_intersection_graph, disk_graph, unit_disk, DiskConfig,
    UnitDiskConfig,
};
pub use interval::{build_unit_interval_graph, proper_interval, proper_interval_with_degree};
pub use line_graph::line_graph;
pub use random::{bipartite_gnp, gnp, power_law, random_matching_instance};
pub use shapes::{complete_bipartite, cycle, path, star};
pub use spec::{family_from_spec, family_size_estimate, FamilySizeEstimate, FamilySpecError};
