//! Interval graphs.
//!
//! *Proper* (= unit) interval graphs are among the bounded-growth families
//! listed in the paper's Section 1.1 (citing Halldórsson–Kortsarz–Shachnai
//! for scheduling applications). For unit intervals, any independent set
//! in a neighborhood has size at most 2: intervals overlapping `[x, x+1]`
//! that are pairwise disjoint can only be one hanging off each end.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use rand::Rng;

/// A random proper (unit) interval graph: `n` unit intervals with left
/// endpoints uniform in `[0, span)`; vertices adjacent iff the intervals
/// overlap. β ≤ 2. Expected degree ≈ `2·(n−1)/span`.
pub fn proper_interval(n: usize, span: f64, rng: &mut impl Rng) -> CsrGraph {
    assert!(span > 0.0);
    let mut lefts: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..span)).collect();
    build_unit_interval_graph(&mut lefts)
}

/// Build the unit-interval graph of explicit left endpoints (the slice is
/// sorted in place; vertex `i` of the result is the interval with the
/// `i`-th smallest left endpoint).
pub fn build_unit_interval_graph(lefts: &mut [f64]) -> CsrGraph {
    // total_cmp: callers may pass arbitrary floats (NaN included); a total
    // order keeps the sort panic-free and deterministic.
    lefts.sort_by(|a, b| a.total_cmp(b));
    let n = lefts.len();
    let mut b = GraphBuilder::new(n);
    // Sorted sweep: i overlaps j > i iff lefts[j] <= lefts[i] + 1.
    for i in 0..n {
        for j in (i + 1)..n {
            if lefts[j] <= lefts[i] + 1.0 {
                b.add_edge(VertexId::new(i), VertexId::new(j));
            } else {
                break;
            }
        }
    }
    b.build()
}

/// `proper_interval` calibrated for an expected average degree.
pub fn proper_interval_with_degree(n: usize, avg_degree: f64, rng: &mut impl Rng) -> CsrGraph {
    let span = (2.0 * (n.max(2) as f64 - 1.0) / avg_degree).max(1.0);
    proper_interval(n, span, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_exact;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn explicit_intervals() {
        // [0,1] [0.5,1.5] [2,3] [2.4,3.4]: two overlapping pairs.
        let mut lefts = vec![0.0, 0.5, 2.0, 2.4];
        let g = build_unit_interval_graph(&mut lefts);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(2), VertexId(3)));
    }

    #[test]
    fn sweep_agrees_with_bruteforce() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lefts: Vec<f64> = (0..80).map(|_| rng.random_range(0.0..20.0)).collect();
        let g = build_unit_interval_graph(&mut lefts);
        let mut count = 0;
        for i in 0..80 {
            for j in (i + 1)..80 {
                let overlap = (lefts[i] - lefts[j]).abs() <= 1.0;
                assert_eq!(g.has_edge(VertexId::new(i), VertexId::new(j)), overlap);
                count += overlap as usize;
            }
        }
        assert_eq!(g.num_edges(), count);
    }

    #[test]
    fn beta_at_most_two() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let g = proper_interval(100, 12.0, &mut rng);
            assert!(neighborhood_independence_exact(&g) <= 2);
        }
    }

    #[test]
    fn degree_calibration() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = proper_interval_with_degree(2000, 10.0, &mut rng);
        let avg = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!((6.0..15.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn dense_span_is_clique() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = proper_interval(30, 0.5, &mut rng);
        assert_eq!(g.num_edges(), 30 * 29 / 2, "all unit intervals overlap");
    }
}
