//! Geometric intersection graphs: unit-disk graphs.
//!
//! Unit-disk graphs are the paper's flagship *bounded growth* family
//! (Section 1.1): vertices are points in the plane, and two vertices are
//! adjacent iff their distance is at most the radius. Any independent set
//! inside a neighborhood consists of points that pairwise exceed distance
//! `r` while all lying within distance `r` of the center — a classical
//! packing argument bounds such a set by 5, hence β ≤ 5.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use rand::Rng;

/// Configuration for [`unit_disk`].
#[derive(Clone, Copy, Debug)]
pub struct UnitDiskConfig {
    /// Number of points.
    pub n: usize,
    /// Side length of the square the points are drawn from.
    pub side: f64,
    /// Connection radius.
    pub radius: f64,
}

impl UnitDiskConfig {
    /// A configuration calibrated for an expected average degree: points in
    /// a square sized so that each disk of the given radius contains
    /// `avg_degree` other points in expectation.
    pub fn with_expected_degree(n: usize, radius: f64, avg_degree: f64) -> Self {
        // E[deg] = (n-1) * pi r^2 / side^2  =>  side = r * sqrt(pi (n-1)/avg).
        let side = radius * (std::f64::consts::PI * (n.max(2) as f64 - 1.0) / avg_degree).sqrt();
        UnitDiskConfig { n, side, radius }
    }
}

/// A random unit-disk graph: `n` uniform points in a `side × side` square,
/// edges between points at distance ≤ `radius`.
///
/// Uses a uniform grid with cells of side `radius` so construction is
/// O(n + m) in expectation rather than O(n²).
pub fn unit_disk(cfg: UnitDiskConfig, rng: &mut impl Rng) -> CsrGraph {
    let UnitDiskConfig { n, side, radius } = cfg;
    assert!(radius > 0.0 && side > 0.0);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    build_disk_graph(&pts, radius)
}

/// Build the unit-disk graph of an explicit point set (exposed for
/// deterministic tests and for domain examples that bring their own layout).
pub fn build_disk_graph(pts: &[(f64, f64)], radius: f64) -> CsrGraph {
    let n = pts.len();
    let r2 = radius * radius;
    let cell = radius;
    // Grid bucketing.
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &(x, y) in pts {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
    let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * rows];
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = (((x - min_x) / cell).floor() as usize).min(cols - 1);
        let cy = (((y - min_y) / cell).floor() as usize).min(rows - 1);
        (cx, cy)
    };
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cols + cx].push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cols as i64 || ny >= rows as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cols + nx as usize] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let (px, py) = pts[j];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    if d2 <= r2 {
                        b.add_edge(VertexId::new(i), VertexId::new(j));
                    }
                }
            }
        }
    }
    b.build()
}

/// Configuration for [`disk_graph`]: disks with radii in
/// `[r_min, ratio·r_min]`.
#[derive(Clone, Copy, Debug)]
pub struct DiskConfig {
    /// Number of disks.
    pub n: usize,
    /// Side length of the square the centers are drawn from.
    pub side: f64,
    /// Smallest radius.
    pub r_min: f64,
    /// Radius ratio ρ ≥ 1 (radii uniform in `[r_min, ρ·r_min]`).
    pub ratio: f64,
}

impl DiskConfig {
    /// The β certificate for this configuration: disks adjacent to `v`
    /// with pairwise-disjoint interiors have centers within
    /// `r_v + ρ·r_min ≤ 2ρ·r_min` of `v`'s center and pairwise distance
    /// ≥ `2·r_min`, so a packing argument bounds them by `(1 + 2ρ)²`.
    pub fn beta_bound(&self) -> usize {
        let rho = self.ratio;
        ((1.0 + 2.0 * rho) * (1.0 + 2.0 * rho)).ceil() as usize
    }
}

/// A random *general disk graph* (bounded growth for bounded radius
/// ratio, one of the Section 1.1 families): disks intersect iff the
/// center distance is at most the sum of radii.
pub fn disk_graph(cfg: DiskConfig, rng: &mut impl Rng) -> CsrGraph {
    assert!(cfg.ratio >= 1.0 && cfg.r_min > 0.0);
    let centers: Vec<(f64, f64)> = (0..cfg.n)
        .map(|_| {
            (
                rng.random_range(0.0..cfg.side),
                rng.random_range(0.0..cfg.side),
            )
        })
        .collect();
    let radii: Vec<f64> = (0..cfg.n)
        .map(|_| rng.random_range(cfg.r_min..=cfg.r_min * cfg.ratio))
        .collect();
    build_disk_intersection_graph(&centers, &radii)
}

/// Build the disk intersection graph of explicit centers and radii
/// (grid-bucketed by the largest radius; O(n + m) expected for bounded
/// density).
pub fn build_disk_intersection_graph(centers: &[(f64, f64)], radii: &[f64]) -> CsrGraph {
    assert_eq!(centers.len(), radii.len());
    let n = centers.len();
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    let r_max = radii.iter().cloned().fold(0.0f64, f64::max);
    let cell = (2.0 * r_max).max(f64::MIN_POSITIVE);
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &(x, y) in centers {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
    let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * rows];
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = (((x - min_x) / cell).floor() as usize).min(cols - 1);
        let cy = (((y - min_y) / cell).floor() as usize).min(rows - 1);
        (cx, cy)
    };
    for (i, &(x, y)) in centers.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cols + cx].push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in centers.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cols as i64 || ny >= rows as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cols + nx as usize] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let (px, py) = centers[j];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    let rr = radii[i] + radii[j];
                    if d2 <= rr * rr {
                        b.add_edge(VertexId::new(i), VertexId::new(j));
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_exact;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn matches_bruteforce_on_fixed_points() {
        let pts = [(0.0, 0.0), (0.5, 0.0), (1.2, 0.0), (0.0, 0.9), (3.0, 3.0)];
        let g = build_disk_graph(&pts, 1.0);
        // Brute force distances.
        let mut expected = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 <= 1.0 {
                    expected.push((i, j));
                }
            }
        }
        assert_eq!(g.num_edges(), expected.len());
        for (i, j) in expected {
            assert!(g.has_edge(VertexId::new(i), VertexId::new(j)));
        }
        assert_eq!(g.degree(VertexId(4)), 0, "far point is isolated");
    }

    #[test]
    fn grid_agrees_with_quadratic_bruteforce_random() {
        let mut rng = StdRng::seed_from_u64(12345);
        let pts: Vec<(f64, f64)> = (0..150)
            .map(|_| (rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect();
        let r = 1.3;
        let g = build_disk_graph(&pts, r);
        let mut count = 0usize;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                let connected = d2 <= r * r;
                assert_eq!(g.has_edge(VertexId::new(i), VertexId::new(j)), connected);
                count += connected as usize;
            }
        }
        assert_eq!(g.num_edges(), count);
    }

    #[test]
    fn beta_bounded_by_packing_constant() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(200, 1.0, 12.0),
            &mut rng,
        );
        let beta = neighborhood_independence_exact(&g);
        assert!(beta <= 5, "unit-disk beta must be ≤ 5, got {beta}");
    }

    #[test]
    fn expected_degree_calibration_is_sane() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(2000, 1.0, 10.0),
            &mut rng,
        );
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            (5.0..20.0).contains(&avg),
            "average degree {avg} far from calibration target 10"
        );
    }

    #[test]
    fn empty_input() {
        let g = build_disk_graph(&[], 1.0);
        assert_eq!(g.num_vertices(), 0);
        let g = build_disk_intersection_graph(&[], &[]);
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn disk_graph_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(55);
        let centers: Vec<(f64, f64)> = (0..120)
            .map(|_| (rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)))
            .collect();
        let radii: Vec<f64> = (0..120).map(|_| rng.random_range(0.3..0.9)).collect();
        let g = build_disk_intersection_graph(&centers, &radii);
        for i in 0..120 {
            for j in (i + 1)..120 {
                let d2 =
                    (centers[i].0 - centers[j].0).powi(2) + (centers[i].1 - centers[j].1).powi(2);
                let rr = radii[i] + radii[j];
                assert_eq!(
                    g.has_edge(VertexId::new(i), VertexId::new(j)),
                    d2 <= rr * rr
                );
            }
        }
    }

    #[test]
    fn disk_graph_beta_certificate() {
        let mut rng = StdRng::seed_from_u64(56);
        let cfg = DiskConfig {
            n: 150,
            side: 8.0,
            r_min: 0.4,
            ratio: 2.0,
        };
        let g = disk_graph(cfg, &mut rng);
        let beta = neighborhood_independence_exact(&g);
        assert!(
            beta <= cfg.beta_bound(),
            "beta {beta} above certificate {}",
            cfg.beta_bound()
        );
    }

    #[test]
    fn unit_ratio_disk_graph_is_unit_disk_like() {
        // ratio = 1 with radius r behaves like a unit-disk graph of
        // radius 2r.
        let mut rng = StdRng::seed_from_u64(57);
        let centers: Vec<(f64, f64)> = (0..100)
            .map(|_| (rng.random_range(0.0..6.0), rng.random_range(0.0..6.0)))
            .collect();
        let radii = vec![0.5; 100];
        let via_disks = build_disk_intersection_graph(&centers, &radii);
        let via_unit = build_disk_graph(&centers, 1.0);
        assert_eq!(via_disks.num_edges(), via_unit.num_edges());
    }
}
