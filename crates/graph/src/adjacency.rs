//! The read-only adjacency-array access model and probe accounting.
//!
//! Sublinear-time claims (Theorem 3.1, and the [Assadi–Solomon ICALP'19]
//! baseline) are statements about the number of *probes* to the adjacency
//! arrays, not about wall-clock time on any particular machine. The
//! [`AdjacencyOracle`] trait captures exactly the two operations the model
//! grants in O(1) — `deg(v)` and "the i-th neighbor of v" — and
//! [`CountingOracle`] wraps any oracle with cheap probe counters so that
//! experiments can report machine-independent complexities.

use crate::csr::CsrGraph;
use crate::ids::{EdgeId, VertexId};
use std::cell::Cell;

/// Read-only access to a graph in the adjacency-array model.
///
/// Implementations must answer both queries in O(1), as the model assumes
/// (Section 3.1 of the paper: "we can determine the degree of any vertex v
/// or its i-th neighbor ... in O(1) time").
pub trait AdjacencyOracle {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// The degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// The `i`-th entry of `v`'s adjacency array, `i < degree(v)`.
    fn neighbor(&self, v: VertexId, i: usize) -> VertexId;

    /// The undirected edge behind `v`'s `i`-th half-edge, when the backing
    /// store knows it. A CSR-backed oracle always does; synthetic oracles
    /// (e.g. the Lemma 2.13 adversary) may not.
    fn incident_edge(&self, v: VertexId, i: usize) -> Option<EdgeId> {
        let _ = (v, i);
        None
    }
}

impl AdjacencyOracle for CsrGraph {
    #[inline(always)]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline(always)]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline(always)]
    fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        CsrGraph::neighbor(self, v, i)
    }

    #[inline(always)]
    fn incident_edge(&self, v: VertexId, i: usize) -> Option<EdgeId> {
        Some(CsrGraph::incident_edge(self, v, i))
    }
}

impl<T: AdjacencyOracle + ?Sized> AdjacencyOracle for &T {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        (**self).neighbor(v, i)
    }
    fn incident_edge(&self, v: VertexId, i: usize) -> Option<EdgeId> {
        (**self).incident_edge(v, i)
    }
}

/// Probe counts accumulated by a [`CountingOracle`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeCounts {
    /// Number of `degree` queries.
    pub degree_probes: u64,
    /// Number of `neighbor` (adjacency-array entry) queries.
    pub neighbor_probes: u64,
}

impl ProbeCounts {
    /// Total probes of either kind.
    pub fn total(&self) -> u64 {
        self.degree_probes + self.neighbor_probes
    }
}

/// Wraps an [`AdjacencyOracle`] and counts every probe.
///
/// Counters use `Cell` so that counting works through shared references —
/// algorithms take `&impl AdjacencyOracle` and never know they are being
/// measured.
pub struct CountingOracle<O> {
    inner: O,
    degree_probes: Cell<u64>,
    neighbor_probes: Cell<u64>,
}

impl<O: AdjacencyOracle> CountingOracle<O> {
    /// Wrap `inner` with fresh zero counters.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            degree_probes: Cell::new(0),
            neighbor_probes: Cell::new(0),
        }
    }

    /// The probe counts so far.
    pub fn counts(&self) -> ProbeCounts {
        ProbeCounts {
            degree_probes: self.degree_probes.get(),
            neighbor_probes: self.neighbor_probes.get(),
        }
    }

    /// Reset counters to zero.
    pub fn reset(&self) {
        self.degree_probes.set(0);
        self.neighbor_probes.set(0);
    }

    /// Unwrap the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Borrow the inner oracle without counting.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: AdjacencyOracle> AdjacencyOracle for CountingOracle<O> {
    #[inline(always)]
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    #[inline(always)]
    fn degree(&self, v: VertexId) -> usize {
        self.degree_probes.set(self.degree_probes.get() + 1);
        self.inner.degree(v)
    }

    #[inline(always)]
    fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.neighbor_probes.set(self.neighbor_probes.get() + 1);
        self.inner.neighbor(v, i)
    }

    #[inline(always)]
    fn incident_edge(&self, v: VertexId, i: usize) -> Option<EdgeId> {
        self.inner.incident_edge(v, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    #[test]
    fn csr_implements_oracle() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let o: &dyn AdjacencyOracle = &g;
        assert_eq!(o.num_vertices(), 3);
        assert_eq!(o.degree(VertexId(1)), 2);
        assert_eq!(o.neighbor(VertexId(1), 0), VertexId(0));
        assert!(o.incident_edge(VertexId(1), 0).is_some());
    }

    #[test]
    fn counting_oracle_counts() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let c = CountingOracle::new(&g);
        assert_eq!(c.counts().total(), 0);
        let _ = c.degree(VertexId(0));
        let _ = c.neighbor(VertexId(1), 1);
        let _ = c.neighbor(VertexId(1), 0);
        let counts = c.counts();
        assert_eq!(counts.degree_probes, 1);
        assert_eq!(counts.neighbor_probes, 2);
        assert_eq!(counts.total(), 3);
        c.reset();
        assert_eq!(c.counts().total(), 0);
    }

    #[test]
    fn counting_is_transparent() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let c = CountingOracle::new(&g);
        for v in 0..4 {
            let v = VertexId::new(v);
            assert_eq!(c.degree(v), g.degree(v));
            for i in 0..g.degree(v) {
                assert_eq!(c.neighbor(v, i), g.neighbor(v, i));
            }
        }
    }
}
