//! Strongly-typed vertex and edge identifiers.
//!
//! Vertices and (undirected) edges are identified by dense `u32` indices so
//! that graphs with hundreds of millions of edges fit comfortably in memory
//! and index arrays stay cache-friendly (see the Rust Performance Book's
//! "Smaller Integers" guidance).

use std::fmt;

/// A vertex identifier: a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it does not fit in `u32`).
    #[inline(always)]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(i as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline(always)]
    fn from(i: u32) -> Self {
        VertexId(i)
    }
}

/// An undirected edge identifier: a dense index in `0..m`.
///
/// Each undirected edge has exactly one `EdgeId` regardless of direction;
/// CSR half-edges store the id of their undirected parent so that "the same
/// edge marked from both sides" (as in Solomon's mutual-marking sparsifier)
/// can be detected in O(1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it does not fit in `u32`).
    #[inline(always)]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for EdgeId {
    #[inline(always)]
    fn from(i: u32) -> Self {
        EdgeId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn edge_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "e7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
    }
}
