//! Immutable compressed-sparse-row (CSR) graphs.
//!
//! [`CsrGraph`] is the in-memory realization of the paper's *adjacency-array
//! representation* (Section 3.1): for every vertex `v` we can read `deg(v)`
//! and the `i`-th neighbor of `v` in O(1), and the arrays are read-only.
//! Every half-edge also records the id of its undirected parent edge, which
//! lets sparsifier constructions collect "marked" edges without hashing.

use crate::ids::{EdgeId, VertexId};

/// Adjacency offsets with a width chosen from the half-edge count.
///
/// A CSR offset indexes the half-edge arrays, so its values range over
/// `0..=2m`. When `2m` fits in a `u32` — every graph under the repo's
/// `MAX_EDGES` cap, and every sparsifier — 4 bytes per vertex suffice,
/// halving the dominant per-vertex cost of the old `Vec<usize>` layout.
/// Graphs with `2m >= 2^32` fall back to full-width offsets
/// automatically. The repr is a pure function of `m`, so two builds of
/// the same graph (sequential, parallel, scratch-reuse, or streamed)
/// always agree byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Offsets {
    /// `2m < 2^32`: 4 bytes per vertex.
    Narrow(Vec<u32>),
    /// Fallback for `2m >= 2^32`.
    Wide(Vec<usize>),
}

/// Whether a graph with `two_m` half-edges takes the narrow repr.
#[inline(always)]
fn fits_narrow(two_m: usize) -> bool {
    u32::try_from(two_m).is_ok()
}

impl Offsets {
    /// Exclusive prefix sums of `degree`, in the repr `two_m` dictates.
    fn from_degrees(degree: &[u32], two_m: usize) -> Offsets {
        let mut out = if fits_narrow(two_m) {
            Offsets::Narrow(Vec::new())
        } else {
            Offsets::Wide(Vec::new())
        };
        out.rebuild_from_degrees(degree, two_m);
        out
    }

    /// Convert a full-width offset array (as the parallel layout builds)
    /// into the canonical repr for `two_m` half-edges.
    fn from_wide(offsets: Vec<usize>, two_m: usize) -> Offsets {
        if fits_narrow(two_m) {
            Offsets::Narrow(offsets.into_iter().map(|o| o as u32).collect())
        } else {
            Offsets::Wide(offsets)
        }
    }

    /// Refill with exclusive prefix sums of `degree`, reusing the held
    /// buffer when the repr for `two_m` matches (allocation-free when
    /// warm); switches repr otherwise.
    fn rebuild_from_degrees(&mut self, degree: &[u32], two_m: usize) {
        if fits_narrow(two_m) != matches!(self, Offsets::Narrow(_)) {
            *self = if fits_narrow(two_m) {
                Offsets::Narrow(Vec::new())
            } else {
                Offsets::Wide(Vec::new())
            };
        }
        match self {
            Offsets::Narrow(offs) => {
                offs.clear();
                offs.reserve(degree.len() + 1);
                let mut running = 0u32;
                offs.push(0);
                for &d in degree {
                    running += d;
                    offs.push(running);
                }
            }
            Offsets::Wide(offs) => {
                offs.clear();
                offs.reserve(degree.len() + 1);
                let mut running = 0usize;
                offs.push(0);
                for &d in degree {
                    running += d as usize;
                    offs.push(running);
                }
            }
        }
    }

    #[inline(always)]
    fn get(&self, i: usize) -> usize {
        match self {
            Offsets::Narrow(offs) => offs[i] as usize,
            Offsets::Wide(offs) => offs[i],
        }
    }

    fn len(&self) -> usize {
        match self {
            Offsets::Narrow(offs) => offs.len(),
            Offsets::Wide(offs) => offs.len(),
        }
    }

    /// Bytes held by the populated entries.
    fn bytes(&self) -> usize {
        match self {
            Offsets::Narrow(offs) => offs.len() * std::mem::size_of::<u32>(),
            Offsets::Wide(offs) => offs.len() * std::mem::size_of::<usize>(),
        }
    }

    /// Bytes of backing capacity (for scratch accounting).
    fn capacity_bytes(&self) -> usize {
        match self {
            Offsets::Narrow(offs) => offs.capacity() * std::mem::size_of::<u32>(),
            Offsets::Wide(offs) => offs.capacity() * std::mem::size_of::<usize>(),
        }
    }

    /// Reset to the one-vertex-boundary empty state, keeping capacity.
    fn clear(&mut self) {
        match self {
            Offsets::Narrow(offs) => {
                offs.clear();
                offs.push(0);
            }
            Offsets::Wide(offs) => {
                offs.clear();
                offs.push(0);
            }
        }
    }
}

/// An immutable undirected graph in CSR form.
///
/// ```
/// use sparsimatch_graph::csr::from_edges;
/// use sparsimatch_graph::ids::VertexId;
///
/// let g = from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(VertexId(2)), 3);
/// assert_eq!(g.neighbor(VertexId(2), 0), VertexId(0)); // sorted adjacency
/// assert!(g.has_edge(VertexId(3), VertexId(2)));
/// ```
///
/// Invariants (enforced by [`GraphBuilder`]):
/// * no self-loops and no parallel edges;
/// * each undirected edge `{u, v}` appears as two half-edges, one in each
///   endpoint's adjacency array, both carrying the same [`EdgeId`];
/// * adjacency arrays are sorted by neighbor id (enables O(log deg)
///   adjacency queries).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `v`'s half-edges; width picked
    /// from the half-edge count (u32 when `2m < 2^32`, usize otherwise).
    offsets: Offsets,
    /// Neighbor endpoint of each half-edge.
    targets: Vec<u32>,
    /// Undirected parent edge of each half-edge.
    half_edge_ids: Vec<u32>,
    /// Endpoints `(u, v)` with `u < v` of each undirected edge.
    endpoints: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// The number of vertices `n`.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges `m`.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The half-edge index range of `v`'s adjacency window.
    #[inline(always)]
    fn adj_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets.get(v.index())..self.offsets.get(v.index() + 1)
    }

    /// The degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets.get(v.index() + 1) - self.offsets.get(v.index())
    }

    /// The maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// The number of vertices with at least one incident edge (the paper's
    /// `n'`; success probabilities depend on `n'` rather than `n`).
    pub fn num_non_isolated(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| self.degree(VertexId::new(v)) > 0)
            .count()
    }

    /// The `i`-th neighbor of `v` (O(1), as the adjacency-array model
    /// requires). Panics if `i >= degree(v)`.
    #[inline(always)]
    pub fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        debug_assert!(i < self.degree(v));
        VertexId(self.targets[self.offsets.get(v.index()) + i])
    }

    /// The undirected edge id of `v`'s `i`-th half-edge.
    #[inline(always)]
    pub fn incident_edge(&self, v: VertexId, i: usize) -> EdgeId {
        debug_assert!(i < self.degree(v));
        EdgeId(self.half_edge_ids[self.offsets.get(v.index()) + i])
    }

    /// All neighbors of `v`, sorted by id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.targets[self.adj_range(v)].iter().map(|&t| VertexId(t))
    }

    /// All `(neighbor, edge_id)` pairs incident on `v`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let range = self.adj_range(v);
        self.targets[range.clone()]
            .iter()
            .zip(&self.half_edge_ids[range])
            .map(|(&t, &e)| (VertexId(t), EdgeId(e)))
    }

    /// The endpoints `(u, v)` with `u < v` of undirected edge `e`.
    #[inline(always)]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (u, v) = self.endpoints[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// All undirected edges as `(EdgeId, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), VertexId(u), VertexId(v)))
    }

    /// Whether `{u, v}` is an edge (O(log min-degree) via binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The edge id of `{u, v}` if present (O(log min-degree)).
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let range = self.adj_range(a);
        let lo = range.start;
        let slice = &self.targets[range];
        slice
            .binary_search(&b.0)
            .ok()
            .map(|i| EdgeId(self.half_edge_ids[lo + i]))
    }

    /// The subgraph consisting of the given undirected edges (vertex set is
    /// preserved). Edge ids are renumbered densely in the result.
    pub fn edge_subgraph(&self, keep: impl Iterator<Item = EdgeId>) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for e in keep {
            let (u, v) = self.edge_endpoints(e);
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// The subgraph induced by `keep[v] == true` vertices. The vertex set is
    /// preserved (dropped vertices become isolated), which keeps vertex ids
    /// stable across the sparsifier pipeline.
    pub fn induced_subgraph(&self, keep: &[bool]) -> CsrGraph {
        assert_eq!(keep.len(), self.num_vertices());
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (_, u, v) in self.edges() {
            if keep[u.index()] && keep[v.index()] {
                builder.add_edge(u, v);
            }
        }
        builder.build()
    }

    /// Total memory held by the four internal arrays, in bytes, audited
    /// against every field: offsets (at their actual width), the two
    /// half-edge arrays, and the undirected endpoint list. Useful for
    /// documenting that sparsifiers are small and for the serve daemon's
    /// resident-footprint metric.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.bytes()
            + self.targets.len() * std::mem::size_of::<u32>()
            + self.half_edge_ids.len() * std::mem::size_of::<u32>()
            + self.endpoints.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// What [`CsrGraph::memory_bytes`] would report for a graph on `n`
    /// vertices and `m` edges, without building it. This is the resident
    /// cost the out-of-core build avoids for the parent graph, so the
    /// huge-tier bench reports it as `graph_bytes`.
    pub fn projected_memory_bytes(n: usize, m: usize) -> usize {
        let offset_width = if fits_narrow(2 * m) {
            std::mem::size_of::<u32>()
        } else {
            std::mem::size_of::<usize>()
        };
        (n + 1) * offset_width
            + 2 * m * std::mem::size_of::<u32>() * 2
            + m * std::mem::size_of::<(u32, u32)>()
    }
}

/// Builder for [`CsrGraph`]: accumulates undirected edges, deduplicates,
/// drops self-loops, then lays out sorted CSR arrays.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// A builder pre-sized for roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Add the undirected edge `{u, v}`. Self-loops are ignored; duplicates
    /// are deduplicated at `build` time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            u.index() < self.num_vertices && v.index() < self.num_vertices,
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.push((a, b));
    }

    /// Bulk-add edges from `(u, v)` index pairs.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (usize, usize)>) {
        for (u, v) in it {
            self.add_edge(VertexId::new(u), VertexId::new(v));
        }
    }

    /// Finalize into a [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        layout_sorted(self.num_vertices, self.edges)
    }

    /// Finalize into a [`CsrGraph`] using up to `threads` workers for the
    /// CSR layout (degree counting, offset prefix sums, and the half-edge
    /// scatter). The output is byte-identical to [`GraphBuilder::build`]
    /// for any thread count; `threads == 1` (or a small edge list) takes
    /// the sequential path.
    pub fn build_parallel(mut self, threads: usize) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        layout_sorted_parallel(self.num_vertices, self.edges, threads)
    }
}

/// Lay out CSR arrays from a lex-sorted, deduplicated edge list with
/// `u < v` per edge. Because the list is globally sorted, scattering the
/// half-edges in edge order leaves every adjacency window already sorted
/// by neighbor id: for a vertex `v`, all edges `(a, v)` with `a < v`
/// precede all edges `(v, b)` with `b > v`, each group in ascending order.
fn layout_sorted(n: usize, edges: Vec<(u32, u32)>) -> CsrGraph {
    let m = edges.len();
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges not sorted");

    let mut degree = vec![0u32; n];
    for &(u, v) in &edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let offsets = Offsets::from_degrees(&degree, 2 * m);

    let mut targets = vec![0u32; 2 * m];
    let mut half_edge_ids = vec![0u32; 2 * m];
    match &offsets {
        Offsets::Narrow(offs) => {
            // Cursors fit in the degree array: reuse it instead of
            // allocating a usize cursor vector (the narrow layout keeps
            // the whole build at 4 bytes per vertex of working state).
            degree.copy_from_slice(&offs[..n]);
            for (eid, &(u, v)) in edges.iter().enumerate() {
                let eid = eid as u32;
                targets[degree[u as usize] as usize] = v;
                half_edge_ids[degree[u as usize] as usize] = eid;
                degree[u as usize] += 1;
                targets[degree[v as usize] as usize] = u;
                half_edge_ids[degree[v as usize] as usize] = eid;
                degree[v as usize] += 1;
            }
        }
        Offsets::Wide(offs) => {
            let mut cursor = offs[..n].to_vec();
            for (eid, &(u, v)) in edges.iter().enumerate() {
                let eid = eid as u32;
                targets[cursor[u as usize]] = v;
                half_edge_ids[cursor[u as usize]] = eid;
                cursor[u as usize] += 1;
                targets[cursor[v as usize]] = u;
                half_edge_ids[cursor[v as usize]] = eid;
                cursor[v as usize] += 1;
            }
        }
    }

    CsrGraph {
        offsets,
        targets,
        half_edge_ids,
        endpoints: edges,
    }
}

/// A `&[T]` that hands out raw write access across threads. Safety rests
/// entirely on the caller writing disjoint index sets from each thread.
struct SharedSlots<T>(*mut T);
unsafe impl<T: Send> Send for SharedSlots<T> {}
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// # Safety
    /// `idx` must be in bounds and no other thread may read or write it
    /// concurrently.
    #[inline(always)]
    unsafe fn write(&self, idx: usize, val: T) {
        unsafe { *self.0.add(idx) = val };
    }
}

/// Parallel CSR layout below this edge count is not worth the thread
/// spawns; take the sequential path instead.
const PARALLEL_LAYOUT_CUTOFF: usize = 1 << 14;

/// Parallel [`layout_sorted`]: per-thread degree counting over edge
/// chunks, exclusive prefix sums over vertex ranges, then a scatter where
/// each thread owns a disjoint slot range per vertex. Byte-identical to
/// the sequential layout: thread `t` handles a contiguous chunk of the
/// sorted edge list, so within each adjacency window the per-thread slot
/// groups concatenate in exactly the sequential scatter order.
fn layout_sorted_parallel(n: usize, edges: Vec<(u32, u32)>, threads: usize) -> CsrGraph {
    let m = edges.len();
    let threads = threads.clamp(1, m.max(1));
    if threads == 1 || m < PARALLEL_LAYOUT_CUTOFF {
        return layout_sorted(n, edges);
    }
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges not sorted");

    let edge_chunk = m.div_ceil(threads);
    // Per-thread degree counts over that thread's edge chunk.
    let mut per_thread_degree: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = edges
            .chunks(edge_chunk)
            .map(|chunk| {
                s.spawn(move || {
                    let mut deg = vec![0u32; n];
                    for &(u, v) in chunk {
                        deg[u as usize] += 1;
                        deg[v as usize] += 1;
                    }
                    deg
                })
            })
            .collect();
        handles
            .into_iter()
            // Safety: join() only errs on a worker panic — propagate it.
            .map(|h| h.join().expect("degree-count worker panicked"))
            .collect()
    });
    let t_actual = per_thread_degree.len();

    // Exclusive prefix sums over vertex ranges: per-range totals first,
    // then a short sequential prefix over ranges, then a parallel fill of
    // `offsets` and of the per-thread start cursors. The cursor for
    // thread t at vertex v is offsets[v] plus what threads 0..t write
    // there, mirroring the sequential edge-order scatter.
    let vertex_chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(vertex_chunk.max(1))
        .map(|lo| (lo, (lo + vertex_chunk).min(n)))
        .collect();
    let range_totals: Vec<usize> = std::thread::scope(|s| {
        let per_thread_degree = &per_thread_degree;
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut total = 0usize;
                    for deg in per_thread_degree {
                        total += deg[lo..hi].iter().map(|&d| d as usize).sum::<usize>();
                    }
                    total
                })
            })
            .collect();
        handles
            .into_iter()
            // Safety: join() only errs on a worker panic — propagate it.
            .map(|h| h.join().expect("range-total worker panicked"))
            .collect()
    });
    let mut range_starts = Vec::with_capacity(ranges.len() + 1);
    range_starts.push(0usize);
    for (i, &t) in range_totals.iter().enumerate() {
        range_starts.push(range_starts[i] + t);
    }

    let mut offsets = vec![0usize; n + 1];
    offsets[n] = 2 * m;
    // Reuse the per-thread degree arrays as scatter start cursors in
    // place: after this pass, per_thread_degree[t][v] holds the first
    // slot thread t writes for vertex v.
    std::thread::scope(|s| {
        let mut offsets_rest: &mut [usize] = &mut offsets[..n];
        let mut degree_rest: Vec<&mut [u32]> = per_thread_degree
            .iter_mut()
            .map(|d| d.as_mut_slice())
            .collect();
        for (r, &(lo, hi)) in ranges.iter().enumerate() {
            let (offsets_here, rest) = offsets_rest.split_at_mut(hi - lo);
            offsets_rest = rest;
            let mut degree_here = Vec::with_capacity(t_actual);
            degree_rest = degree_rest
                .into_iter()
                .map(|d| {
                    let (here, rest) = d.split_at_mut(hi - lo);
                    degree_here.push(here);
                    rest
                })
                .collect();
            let start = range_starts[r];
            s.spawn(move || {
                let mut running = start;
                for (i, slot) in offsets_here.iter_mut().enumerate() {
                    *slot = running;
                    for deg in degree_here.iter_mut() {
                        let d = deg[i];
                        deg[i] = running as u32;
                        running += d as usize;
                    }
                }
            });
        }
    });

    // Scatter: thread t writes exactly the slots its cursors span, which
    // are disjoint from every other thread's by construction.
    let mut targets = vec![0u32; 2 * m];
    let mut half_edge_ids = vec![0u32; 2 * m];
    {
        let target_slots = SharedSlots(targets.as_mut_ptr());
        let half_edge_slots = SharedSlots(half_edge_ids.as_mut_ptr());
        std::thread::scope(|s| {
            for (t, chunk) in edges.chunks(edge_chunk).enumerate() {
                let mut cursor = std::mem::take(&mut per_thread_degree[t]);
                let base_eid = (t * edge_chunk) as u32;
                let target_slots = &target_slots;
                let half_edge_slots = &half_edge_slots;
                s.spawn(move || {
                    for (i, &(u, v)) in chunk.iter().enumerate() {
                        let eid = base_eid + i as u32;
                        // SAFETY: cursor[u]/cursor[v] walk slot ranges
                        // owned exclusively by this thread (see the
                        // prefix-sum pass above) and stay within 2m.
                        unsafe {
                            target_slots.write(cursor[u as usize] as usize, v);
                            half_edge_slots.write(cursor[u as usize] as usize, eid);
                            cursor[u as usize] += 1;
                            target_slots.write(cursor[v as usize] as usize, u);
                            half_edge_slots.write(cursor[v as usize] as usize, eid);
                            cursor[v as usize] += 1;
                        }
                    }
                });
            }
        });
    }

    CsrGraph {
        // The worker fill needs full-width slots; canonicalize after so
        // the result is byte-identical to the sequential layout.
        offsets: Offsets::from_wide(offsets, 2 * m),
        targets,
        half_edge_ids,
        endpoints: edges,
    }
}

/// Build the subgraph of `parent` consisting of the given marked edges,
/// in parallel. `sorted_ids` must be strictly increasing (sorted and
/// deduplicated) — exactly what the sharded sparsifier merge produces.
/// Because [`EdgeId`]s are dense in lexicographic endpoint order, the
/// mapped endpoint list is already lex-sorted and feeds straight into the
/// parallel layout; the result is byte-identical to
/// `parent.edge_subgraph(sorted_ids.iter().copied())`.
pub fn from_marked_edges(parent: &CsrGraph, sorted_ids: &[EdgeId], threads: usize) -> CsrGraph {
    debug_assert!(
        sorted_ids.windows(2).all(|w| w[0].index() < w[1].index()),
        "marked edge ids must be sorted and distinct"
    );
    let m = sorted_ids.len();
    let threads = threads.clamp(1, m.max(1));
    let edges: Vec<(u32, u32)> = if threads == 1 || m < PARALLEL_LAYOUT_CUTOFF {
        sorted_ids
            .iter()
            .map(|&e| parent.endpoints[e.index()])
            .collect()
    } else {
        let chunk = m.div_ceil(threads);
        let mut edges = Vec::with_capacity(m);
        std::thread::scope(|s| {
            let mut out_rest = edges.spare_capacity_mut();
            for ids in sorted_ids.chunks(chunk) {
                let (out_here, rest) = out_rest.split_at_mut(ids.len());
                out_rest = rest;
                s.spawn(move || {
                    for (slot, &e) in out_here.iter_mut().zip(ids) {
                        slot.write(parent.endpoints[e.index()]);
                    }
                });
            }
        });
        // SAFETY: every one of the m spare slots was initialized by
        // exactly one worker above.
        unsafe { edges.set_len(m) };
        edges
    };
    layout_sorted_parallel(parent.num_vertices(), edges, threads)
}

/// Reusable buffers for rebuilding marked-edge subgraphs in place.
///
/// Repeated pipeline runs extract a fresh sparsifier CSR every time; with
/// a scratch the four graph arrays plus the degree/cursor layout buffers
/// are allocated once and reused with `clear()`-not-drop semantics, so a
/// warm [`CsrScratch::rebuild_from_marked`] performs zero heap
/// allocations when capacities suffice. The rebuilt graph is
/// byte-identical to [`from_marked_edges`] on the same inputs (pinned by
/// test).
#[derive(Clone, Debug)]
pub struct CsrScratch {
    graph: CsrGraph,
    degree: Vec<u32>,
    cursor: Vec<usize>,
}

impl Default for CsrScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl CsrScratch {
    /// An empty scratch holding a zero-vertex graph.
    pub fn new() -> Self {
        CsrScratch {
            graph: CsrGraph {
                offsets: Offsets::Narrow(vec![0]),
                targets: Vec::new(),
                half_edge_ids: Vec::new(),
                endpoints: Vec::new(),
            },
            degree: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// The most recently rebuilt graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Bytes of capacity currently held across all reusable buffers (the
    /// scratch's high-water memory footprint).
    pub fn capacity_bytes(&self) -> usize {
        self.graph.offsets.capacity_bytes()
            + self.graph.targets.capacity() * 4
            + self.graph.half_edge_ids.capacity() * 4
            + self.graph.endpoints.capacity() * 8
            + self.degree.capacity() * 4
            + self.cursor.capacity() * std::mem::size_of::<usize>()
    }

    /// Drop logical contents but keep every buffer's capacity.
    pub fn clear(&mut self) {
        self.graph.offsets.clear();
        self.graph.targets.clear();
        self.graph.half_edge_ids.clear();
        self.graph.endpoints.clear();
        self.degree.clear();
        self.cursor.clear();
    }

    /// Store a graph built elsewhere (the parallel extraction path, which
    /// allocates its own arrays) so [`CsrScratch::graph`] is uniform.
    pub fn replace(&mut self, g: CsrGraph) -> &CsrGraph {
        self.graph = g;
        &self.graph
    }

    /// Sequential in-place equivalent of [`from_marked_edges`]: rebuild
    /// the subgraph of `parent` given by the strictly increasing
    /// `sorted_ids` into this scratch's buffers, reusing their capacity.
    pub fn rebuild_from_marked(&mut self, parent: &CsrGraph, sorted_ids: &[EdgeId]) -> &CsrGraph {
        debug_assert!(
            sorted_ids.windows(2).all(|w| w[0].index() < w[1].index()),
            "marked edge ids must be sorted and distinct"
        );
        let n = parent.num_vertices();
        let m = sorted_ids.len();
        let CsrGraph {
            offsets,
            targets,
            half_edge_ids,
            endpoints,
        } = &mut self.graph;

        endpoints.clear();
        endpoints.extend(sorted_ids.iter().map(|&e| parent.endpoints[e.index()]));

        self.degree.clear();
        self.degree.resize(n, 0);
        for &(u, v) in endpoints.iter() {
            self.degree[u as usize] += 1;
            self.degree[v as usize] += 1;
        }
        offsets.rebuild_from_degrees(&self.degree, 2 * m);

        targets.clear();
        targets.resize(2 * m, 0);
        half_edge_ids.clear();
        half_edge_ids.resize(2 * m, 0);
        self.cursor.clear();
        self.cursor.extend((0..n).map(|v| offsets.get(v)));
        for (eid, &(u, v)) in endpoints.iter().enumerate() {
            let eid = eid as u32;
            targets[self.cursor[u as usize]] = v;
            half_edge_ids[self.cursor[u as usize]] = eid;
            self.cursor[u as usize] += 1;
            targets[self.cursor[v as usize]] = u;
            half_edge_ids[self.cursor[v as usize]] = eid;
            self.cursor[v as usize] += 1;
        }
        &self.graph
    }
}

/// Build a graph from an edge list that is already strictly
/// lexicographically sorted with `u < v` per edge — the order
/// [`CsrGraph::edges`] iterates and [`crate::io::write_edge_list`] emits.
/// Skips the sort/dedup of [`GraphBuilder::build`] entirely, so this is
/// the entry point for streaming constructions that validate order as
/// edges arrive. The result is byte-identical to feeding the same edges
/// through [`GraphBuilder`].
///
/// # Panics
/// Debug builds assert the order and endpoint-range invariants; release
/// builds trust the caller (a violated invariant produces a graph with
/// unsorted adjacency windows, never memory unsafety).
pub fn from_sorted_edges(n: usize, edges: Vec<(u32, u32)>) -> CsrGraph {
    debug_assert!(
        edges.iter().all(|&(u, v)| u < v && (v as usize) < n),
        "edges must satisfy u < v with endpoints below n"
    );
    layout_sorted(n, edges)
}

/// Build a graph directly from an iterator of `(u, v)` index pairs.
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 2-0, 2-3
        from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.num_non_isolated(), 4);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = from_edges(5, [(0, 1)]);
        assert_eq!(g.num_non_isolated(), 2);
        assert_eq!(g.degree(VertexId(4)), 0);
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = triangle_plus_pendant();
        let nbrs: Vec<u32> = g.neighbors(VertexId(2)).map(|v| v.0).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = from_edges(3, [(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId(0)), 1);
    }

    #[test]
    fn half_edges_share_edge_id() {
        let g = triangle_plus_pendant();
        for (e, u, v) in g.edges() {
            let from_u = g
                .incident(u)
                .find(|&(t, _)| t == v)
                .map(|(_, id)| id)
                .unwrap();
            let from_v = g
                .incident(v)
                .find(|&(t, _)| t == u)
                .map(|(_, id)| id)
                .unwrap();
            assert_eq!(from_u, e);
            assert_eq!(from_v, e);
        }
    }

    #[test]
    fn find_edge_works_both_ways() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        let (a, b) = g.edge_endpoints(e);
        assert_eq!((a.0, b.0), (2, 3));
    }

    #[test]
    fn edge_subgraph_keeps_vertex_set() {
        let g = triangle_plus_pendant();
        let keep: Vec<EdgeId> = g
            .edges()
            .filter(|&(_, u, v)| u.0 == 0 || v.0 == 0)
            .map(|(e, _, _)| e)
            .collect();
        let h = g.edge_subgraph(keep.into_iter());
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2); // 0-1 and 0-2
        assert_eq!(h.degree(VertexId(3)), 0);
    }

    #[test]
    fn induced_subgraph() {
        let g = triangle_plus_pendant();
        let h = g.induced_subgraph(&[true, true, true, false]);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.degree(VertexId(3)), 0);
    }

    #[test]
    fn neighbor_ith_matches_iterator() {
        let g = triangle_plus_pendant();
        for v in 0..4 {
            let v = VertexId::new(v);
            let via_iter: Vec<VertexId> = g.neighbors(v).collect();
            for (i, &u) in via_iter.iter().enumerate() {
                assert_eq!(g.neighbor(v, i), u);
            }
        }
    }

    fn assert_byte_identical(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.half_edge_ids, b.half_edge_ids);
        assert_eq!(a.endpoints, b.endpoints);
    }

    /// All-pairs edge list on `n` vertices — big enough to push the
    /// parallel layout past [`PARALLEL_LAYOUT_CUTOFF`].
    fn dense_edges(n: usize) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        edges
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let n = 200; // C(200, 2) = 19 900 > PARALLEL_LAYOUT_CUTOFF
        let edges = dense_edges(n);
        assert!(edges.len() >= PARALLEL_LAYOUT_CUTOFF);
        let mut seq = GraphBuilder::new(n);
        seq.extend_edges(edges.iter().copied());
        let seq = seq.build();
        for threads in [1usize, 2, 3, 4, 8] {
            let mut par = GraphBuilder::new(n);
            // Insert in a scrambled order with duplicates to exercise the
            // sort + dedup path too.
            par.extend_edges(edges.iter().rev().copied());
            par.extend_edges(edges.iter().skip(7).step_by(13).copied());
            let par = par.build_parallel(threads);
            assert_byte_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_build_handles_tiny_and_empty_graphs() {
        for threads in [1usize, 2, 8] {
            let empty = GraphBuilder::new(0).build_parallel(threads);
            assert_eq!(empty.num_vertices(), 0);
            assert_eq!(empty.num_edges(), 0);
            let singleton = GraphBuilder::new(1).build_parallel(threads);
            assert_eq!(singleton.num_vertices(), 1);
            assert_eq!(singleton.degree(VertexId(0)), 0);
            let mut b = GraphBuilder::new(4);
            b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
            assert_byte_identical(&triangle_plus_pendant(), &b.build_parallel(threads));
        }
    }

    #[test]
    fn parallel_build_on_star_hub() {
        // One huge-degree hub: the degenerate load-balance case for
        // per-vertex-range prefix sums.
        let n = 20_000;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let mut seq = GraphBuilder::new(n);
        seq.extend_edges(edges.iter().copied());
        let seq = seq.build();
        for threads in [2usize, 5, 8] {
            let mut par = GraphBuilder::new(n);
            par.extend_edges(edges.iter().copied());
            let par = par.build_parallel(threads);
            assert_byte_identical(&seq, &par);
        }
        assert_eq!(seq.degree(VertexId(0)), n - 1);
    }

    #[test]
    fn from_marked_edges_matches_edge_subgraph() {
        let n = 220;
        let mut b = GraphBuilder::new(n);
        b.extend_edges(dense_edges(n));
        let g = b.build();
        // Keep a deterministic pseudo-random subset of edge ids (sorted).
        let keep: Vec<EdgeId> = (0..g.num_edges())
            .filter(|e| (e * 2_654_435_761) % 7 < 5)
            .map(EdgeId::new)
            .collect();
        assert!(keep.len() >= PARALLEL_LAYOUT_CUTOFF);
        let reference = g.edge_subgraph(keep.iter().copied());
        for threads in [1usize, 2, 4, 8] {
            let sub = from_marked_edges(&g, &keep, threads);
            assert_byte_identical(&reference, &sub);
        }
    }

    #[test]
    fn from_marked_edges_empty_and_full() {
        let g = triangle_plus_pendant();
        for threads in [1usize, 4] {
            let none = from_marked_edges(&g, &[], threads);
            assert_eq!(none.num_edges(), 0);
            assert_eq!(none.num_vertices(), 4);
            let all: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
            assert_byte_identical(&g, &from_marked_edges(&g, &all, threads));
        }
    }

    #[test]
    fn scratch_rebuild_matches_from_marked_edges() {
        let n = 220;
        let mut b = GraphBuilder::new(n);
        b.extend_edges(dense_edges(n));
        let g = b.build();
        let keep: Vec<EdgeId> = (0..g.num_edges())
            .filter(|e| (e * 2_654_435_761) % 7 < 5)
            .map(EdgeId::new)
            .collect();
        let reference = from_marked_edges(&g, &keep, 1);
        let mut scratch = CsrScratch::new();
        // Warm reuse: rebuild repeatedly (and on different subsets) into
        // the same scratch; every rebuild must match the fresh build.
        for _ in 0..2 {
            assert_byte_identical(&reference, scratch.rebuild_from_marked(&g, &keep));
        }
        let smaller: Vec<EdgeId> = keep.iter().copied().step_by(3).collect();
        assert_byte_identical(
            &from_marked_edges(&g, &smaller, 1),
            scratch.rebuild_from_marked(&g, &smaller),
        );
        // And back up to the larger subset after the smaller one.
        assert_byte_identical(&reference, scratch.rebuild_from_marked(&g, &keep));
        assert!(scratch.capacity_bytes() > 0);
    }

    #[test]
    fn scratch_handles_empty_and_tiny_graphs() {
        let mut scratch = CsrScratch::new();
        let g = triangle_plus_pendant();
        let rebuilt = scratch.rebuild_from_marked(&g, &[]);
        assert_eq!(rebuilt.num_vertices(), 4);
        assert_eq!(rebuilt.num_edges(), 0);
        let all: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
        assert_byte_identical(&g, scratch.rebuild_from_marked(&g, &all));
        scratch.clear();
        assert_eq!(scratch.graph().num_vertices(), 0);
        assert_byte_identical(&g, scratch.rebuild_from_marked(&g, &all));
        // `replace` stores an externally built graph verbatim.
        let h = from_marked_edges(&g, &all, 1);
        assert_byte_identical(&g, scratch.replace(h));
    }

    #[test]
    fn from_sorted_edges_matches_builder() {
        let n = 60;
        let edges: Vec<(u32, u32)> = dense_edges(n)
            .into_iter()
            .map(|(u, v)| (u as u32, v as u32))
            .collect();
        let mut b = GraphBuilder::new(n);
        b.extend_edges(dense_edges(n));
        assert_byte_identical(&b.build(), &from_sorted_edges(n, edges));
        assert_eq!(from_sorted_edges(5, Vec::new()).num_vertices(), 5);
    }

    #[test]
    fn offsets_are_narrow_below_the_u32_boundary() {
        let g = triangle_plus_pendant();
        assert!(matches!(g.offsets, Offsets::Narrow(_)));
        // memory_bytes audits every field at its real width: 4-byte
        // offsets (n+1), two 4-byte half-edge arrays (2m each), and
        // 8-byte endpoint pairs (m).
        let (n, m) = (g.num_vertices(), g.num_edges());
        assert_eq!(g.memory_bytes(), 4 * (n + 1) + 4 * 2 * m * 2 + 8 * m);
        assert_eq!(g.memory_bytes(), CsrGraph::projected_memory_bytes(n, m));
    }

    #[test]
    fn offsets_repr_is_a_function_of_half_edge_count() {
        let degree = [2u32, 1, 1];
        assert!(matches!(
            Offsets::from_degrees(&degree, 4),
            Offsets::Narrow(_)
        ));
        // Past the u32 boundary the same degrees take the wide repr.
        let wide = Offsets::from_degrees(&degree, usize::MAX);
        assert!(matches!(wide, Offsets::Wide(_)));
        assert_eq!(
            (0..4).map(|i| wide.get(i)).collect::<Vec<_>>(),
            vec![0, 2, 3, 4]
        );
        // from_wide canonicalizes parallel-layout output to narrow.
        let canon = Offsets::from_wide(vec![0, 2, 3, 4], 4);
        assert_eq!(canon, Offsets::from_degrees(&degree, 4));
    }

    #[test]
    fn offsets_rebuild_is_allocation_free_when_warm() {
        let degree = [2u32, 1, 1];
        let mut offs = Offsets::from_degrees(&degree, 4);
        let cap = offs.capacity_bytes();
        for _ in 0..3 {
            offs.rebuild_from_degrees(&degree, 4);
            assert_eq!(offs.capacity_bytes(), cap, "warm rebuild re-allocated");
        }
        // Switching width is allowed to allocate; switching back reuses
        // nothing but must still produce the right values.
        offs.rebuild_from_degrees(&degree, usize::MAX);
        assert!(matches!(offs, Offsets::Wide(_)));
        offs.rebuild_from_degrees(&degree, 4);
        assert!(matches!(offs, Offsets::Narrow(_)));
        assert_eq!(offs.get(3), 4);
    }

    #[test]
    fn projected_memory_bytes_matches_built_graphs() {
        let n = 220;
        let mut b = GraphBuilder::new(n);
        b.extend_edges(dense_edges(n));
        let g = b.build();
        assert_eq!(
            g.memory_bytes(),
            CsrGraph::projected_memory_bytes(g.num_vertices(), g.num_edges())
        );
    }
}
