//! Immutable compressed-sparse-row (CSR) graphs.
//!
//! [`CsrGraph`] is the in-memory realization of the paper's *adjacency-array
//! representation* (Section 3.1): for every vertex `v` we can read `deg(v)`
//! and the `i`-th neighbor of `v` in O(1), and the arrays are read-only.
//! Every half-edge also records the id of its undirected parent edge, which
//! lets sparsifier constructions collect "marked" edges without hashing.

use crate::ids::{EdgeId, VertexId};

/// An immutable undirected graph in CSR form.
///
/// ```
/// use sparsimatch_graph::csr::from_edges;
/// use sparsimatch_graph::ids::VertexId;
///
/// let g = from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(VertexId(2)), 3);
/// assert_eq!(g.neighbor(VertexId(2), 0), VertexId(0)); // sorted adjacency
/// assert!(g.has_edge(VertexId(3), VertexId(2)));
/// ```
///
/// Invariants (enforced by [`GraphBuilder`]):
/// * no self-loops and no parallel edges;
/// * each undirected edge `{u, v}` appears as two half-edges, one in each
///   endpoint's adjacency array, both carrying the same [`EdgeId`];
/// * adjacency arrays are sorted by neighbor id (enables O(log deg)
///   adjacency queries).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `v`'s half-edges.
    offsets: Vec<usize>,
    /// Neighbor endpoint of each half-edge.
    targets: Vec<u32>,
    /// Undirected parent edge of each half-edge.
    half_edge_ids: Vec<u32>,
    /// Endpoints `(u, v)` with `u < v` of each undirected edge.
    endpoints: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// The number of vertices `n`.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges `m`.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// The number of vertices with at least one incident edge (the paper's
    /// `n'`; success probabilities depend on `n'` rather than `n`).
    pub fn num_non_isolated(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| self.degree(VertexId::new(v)) > 0)
            .count()
    }

    /// The `i`-th neighbor of `v` (O(1), as the adjacency-array model
    /// requires). Panics if `i >= degree(v)`.
    #[inline(always)]
    pub fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        debug_assert!(i < self.degree(v));
        VertexId(self.targets[self.offsets[v.index()] + i])
    }

    /// The undirected edge id of `v`'s `i`-th half-edge.
    #[inline(always)]
    pub fn incident_edge(&self, v: VertexId, i: usize) -> EdgeId {
        debug_assert!(i < self.degree(v));
        EdgeId(self.half_edge_ids[self.offsets[v.index()] + i])
    }

    /// All neighbors of `v`, sorted by id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
            .iter()
            .map(|&t| VertexId(t))
    }

    /// All `(neighbor, edge_id)` pairs incident on `v`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let lo = self.offsets[v.index()];
        let hi = self.offsets[v.index() + 1];
        self.targets[lo..hi]
            .iter()
            .zip(&self.half_edge_ids[lo..hi])
            .map(|(&t, &e)| (VertexId(t), EdgeId(e)))
    }

    /// The endpoints `(u, v)` with `u < v` of undirected edge `e`.
    #[inline(always)]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (u, v) = self.endpoints[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// All undirected edges as `(EdgeId, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), VertexId(u), VertexId(v)))
    }

    /// Whether `{u, v}` is an edge (O(log min-degree) via binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The edge id of `{u, v}` if present (O(log min-degree)).
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let lo = self.offsets[a.index()];
        let hi = self.offsets[a.index() + 1];
        let slice = &self.targets[lo..hi];
        slice
            .binary_search(&b.0)
            .ok()
            .map(|i| EdgeId(self.half_edge_ids[lo + i]))
    }

    /// The subgraph consisting of the given undirected edges (vertex set is
    /// preserved). Edge ids are renumbered densely in the result.
    pub fn edge_subgraph(&self, keep: impl Iterator<Item = EdgeId>) -> CsrGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for e in keep {
            let (u, v) = self.edge_endpoints(e);
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// The subgraph induced by `keep[v] == true` vertices. The vertex set is
    /// preserved (dropped vertices become isolated), which keeps vertex ids
    /// stable across the sparsifier pipeline.
    pub fn induced_subgraph(&self, keep: &[bool]) -> CsrGraph {
        assert_eq!(keep.len(), self.num_vertices());
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (_, u, v) in self.edges() {
            if keep[u.index()] && keep[v.index()] {
                builder.add_edge(u, v);
            }
        }
        builder.build()
    }

    /// Total memory held by the four internal arrays, in bytes. Useful for
    /// documenting that sparsifiers are small.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * 4
            + self.half_edge_ids.len() * 4
            + self.endpoints.len() * 8
    }
}

/// Builder for [`CsrGraph`]: accumulates undirected edges, deduplicates,
/// drops self-loops, then lays out sorted CSR arrays.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// A builder pre-sized for roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Add the undirected edge `{u, v}`. Self-loops are ignored; duplicates
    /// are deduplicated at `build` time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            u.index() < self.num_vertices && v.index() < self.num_vertices,
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.push((a, b));
    }

    /// Bulk-add edges from `(u, v)` index pairs.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (usize, usize)>) {
        for (u, v) in it {
            self.add_edge(VertexId::new(u), VertexId::new(v));
        }
    }

    /// Finalize into a [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices;
        let m = self.edges.len();

        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }

        let mut targets = vec![0u32; 2 * m];
        let mut half_edge_ids = vec![0u32; 2 * m];
        let mut cursor = offsets[..n].to_vec();
        for (eid, &(u, v)) in self.edges.iter().enumerate() {
            let eid = eid as u32;
            targets[cursor[u as usize]] = v;
            half_edge_ids[cursor[u as usize]] = eid;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            half_edge_ids[cursor[v as usize]] = eid;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency window by neighbor id, carrying edge ids along.
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let mut window: Vec<(u32, u32)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(half_edge_ids[lo..hi].iter().copied())
                .collect();
            window.sort_unstable();
            for (i, (t, e)) in window.into_iter().enumerate() {
                targets[lo + i] = t;
                half_edge_ids[lo + i] = e;
            }
        }

        CsrGraph {
            offsets,
            targets,
            half_edge_ids,
            endpoints: self.edges,
        }
    }
}

/// Build a graph directly from an iterator of `(u, v)` index pairs.
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 2-0, 2-3
        from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.num_non_isolated(), 4);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = from_edges(5, [(0, 1)]);
        assert_eq!(g.num_non_isolated(), 2);
        assert_eq!(g.degree(VertexId(4)), 0);
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = triangle_plus_pendant();
        let nbrs: Vec<u32> = g.neighbors(VertexId(2)).map(|v| v.0).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = from_edges(3, [(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId(0)), 1);
    }

    #[test]
    fn half_edges_share_edge_id() {
        let g = triangle_plus_pendant();
        for (e, u, v) in g.edges() {
            let from_u = g
                .incident(u)
                .find(|&(t, _)| t == v)
                .map(|(_, id)| id)
                .unwrap();
            let from_v = g
                .incident(v)
                .find(|&(t, _)| t == u)
                .map(|(_, id)| id)
                .unwrap();
            assert_eq!(from_u, e);
            assert_eq!(from_v, e);
        }
    }

    #[test]
    fn find_edge_works_both_ways() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        let (a, b) = g.edge_endpoints(e);
        assert_eq!((a.0, b.0), (2, 3));
    }

    #[test]
    fn edge_subgraph_keeps_vertex_set() {
        let g = triangle_plus_pendant();
        let keep: Vec<EdgeId> = g
            .edges()
            .filter(|&(_, u, v)| u.0 == 0 || v.0 == 0)
            .map(|(e, _, _)| e)
            .collect();
        let h = g.edge_subgraph(keep.into_iter());
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 2); // 0-1 and 0-2
        assert_eq!(h.degree(VertexId(3)), 0);
    }

    #[test]
    fn induced_subgraph() {
        let g = triangle_plus_pendant();
        let h = g.induced_subgraph(&[true, true, true, false]);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.degree(VertexId(3)), 0);
    }

    #[test]
    fn neighbor_ith_matches_iterator() {
        let g = triangle_plus_pendant();
        for v in 0..4 {
            let v = VertexId::new(v);
            let via_iter: Vec<VertexId> = g.neighbors(v).collect();
            for (i, &u) in via_iter.iter().enumerate() {
                assert_eq!(g.neighbor(v, i), u);
            }
        }
    }
}
