//! The standard bounded-β instance families shared by the experiment
//! harness (`sparsimatch-bench`) and the differential-testing harness
//! (`sparsimatch-check`).
//!
//! Each family declares its certified β bound alongside the generated
//! graph, so consumers can size Δ honestly without re-computing β — and
//! the certificate itself is auditable: the exact branch-and-bound β
//! computation in [`crate::analysis::independence`] verifies every bound
//! on small instances (both in this module's tests and, per seed, in the
//! check harness).

use crate::csr::CsrGraph;
use crate::generators::{
    clique, clique_union, disk_graph, gnp, line_graph, proper_interval_with_degree, unit_disk,
    CliqueUnionConfig, DiskConfig, UnitDiskConfig,
};
use rand::Rng;

/// A named instance with a certified β bound.
pub struct Instance {
    /// Family label for tables.
    pub name: &'static str,
    /// The graph.
    pub graph: CsrGraph,
    /// Certified neighborhood independence bound.
    pub beta: usize,
}

/// The clique `K_n`: β = 1, maximally dense.
pub fn family_clique(n: usize) -> Instance {
    Instance {
        name: "clique",
        graph: clique(n),
        beta: 1,
    }
}

/// Union of 2 random clique layers: β ≤ 2, density tunable via layer size.
pub fn family_clique_union(n: usize, rng: &mut impl Rng) -> Instance {
    Instance {
        name: "clique-union",
        graph: clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: (n / 4).max(2),
            },
            rng,
        ),
        beta: 2,
    }
}

/// A denser 4-layer clique union: β ≤ 4.
pub fn family_clique_union4(n: usize, rng: &mut impl Rng) -> Instance {
    Instance {
        name: "clique-union-4",
        graph: clique_union(
            CliqueUnionConfig {
                n,
                diversity: 4,
                clique_size: (n / 8).max(2),
            },
            rng,
        ),
        beta: 4,
    }
}

/// Line graph of a random base graph: β ≤ 2. `n` is the *target* vertex
/// count of the line graph (= edges of the base).
pub fn family_line_graph(n: usize, rng: &mut impl Rng) -> Instance {
    // A base G(b, p) has ≈ p·b²/2 edges; solve for b at average degree 8.
    let b = (n / 4).max(8);
    let p = (8.0 / b as f64).min(1.0);
    let base = gnp(b, p, rng);
    Instance {
        name: "line-graph",
        graph: line_graph(&base),
        beta: 2,
    }
}

/// Random unit-disk graph with expected degree ~16: β ≤ 5.
pub fn family_unit_disk(n: usize, rng: &mut impl Rng) -> Instance {
    Instance {
        name: "unit-disk",
        graph: unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 16.0), rng),
        beta: 5,
    }
}

/// Random proper (unit) interval graph with expected degree ~14: β ≤ 2.
pub fn family_interval(n: usize, rng: &mut impl Rng) -> Instance {
    Instance {
        name: "proper-interval",
        graph: proper_interval_with_degree(n, 14.0, rng),
        beta: 2,
    }
}

/// Random general disk graph with radius ratio 2: β ≤ (1+2·2)² = 25
/// (conservative packing certificate; realized β is far smaller).
pub fn family_disk(n: usize, rng: &mut impl Rng) -> Instance {
    let cfg = DiskConfig {
        n,
        side: (n as f64).sqrt() * 0.8,
        r_min: 0.5,
        ratio: 2.0,
    };
    Instance {
        name: "disk-ratio-2",
        graph: disk_graph(cfg, rng),
        beta: cfg.beta_bound(),
    }
}

/// The standard battery used by most experiments.
pub fn standard_families(n: usize, rng: &mut impl Rng) -> Vec<Instance> {
    vec![
        family_clique(n),
        family_clique_union(n, rng),
        family_clique_union4(n, rng),
        family_line_graph(n, rng),
        family_unit_disk(n, rng),
        family_interval(n, rng),
        family_disk(n, rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_at_most;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn certified_betas_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for inst in standard_families(80, &mut rng) {
            assert!(
                neighborhood_independence_at_most(&inst.graph, inst.beta),
                "{}: beta certificate violated",
                inst.name
            );
            assert!(inst.graph.num_edges() > 0, "{}: empty instance", inst.name);
        }
    }

    #[test]
    fn families_have_distinct_names() {
        let mut rng = StdRng::seed_from_u64(2);
        let names: Vec<&str> = standard_families(40, &mut rng)
            .iter()
            .map(|i| i.name)
            .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
