#![warn(missing_docs)]

//! Graph substrate for the `sparsimatch` workspace.
//!
//! This crate provides everything the SPAA'20 matching-sparsifier
//! reproduction needs below the level of matchings:
//!
//! * [`csr::CsrGraph`] — an immutable compressed-sparse-row graph, the
//!   in-memory realization of the paper's *adjacency-array representation*
//!   (O(1) degree and i-th-neighbor access, read-only).
//! * [`adjacency::AdjacencyOracle`] — the access-model trait behind all
//!   sublinear-time claims, together with [`adjacency::CountingOracle`]
//!   which counts probes so experiments can report machine-independent
//!   complexities.
//! * [`sparse_array::SparseArray`] — the O(1)-initialization array
//!   (Aho–Hopcroft–Ullman) used by the paper's `pos_v` sampling trick
//!   (Section 3.1).
//! * [`edge_stream::EdgeStreamSource`] — rescannable lex-sorted edge
//!   streams (file-backed or in-memory) feeding the out-of-core
//!   sparsifier build without materializing the parent adjacency.
//! * [`adjlist::AdjListGraph`] — a mutable adjacency structure for the
//!   fully dynamic setting.
//! * [`generators`] — graph families of bounded neighborhood independence:
//!   line graphs, unit-disk graphs, clique unions (bounded diversity), the
//!   paper's lower-bound instances, and β-certified random graphs.
//! * [`analysis`] — structural measurements: degeneracy, exact arboricity
//!   (Nash–Williams via flow-based densest subgraph), and the neighborhood
//!   independence number β itself (exact and bounded).
//! * [`workloads`] — the named β-certified instance families shared by the
//!   experiment harness and the differential-testing harness.

pub mod adjacency;
pub mod adjlist;
pub mod analysis;
pub mod bitset;
pub mod csr;
pub mod edge_stream;
pub mod generators;
pub mod ids;
pub mod io;
pub mod sparse_array;
pub mod workloads;

pub use adjacency::{AdjacencyOracle, CountingOracle};
pub use adjlist::AdjListGraph;
pub use csr::{CsrGraph, GraphBuilder};
pub use ids::{EdgeId, VertexId};
pub use sparse_array::SparseArray;
