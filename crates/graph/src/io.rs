//! Plain-text edge-list serialization.
//!
//! Format (whitespace-separated, `#` comments):
//!
//! ```text
//! # optional comments
//! <n> <m>
//! <u> <v>      # one line per undirected edge, 0-based vertex ids
//! ...
//! ```
//!
//! The header's `m` is validated against the body. Self-loops and
//! duplicate edges are rejected on read (the in-memory representation
//! does not admit them, so silently dropping would corrupt round-trips).

use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use std::io::{BufRead, Write};

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> ReadError {
    ReadError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a graph from edge-list text.
pub fn read_edge_list(reader: impl BufRead) -> Result<CsrGraph, ReadError> {
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    let mut edges_read = 0usize;
    let mut seen = std::collections::HashSet::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let a: usize = fields
            .next()
            .ok_or_else(|| parse_error(lineno, "missing first field"))?
            .parse()
            .map_err(|e| parse_error(lineno, format!("bad integer: {e}")))?;
        let b: usize = fields
            .next()
            .ok_or_else(|| parse_error(lineno, "missing second field"))?
            .parse()
            .map_err(|e| parse_error(lineno, format!("bad integer: {e}")))?;
        if fields.next().is_some() {
            return Err(parse_error(lineno, "trailing fields"));
        }
        match (&header, &mut builder) {
            (None, _) => {
                header = Some((a, b));
                builder = Some(GraphBuilder::with_capacity(a, b));
            }
            (Some((n, m)), Some(builder)) => {
                let (n, m) = (*n, *m);
                if a >= n || b >= n {
                    return Err(parse_error(
                        lineno,
                        format!("vertex out of range (n = {n})"),
                    ));
                }
                if a == b {
                    return Err(parse_error(lineno, "self-loop"));
                }
                if !seen.insert((a.min(b), a.max(b))) {
                    return Err(parse_error(lineno, "duplicate edge"));
                }
                edges_read += 1;
                if edges_read > m {
                    return Err(parse_error(
                        lineno,
                        format!("more than the declared {m} edges"),
                    ));
                }
                builder.add_edge(VertexId::new(a), VertexId::new(b));
            }
            _ => unreachable!("builder exists whenever header does"),
        }
    }
    let Some((_, m)) = header else {
        return Err(parse_error(0, "empty input (missing header)"));
    };
    if edges_read != m {
        return Err(parse_error(
            0,
            format!("declared {m} edges but found {edges_read}"),
        ));
    }
    Ok(builder.expect("header implies builder").build())
}

/// Write a graph as edge-list text.
pub fn write_edge_list(g: &CsrGraph, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "{} {}", g.num_vertices(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(writer, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Convenience: read from a file path.
pub fn read_edge_list_file(path: &std::path::Path) -> Result<CsrGraph, ReadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Convenience: write to a file path.
pub fn write_edge_list_file(g: &CsrGraph, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    fn roundtrip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let h = roundtrip(&g);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 4);
        for (_, u, v) in g.edges() {
            assert!(h.has_edge(u, v));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\n3 2   # header\n0 1\n# middle\n1 2\n";
        let g = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cases = [
            ("", "empty"),
            ("3 1\n0 0\n", "self-loop"),
            ("3 2\n0 1\n0 1\n", "duplicate"),
            ("3 1\n0 5\n", "out of range"),
            ("3 2\n0 1\n", "declared 2"),
            ("3 1\n0 1\n1 2\n", "more than"),
            ("3 1\n0 1 9\n", "trailing"),
            ("3 x\n", "bad integer"),
        ];
        for (text, needle) in cases {
            let err = read_edge_list(std::io::Cursor::new(text)).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "input {text:?}: expected {needle:?} in {msg:?}"
            );
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = from_edges(7, []);
        let h = roundtrip(&g);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn file_helpers() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let dir = std::env::temp_dir().join("sparsimatch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        write_edge_list_file(&g, &path).unwrap();
        let h = read_edge_list_file(&path).unwrap();
        assert_eq!(h.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
