//! Plain-text edge-list serialization.
//!
//! Format (whitespace-separated, `#` comments):
//!
//! ```text
//! # optional comments
//! <n> <m>
//! <u> <v>      # one line per undirected edge, 0-based vertex ids
//! ...
//! ```
//!
//! The header's `m` is validated against the body. Self-loops and
//! duplicate edges are rejected on read (the in-memory representation
//! does not admit them, so silently dropping would corrupt round-trips).
//! Duplicate detection keeps no side table: while the input stays in
//! lexicographic order (our own writer's output always is) a duplicate is
//! adjacent and reported with its exact line; once order breaks, the
//! post-read sort finds any remaining duplicate and reports it with
//! `line: 0` (position unknown). Peak memory is therefore the 8-byte
//! edge buffer alone — the former `HashSet` shadow copy roughly septupled
//! the per-edge footprint at the worst moment.
//!
//! Input is treated as **untrusted**: header counts are range-checked
//! against [`MAX_VERTICES`] / [`MAX_EDGES`] and against each other
//! (`m ≤ n·(n−1)/2`, computed in 128 bits) *before* any allocation is
//! sized from them, and the edge-buffer preallocation is additionally
//! capped so a lying header cannot reserve gigabytes up front. Every
//! malformed-input path returns a typed [`ReadError`]; none panics.

use crate::csr::{from_sorted_edges, CsrGraph};
use std::io::{BufRead, Write};

/// Largest accepted vertex count (2²⁷ ≈ 134M: ids stay well inside `u32`
/// and the CSR layout arrays stay addressable).
pub const MAX_VERTICES: usize = 1 << 27;

/// Largest accepted edge count (2²⁸ ≈ 268M half-gigabyte edge list).
pub const MAX_EDGES: usize = 1 << 28;

/// Upper bound on the edge-buffer capacity reserved from the (untrusted)
/// header; the buffer still grows on demand for honest large inputs.
const PREALLOC_EDGES: usize = 1 << 16;

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A header count exceeds the hard input limits ([`MAX_VERTICES`],
    /// [`MAX_EDGES`], or `m > n·(n−1)/2`).
    TooLarge {
        /// 1-based line number.
        line: usize,
        /// What was out of bounds and by how much.
        message: String,
    },
    /// An edge line joins a vertex to itself.
    SelfLoop {
        /// 1-based line number.
        line: usize,
    },
    /// An edge line repeats an earlier edge (in either orientation).
    DuplicateEdge {
        /// 1-based line number; `0` when the duplicate was only found by
        /// the post-read sort of out-of-order input (no side table maps
        /// it back to a line).
        line: usize,
    },
    /// Any other structural problem with the file contents.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A rescannable source that previously delivered all `expected`
    /// edges came up short on a later pass: the file was truncated (or
    /// the device failed) between scans of a multi-pass build. Distinct
    /// from [`ReadError::Parse`] so callers can tell "the input was
    /// always bad" from "the input changed underneath a running build".
    TruncatedBetweenPasses {
        /// The declared (and previously delivered) edge count.
        expected: usize,
        /// Edges the short scan actually delivered.
        found: usize,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::TooLarge { line, message } => {
                write!(f, "line {line}: input too large: {message}")
            }
            ReadError::SelfLoop { line } => write!(f, "line {line}: self-loop"),
            ReadError::DuplicateEdge { line } => write!(f, "line {line}: duplicate edge"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::TruncatedBetweenPasses { expected, found } => write!(
                f,
                "stream truncated between passes: {expected} edges previously \
                 delivered, only {found} on rescan"
            ),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> ReadError {
    ReadError::Parse {
        line,
        message: message.into(),
    }
}

/// Range-check untrusted header counts before anything is sized from
/// them: `n ≤ MAX_VERTICES`, `m ≤ MAX_EDGES`, and `m ≤ n·(n−1)/2` in
/// 128-bit arithmetic. Shared by [`read_edge_list`] and the streaming
/// [`crate::edge_stream::FileEdgeSource`].
pub(crate) fn validate_header(a: u64, b: u64, lineno: usize) -> Result<(usize, usize), ReadError> {
    if a > MAX_VERTICES as u64 {
        return Err(ReadError::TooLarge {
            line: lineno,
            message: format!("{a} vertices (max {MAX_VERTICES})"),
        });
    }
    if b > MAX_EDGES as u64 {
        return Err(ReadError::TooLarge {
            line: lineno,
            message: format!("{b} edges (max {MAX_EDGES})"),
        });
    }
    // A simple graph on n vertices has at most n(n-1)/2 edges; 128-bit
    // arithmetic so the product cannot overflow.
    let max_m = (a as u128) * (a as u128).saturating_sub(1) / 2;
    if (b as u128) > max_m {
        return Err(ReadError::TooLarge {
            line: lineno,
            message: format!("{b} edges on {a} vertices (max {max_m})"),
        });
    }
    Ok((a as usize, b as usize))
}

/// Split an edge-list line into its two integer fields, stripping `#`
/// comments. Returns `None` for blank/comment-only lines. Parses as
/// `u64` so a 32-bit usize cannot make huge counts wrap into "valid"
/// small ones; callers range-check before narrowing.
pub(crate) fn parse_line_fields(
    line: &str,
    lineno: usize,
) -> Result<Option<(u64, u64)>, ReadError> {
    let content = line.split('#').next().unwrap_or("").trim();
    if content.is_empty() {
        return Ok(None);
    }
    let mut fields = content.split_whitespace();
    let a: u64 = fields
        .next()
        .ok_or_else(|| parse_error(lineno, "missing first field"))?
        .parse()
        .map_err(|e| parse_error(lineno, format!("bad integer: {e}")))?;
    let b: u64 = fields
        .next()
        .ok_or_else(|| parse_error(lineno, "missing second field"))?
        .parse()
        .map_err(|e| parse_error(lineno, format!("bad integer: {e}")))?;
    if fields.next().is_some() {
        return Err(parse_error(lineno, "trailing fields"));
    }
    Ok(Some((a, b)))
}

/// Read a graph from edge-list text.
///
/// Safe on untrusted input: header counts are validated against
/// [`MAX_VERTICES`] / [`MAX_EDGES`] / `m ≤ n·(n−1)/2` before they size
/// anything, and every malformed line maps to a typed [`ReadError`].
///
/// Peak memory is one 8-byte entry per edge: duplicates in
/// lexicographically ordered input (including everything
/// [`write_edge_list`] produces) are caught inline with exact line
/// numbers, and out-of-order input is sorted once at the end, where a
/// surviving duplicate is reported as [`ReadError::DuplicateEdge`] with
/// `line: 0` (position unknown).
pub fn read_edge_list(reader: impl BufRead) -> Result<CsrGraph, ReadError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut sorted = true;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let Some((a, b)) = parse_line_fields(&line, lineno)? else {
            continue;
        };
        match header {
            None => {
                let (n, m) = validate_header(a, b, lineno)?;
                header = Some((n, m));
                // Cap the reserve: the header is untrusted, so it may
                // promise far more edges than the file contains.
                edges.reserve(m.min(PREALLOC_EDGES));
            }
            Some((n, m)) => {
                if a >= n as u64 || b >= n as u64 {
                    return Err(parse_error(
                        lineno,
                        format!("vertex out of range (n = {n})"),
                    ));
                }
                if a == b {
                    return Err(ReadError::SelfLoop { line: lineno });
                }
                // In range => fits u32 (n ≤ MAX_VERTICES < 2^32).
                let edge = (a.min(b) as u32, a.max(b) as u32);
                if sorted {
                    if let Some(&prev) = edges.last() {
                        if edge == prev {
                            return Err(ReadError::DuplicateEdge { line: lineno });
                        }
                        if edge < prev {
                            sorted = false;
                        }
                    }
                }
                if edges.len() == m {
                    return Err(parse_error(
                        lineno,
                        format!("more than the declared {m} edges"),
                    ));
                }
                edges.push(edge);
            }
        }
    }
    let Some((n, m)) = header else {
        return Err(parse_error(0, "empty input (missing header)"));
    };
    if edges.len() != m {
        return Err(parse_error(
            0,
            format!("declared {m} edges but found {}", edges.len()),
        ));
    }
    if !sorted {
        edges.sort_unstable();
        if edges.windows(2).any(|w| w[0] == w[1]) {
            return Err(ReadError::DuplicateEdge { line: 0 });
        }
    }
    Ok(from_sorted_edges(n, edges))
}

/// Write a graph as edge-list text.
pub fn write_edge_list(g: &CsrGraph, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "{} {}", g.num_vertices(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(writer, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Convenience: read from a file path.
pub fn read_edge_list_file(path: &std::path::Path) -> Result<CsrGraph, ReadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Convenience: write to a file path.
pub fn write_edge_list_file(g: &CsrGraph, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;

    fn roundtrip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let h = roundtrip(&g);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 4);
        for (_, u, v) in g.edges() {
            assert!(h.has_edge(u, v));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\n3 2   # header\n0 1\n# middle\n1 2\n";
        let g = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cases = [
            ("", "empty"),
            ("3 1\n0 0\n", "self-loop"),
            ("3 2\n0 1\n0 1\n", "duplicate"),
            ("3 1\n0 5\n", "out of range"),
            ("3 2\n0 1\n", "declared 2"),
            ("3 1\n0 1\n1 2\n", "more than"),
            ("3 1\n0 1 9\n", "trailing"),
            ("3 x\n", "bad integer"),
        ];
        for (text, needle) in cases {
            let err = read_edge_list(std::io::Cursor::new(text)).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "input {text:?}: expected {needle:?} in {msg:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_and_lying_headers() {
        // (header, expect-TooLarge). None of these may allocate from the
        // claimed sizes — TooLarge fires before the builder exists.
        let too_large = [
            format!("{} 1\n", MAX_VERTICES + 1),    // n over the cap
            format!("3 {}\n", MAX_EDGES + 1),       // m over the cap
            "18446744073709551615 1\n".to_string(), // u64::MAX vertices
            "4 7\n".to_string(),                    // m > n(n-1)/2 = 6
            "1 1\n".to_string(),                    // no edges fit n = 1
            "0 1\n".to_string(),                    // ... or n = 0
        ];
        for text in &too_large {
            match read_edge_list(std::io::Cursor::new(text.as_str())) {
                Err(ReadError::TooLarge { line: 1, .. }) => {}
                other => panic!("{text:?}: expected TooLarge, got {other:?}"),
            }
        }
        // Beyond-u64 counts are a parse error, not a silent wrap.
        let err = read_edge_list(std::io::Cursor::new("99999999999999999999999 0\n"));
        assert!(
            matches!(err, Err(ReadError::Parse { line: 1, .. })),
            "{err:?}"
        );
        // Boundary acceptance: the largest legal n parses (with m = 0 the
        // capped preallocation keeps this instant).
        let ok = read_edge_list(std::io::Cursor::new(format!("{MAX_VERTICES} 0\n")));
        assert_eq!(ok.unwrap().num_vertices(), MAX_VERTICES);
    }

    #[test]
    fn lying_header_about_m_fails_without_huge_reserve() {
        // The header promises the maximum legal edge count but the body
        // holds two edges. The capped preallocation means the lie cannot
        // reserve gigabytes; the mismatch is still a clean typed error.
        let text = format!("{MAX_VERTICES} {MAX_EDGES}\n0 1\n0 2\n");
        match read_edge_list(std::io::Cursor::new(text)) {
            Err(ReadError::Parse { line: 0, message }) => {
                assert!(message.contains(&format!("declared {MAX_EDGES} edges but found 2")));
            }
            other => panic!("expected count mismatch, got {other:?}"),
        }
        // The opposite lie — more edges than declared — fails at the
        // first excess line, before it is buffered.
        match read_edge_list(std::io::Cursor::new("5 1\n0 1\n2 3\n")) {
            Err(ReadError::Parse { line: 3, message }) => {
                assert!(message.contains("more than the declared 1"));
            }
            other => panic!("expected excess-edge error, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_input_still_parses_and_rejects_duplicates() {
        // Out-of-order (but valid) input round-trips through the final
        // sort to the same graph as sorted input.
        let g = read_edge_list(std::io::Cursor::new("4 3\n2 3\n0 2\n0 1\n")).unwrap();
        let h = from_edges(4, [(0, 1), (0, 2), (2, 3)]);
        assert_eq!(g, h);
        // A duplicate hidden behind the order break is still rejected;
        // its line is unknown (0) because no side table survives.
        match read_edge_list(std::io::Cursor::new("4 3\n2 3\n0 1\n3 2\n")) {
            Err(ReadError::DuplicateEdge { line: 0 }) => {}
            other => panic!("expected DuplicateEdge at line 0, got {other:?}"),
        }
    }

    #[test]
    fn typed_variants_carry_line_numbers() {
        match read_edge_list(std::io::Cursor::new("3 2\n0 1\n2 2\n")) {
            Err(ReadError::SelfLoop { line: 3 }) => {}
            other => panic!("expected SelfLoop at line 3, got {other:?}"),
        }
        match read_edge_list(std::io::Cursor::new("3 2\n0 1\n1 0\n")) {
            Err(ReadError::DuplicateEdge { line: 3 }) => {}
            other => panic!("expected DuplicateEdge at line 3, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = from_edges(7, []);
        let h = roundtrip(&g);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn file_helpers() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let dir = std::env::temp_dir().join("sparsimatch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        write_edge_list_file(&g, &path).unwrap();
        let h = read_edge_list_file(&path).unwrap();
        assert_eq!(h.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
