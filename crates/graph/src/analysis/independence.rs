//! The neighborhood independence number β.
//!
//! `β(G)` is the size of the largest independent set contained in the
//! neighborhood `N(v)` of any vertex `v` — the parameter every theorem in
//! the paper is stated in. Computing a maximum independent set is NP-hard
//! in general, but the instances here are *neighborhood-induced* subgraphs
//! of bounded-β families (unions of few cliques, disk packings, …), where
//! a branch-and-bound with max-degree pivoting terminates quickly.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// A dynamic bitset over at most `64 * words` elements.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }
    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }
    #[inline]
    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
    #[inline]
    fn and_not(&self, other: &BitSet) -> BitSet {
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }
    #[inline]
    fn intersect_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Maximum independent set size of the graph given as adjacency bitsets
/// (`adj[i]` = neighbors of local vertex `i`), optionally stopping early
/// once `stop_at` is reached (pass `usize::MAX` for an exact answer).
fn mis_size(adj: &[BitSet], n: usize, stop_at: usize) -> usize {
    let mut candidates = BitSet::empty(n);
    for i in 0..n {
        candidates.set(i);
    }
    let mut best = 0usize;
    mis_branch(adj, candidates, 0, &mut best, stop_at);
    best
}

fn mis_branch(adj: &[BitSet], cand: BitSet, current: usize, best: &mut usize, stop_at: usize) {
    if *best >= stop_at {
        return;
    }
    let remaining = cand.count();
    if current + remaining <= *best {
        return; // bound: even taking everything can't beat best
    }
    if remaining == 0 {
        *best = (*best).max(current);
        return;
    }
    // Pivot on the candidate with the most candidate-neighbors; if it has
    // none, the candidate set is independent and we take it whole.
    let mut pivot = usize::MAX;
    let mut pivot_deg = 0usize;
    for i in cand.iter_ones() {
        let d = adj[i].intersect_count(&cand);
        if pivot == usize::MAX || d > pivot_deg {
            pivot = i;
            pivot_deg = d;
        }
    }
    if pivot_deg == 0 {
        *best = (*best).max(current + remaining);
        return;
    }
    // Branch 1: include pivot (drop pivot and its neighbors).
    let mut incl = cand.and_not(&adj[pivot]);
    incl.clear(pivot);
    mis_branch(adj, incl, current + 1, best, stop_at);
    // Branch 2: exclude pivot.
    let mut excl = cand;
    excl.clear(pivot);
    mis_branch(adj, excl, current, best, stop_at);
}

/// Independence number of the subgraph of `g` induced by `verts`, with
/// early exit at `stop_at`.
fn induced_mis(g: &CsrGraph, verts: &[VertexId], stop_at: usize) -> usize {
    let k = verts.len();
    if k == 0 {
        return 0;
    }
    // Local index map.
    let mut local = std::collections::HashMap::with_capacity(k);
    for (i, &v) in verts.iter().enumerate() {
        local.insert(v, i);
    }
    let mut adj: Vec<BitSet> = (0..k).map(|_| BitSet::empty(k)).collect();
    for (i, &v) in verts.iter().enumerate() {
        for u in g.neighbors(v) {
            if let Some(&j) = local.get(&u) {
                adj[i].set(j);
                adj[j].set(i);
            }
        }
    }
    mis_size(&adj, k, stop_at)
}

/// The exact neighborhood independence number `β(G)`:
/// `max_v MIS(G[N(v)])`, or 0 for edgeless graphs.
///
/// Worst-case exponential in the largest neighborhood, but fast on the
/// bounded-β families this workspace targets. For a guaranteed-cheap
/// variant use [`neighborhood_independence_at_most`].
pub fn neighborhood_independence_exact(g: &CsrGraph) -> usize {
    let mut beta = 0usize;
    for v in 0..g.num_vertices() {
        let v = VertexId::new(v);
        let nbrs: Vec<VertexId> = g.neighbors(v).collect();
        if nbrs.len() <= beta {
            continue; // cannot beat current best
        }
        beta = beta.max(induced_mis(g, &nbrs, usize::MAX));
    }
    beta
}

/// The independence number of one vertex's neighborhood, exactly.
pub fn neighborhood_mis(g: &CsrGraph, v: VertexId) -> usize {
    let nbrs: Vec<VertexId> = g.neighbors(v).collect();
    induced_mis(g, &nbrs, usize::MAX)
}

/// A sampled **lower bound** on β: the exact neighborhood independence of
/// `samples` uniformly random vertices (biased toward high degree by
/// also always including the max-degree vertex, which often realizes β).
///
/// Useful when the exact sweep is too slow; note the direction — for
/// sizing Δ safely one wants an *upper* bound, e.g. the diversity bound
/// of [`crate::analysis::diversity::diversity`], and this sampler only certifies
/// "β is at least this".
pub fn estimate_beta_sampled(g: &CsrGraph, samples: usize, rng: &mut impl rand::Rng) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    if let Some(vmax) = (0..n).max_by_key(|&v| g.degree(VertexId::new(v))) {
        best = neighborhood_mis(g, VertexId::new(vmax));
    }
    for _ in 0..samples {
        let v = VertexId::new(rng.random_range(0..n));
        if g.degree(v) > best {
            best = best.max(neighborhood_mis(g, v));
        }
    }
    best
}

/// Decide whether `β(G) ≤ k`, terminating each per-neighborhood search as
/// soon as an independent set of size `k + 1` is found. Much cheaper than
/// the exact computation when the answer is "no".
pub fn neighborhood_independence_at_most(g: &CsrGraph, k: usize) -> bool {
    for v in 0..g.num_vertices() {
        let v = VertexId::new(v);
        let nbrs: Vec<VertexId> = g.neighbors(v).collect();
        if nbrs.len() <= k {
            continue;
        }
        if induced_mis(g, &nbrs, k + 1) > k {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators::{clique, complete_bipartite, cycle, path, star};

    #[test]
    fn clique_has_beta_one() {
        assert_eq!(neighborhood_independence_exact(&clique(8)), 1);
    }

    #[test]
    fn star_has_beta_n_minus_one() {
        assert_eq!(neighborhood_independence_exact(&star(9)), 8);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(neighborhood_independence_exact(&path(6)), 2);
        assert_eq!(neighborhood_independence_exact(&cycle(6)), 2);
        // Triangle: each neighborhood is an edge => beta 1.
        assert_eq!(neighborhood_independence_exact(&cycle(3)), 1);
    }

    #[test]
    fn complete_bipartite_beta() {
        // N(left vertex) = right side, an independent set of size b.
        assert_eq!(
            neighborhood_independence_exact(&complete_bipartite(3, 5)),
            5
        );
    }

    #[test]
    fn edgeless_graph() {
        assert_eq!(neighborhood_independence_exact(&from_edges(4, [])), 0);
    }

    #[test]
    fn sampled_estimate_is_a_lower_bound_and_often_tight() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let g = crate::generators::gnp(20, 0.3, &mut rng);
            let exact = neighborhood_independence_exact(&g);
            let est = estimate_beta_sampled(&g, 10, &mut rng);
            assert!(est <= exact, "estimate {est} above exact {exact}");
        }
        // On a star the max-degree vertex realizes beta, so the estimate
        // is exact.
        let s = crate::generators::star(15);
        assert_eq!(estimate_beta_sampled(&s, 0, &mut rng), 14);
    }

    #[test]
    fn neighborhood_mis_matches_definition() {
        let g = crate::generators::complete_bipartite(2, 6);
        // Left vertices see the 6-element independent right side.
        assert_eq!(neighborhood_mis(&g, VertexId(0)), 6);
        // Right vertices see the 2-element independent left side.
        assert_eq!(neighborhood_mis(&g, VertexId(5)), 2);
    }

    #[test]
    fn at_most_agrees_with_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..20 {
            let g = crate::generators::gnp(14, 0.35, &mut rng);
            let beta = neighborhood_independence_exact(&g);
            if beta > 0 {
                assert!(!neighborhood_independence_at_most(&g, beta - 1));
            }
            assert!(neighborhood_independence_at_most(&g, beta));
            assert!(neighborhood_independence_at_most(&g, beta + 1));
        }
    }

    #[test]
    fn mis_brute_force_cross_check() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4321);
        for _ in 0..10 {
            let g = crate::generators::gnp(12, 0.3, &mut rng);
            // Brute force beta.
            let n = g.num_vertices();
            let mut brute = 0usize;
            for v in 0..n {
                let nbrs: Vec<usize> = g.neighbors(VertexId::new(v)).map(|u| u.index()).collect();
                // All subsets of the neighborhood.
                for mask in 0u32..(1 << nbrs.len()) {
                    let chosen: Vec<usize> = (0..nbrs.len())
                        .filter(|&i| mask >> i & 1 == 1)
                        .map(|i| nbrs[i])
                        .collect();
                    let independent = chosen.iter().enumerate().all(|(i, &a)| {
                        chosen[i + 1..]
                            .iter()
                            .all(|&b| !g.has_edge(VertexId::new(a), VertexId::new(b)))
                    });
                    if independent {
                        brute = brute.max(chosen.len());
                    }
                }
            }
            assert_eq!(neighborhood_independence_exact(&g), brute);
        }
    }
}
