//! Structural graph analysis.
//!
//! * [`flow`] — Dinic max-flow, the substrate for exact densest-subgraph.
//! * [`arboricity`] — degeneracy, exact maximum subgraph density
//!   (Goldberg's flow reduction), pseudoarboricity, and Nash–Williams
//!   arboricity bounds: the quantities behind Observation 2.12.
//! * [`independence`] — the neighborhood independence number β itself,
//!   exact (branch & bound over neighborhood induced subgraphs) and capped.

pub mod arboricity;
pub mod diversity;
pub mod flow;
pub mod independence;

pub use arboricity::{arboricity_bounds, degeneracy, max_density, pseudoarboricity};
pub use diversity::{clique_report, diversity, CliqueReport};
pub use independence::{neighborhood_independence_at_most, neighborhood_independence_exact};
