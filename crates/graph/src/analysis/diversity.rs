//! Graph diversity: maximal-clique membership counts.
//!
//! The *diversity* of a vertex is the number of maximal cliques containing
//! it; the diversity of a graph is the maximum over vertices (Section 1.1
//! of the paper, following Barenboim–Elkin–Maimon). Since each maximal
//! clique contributes at most one vertex to an independent set inside a
//! neighborhood, **β(G) ≤ diversity(G)** — the containment that puts the
//! bounded-diversity family inside the paper's scope, and which the test
//! suite verifies against the exact β computation.
//!
//! Maximal cliques are enumerated with Bron–Kerbosch with pivoting
//! (worst-case exponential — `3^{n/3}` cliques exist — so the entry point
//! takes an explicit budget and reports truncation instead of hanging).

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Result of clique enumeration.
#[derive(Clone, Debug)]
pub struct CliqueReport {
    /// Per-vertex maximal-clique membership counts.
    pub membership: Vec<usize>,
    /// Total maximal cliques found.
    pub cliques: usize,
    /// True if enumeration stopped at the budget (counts are then lower
    /// bounds).
    pub truncated: bool,
}

impl CliqueReport {
    /// The graph diversity (max membership count).
    pub fn diversity(&self) -> usize {
        self.membership.iter().copied().max().unwrap_or(0)
    }
}

#[derive(Clone)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn empty(n: usize) -> Self {
        Bits {
            words: vec![0; n.div_ceil(64)],
        }
    }
    fn full(n: usize) -> Self {
        let mut b = Bits::empty(n);
        for i in 0..n {
            b.set(i);
        }
        b
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }
    #[inline]
    fn and(&self, o: &Bits) -> Bits {
        Bits {
            words: self
                .words
                .iter()
                .zip(&o.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
    #[inline]
    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }
    #[inline]
    fn count_and(&self, o: &Bits) -> usize {
        self.words
            .iter()
            .zip(&o.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
    fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                (w != 0).then(|| {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    wi * 64 + b
                })
            })
        })
    }
}

/// Enumerate maximal cliques (up to `budget` of them) and report
/// per-vertex membership counts.
pub fn clique_report(g: &CsrGraph, budget: usize) -> CliqueReport {
    let n = g.num_vertices();
    let adj: Vec<Bits> = (0..n)
        .map(|v| {
            let mut b = Bits::empty(n);
            for u in g.neighbors(VertexId::new(v)) {
                b.set(u.index());
            }
            b
        })
        .collect();
    let mut report = CliqueReport {
        membership: vec![0; n],
        cliques: 0,
        truncated: false,
    };
    let mut r: Vec<usize> = Vec::new();
    bron_kerbosch(
        &adj,
        &mut r,
        Bits::full(n),
        Bits::empty(n),
        budget,
        &mut report,
    );
    report
}

/// The graph diversity, or `None` if enumeration exceeded `budget`
/// maximal cliques.
pub fn diversity(g: &CsrGraph, budget: usize) -> Option<usize> {
    let report = clique_report(g, budget);
    (!report.truncated).then(|| report.diversity())
}

fn bron_kerbosch(
    adj: &[Bits],
    r: &mut Vec<usize>,
    p: Bits,
    x: Bits,
    budget: usize,
    report: &mut CliqueReport,
) {
    if report.truncated {
        return;
    }
    if !p.any() && !x.any() {
        // Isolated vertices form their own singleton maximal "cliques";
        // count them like any other (r is empty only for the empty graph).
        if !r.is_empty() {
            if report.cliques >= budget {
                report.truncated = true;
                return;
            }
            report.cliques += 1;
            for &v in r.iter() {
                report.membership[v] += 1;
            }
        }
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .ones()
        .chain(x.ones())
        .max_by_key(|&u| adj[u].count_and(&p))
        // Safety: the P = X = ∅ base case returned above, so the chained
        // iterator yields at least one vertex.
        .expect("P ∪ X nonempty here");
    let mut p = p;
    let mut x = x;
    let candidates: Vec<usize> = {
        let mut not_nbr = p.clone();
        for u in adj[pivot].ones() {
            not_nbr.clear(u);
        }
        not_nbr.ones().collect()
    };
    for v in candidates {
        r.push(v);
        bron_kerbosch(adj, r, p.and(&adj[v]), x.and(&adj[v]), budget, report);
        r.pop();
        p.clear(v);
        x.set(v);
        if report.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::independence::neighborhood_independence_exact;
    use crate::csr::from_edges;
    use crate::generators::{clique, cycle, gnp, path, star};

    const BUDGET: usize = 100_000;

    #[test]
    fn clique_has_one_maximal_clique() {
        let r = clique_report(&clique(7), BUDGET);
        assert_eq!(r.cliques, 1);
        assert_eq!(r.diversity(), 1);
    }

    #[test]
    fn star_diversity_is_leaf_count() {
        let r = clique_report(&star(8), BUDGET);
        assert_eq!(r.cliques, 7, "each edge is a maximal clique");
        assert_eq!(r.diversity(), 7, "the center is in all of them");
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(diversity(&path(6), BUDGET), Some(2));
        assert_eq!(diversity(&cycle(6), BUDGET), Some(2));
        assert_eq!(
            diversity(&cycle(3), BUDGET),
            Some(1),
            "triangle is a clique"
        );
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let r = clique_report(&g, BUDGET);
        assert_eq!(r.cliques, 2);
        assert_eq!(r.diversity(), 2, "the shared vertex is in both");
    }

    #[test]
    fn beta_bounded_by_diversity() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let g = gnp(16, 0.35, &mut rng);
            let beta = neighborhood_independence_exact(&g);
            let div = diversity(&g, BUDGET).expect("small graph within budget");
            assert!(beta <= div, "beta {beta} > diversity {div}");
        }
    }

    #[test]
    fn budget_truncation_reported() {
        // Turán-style graph with many maximal cliques: complete 5-partite
        // with parts of size 3 has 3^5 = 243 maximal cliques.
        let mut edges = Vec::new();
        for u in 0..15 {
            for v in (u + 1)..15 {
                if u / 3 != v / 3 {
                    edges.push((u, v));
                }
            }
        }
        let g = from_edges(15, edges);
        let full = clique_report(&g, BUDGET);
        assert_eq!(full.cliques, 243);
        assert!(!full.truncated);
        let cut = clique_report(&g, 10);
        assert!(cut.truncated);
        assert!(diversity(&g, 10).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(4, []);
        let r = clique_report(&g, BUDGET);
        // Each isolated vertex is a singleton maximal clique.
        assert_eq!(r.cliques, 4);
        assert_eq!(r.diversity(), 1);
    }
}
