//! Degeneracy, maximum subgraph density, pseudoarboricity, and arboricity.
//!
//! Observation 2.12 asserts the sparsifier `G_Δ` has arboricity ≤ 2Δ. By
//! Nash–Williams, `α(G) = max_U ⌈|E(U)|/(|U|−1)⌉`; computing it exactly is
//! a matroid-union computation, but it is sandwiched within 1 by the
//! *pseudoarboricity* `p(G) = ⌈ρ*(G)⌉` where `ρ*(G) = max_U |E(U)|/|U|` is
//! the maximum subgraph density:
//!
//! ```text
//! p(G) ≤ α(G) ≤ p(G) + 1         and         α(G) ≤ degeneracy(G)
//! ```
//!
//! We compute `ρ*` **exactly** with Goldberg's flow reduction (binary
//! search over the O(n²) candidate densities, one Dinic run per step), so
//! experiments can verify `α(G_Δ) ≤ 2Δ` through certified bounds rather
//! than heuristics.

use super::flow::{FlowNetwork, INF};
use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// The degeneracy of `G`: the smallest `d` such that every subgraph has a
/// vertex of degree ≤ `d`. Computed by bucket peeling in O(n + m).
///
/// Satisfies `α(G) ≤ degeneracy(G) ≤ 2α(G) − 1`.
pub fn degeneracy(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(VertexId::new(v))).collect();
    // Safety: n > 0 here (guarded above), so `deg` is non-empty.
    let max_deg = *deg.iter().max().unwrap();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize; // lowest possibly-nonempty bucket
    for _ in 0..n {
        // Find the lowest-degree live vertex.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Buckets hold stale entries; skip them.
        let v = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            // Safety: the inner while loop advanced past empty buckets, and
            // every live vertex sits in buckets[deg[v]] ≤ max_deg, so a
            // non-empty bucket exists while any vertex remains unpeeled.
            let candidate = buckets[cursor].pop().unwrap();
            let cu = candidate as usize;
            if !removed[cu] && deg[cu] == cursor {
                break cu;
            }
        };
        degeneracy = degeneracy.max(deg[v]);
        removed[v] = true;
        for u in g.neighbors(VertexId::new(v)) {
            let u = u.index();
            if !removed[u] {
                deg[u] -= 1;
                buckets[deg[u]].push(u as u32);
                cursor = cursor.min(deg[u]);
            }
        }
    }
    degeneracy
}

/// The exact maximum subgraph density `ρ* = max_{∅≠U⊆V} |E(U)| / |U|`,
/// returned as an exact fraction `(|E(U*)|, |U*|)` for a densest `U*`.
///
/// Goldberg's reduction: for a guess `g = a/b`, build the network
/// `s →(b) e → u, v (∞)`, `u →(a) t` for every edge node `e = {u,v}` and
/// vertex node `u`; then `min-cut < m·b` iff some subgraph has density
/// > `a/b`. Distinct densities differ by ≥ `1/(n(n−1))`, so a binary
/// > search on integers `a` with fixed denominator `b = n(n−1)` pins the
/// > optimum, after which the cut's vertex side identifies `U*` and we read
/// > off the exact fraction.
pub fn max_density(g: &CsrGraph) -> (u64, u64) {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    if m == 0 {
        return (0, 1);
    }
    let b = n * (n - 1); // common denominator
    let mut lo = 0u64; // density > lo/b is known achievable
    let mut hi = m * b; // density > hi/b is known unachievable (ρ* ≤ m)
                        // Invariant: exists U with density > lo/b (density ≥ smallest positive
                        // density > 0 = lo/b initially since m ≥ 1); no U has density > hi/b.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if denser_than(g, mid, b) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Some subgraph has density > lo/b and none exceeds hi/b = (lo+1)/b.
    // Extract the witness for guess lo/b.
    let witness = densest_witness(g, lo, b);
    let (edges, verts) = subgraph_size(g, &witness);
    debug_assert!(verts > 0);
    (edges, verts)
}

/// Does some nonempty `U` have `|E(U)|/|U| > a/b`?
fn denser_than(g: &CsrGraph, a: u64, b: u64) -> bool {
    let (mut net, s, t, mb) = goldberg_network(g, a, b);
    net.max_flow(s, t) < mb
}

/// The vertex set of a subgraph with density > `a/b` (valid when one
/// exists): vertex nodes on the source side of the min cut.
fn densest_witness(g: &CsrGraph, a: u64, b: u64) -> Vec<bool> {
    let (mut net, s, t, _mb) = goldberg_network(g, a, b);
    net.max_flow(s, t);
    let side = net.min_cut_source_side(s);
    let m = g.num_edges();
    (0..g.num_vertices()).map(|v| side[1 + m + v]).collect()
}

/// Nodes: 0 = s, 1..=m = edge nodes, m+1..=m+n = vertex nodes, last = t.
fn goldberg_network(g: &CsrGraph, a: u64, b: u64) -> (FlowNetwork, usize, usize, u64) {
    let n = g.num_vertices();
    let m = g.num_edges();
    let s = 0usize;
    let t = 1 + m + n;
    let mut net = FlowNetwork::new(t + 1);
    for (e, u, v) in g.edges() {
        let enode = 1 + e.index();
        net.add_arc(s, enode, b);
        net.add_arc(enode, 1 + m + u.index(), INF);
        net.add_arc(enode, 1 + m + v.index(), INF);
    }
    for v in 0..n {
        net.add_arc(1 + m + v, t, a);
    }
    (net, s, t, m as u64 * b)
}

fn subgraph_size(g: &CsrGraph, keep: &[bool]) -> (u64, u64) {
    let verts = keep.iter().filter(|&&k| k).count() as u64;
    let edges = g
        .edges()
        .filter(|&(_, u, v)| keep[u.index()] && keep[v.index()])
        .count() as u64;
    (edges, verts)
}

/// The pseudoarboricity `p(G) = ⌈ρ*(G)⌉` (max density rounded up).
pub fn pseudoarboricity(g: &CsrGraph) -> usize {
    let (num, den) = max_density(g);
    num.div_ceil(den) as usize
}

/// Certified bounds `(lo, hi)` with `lo ≤ α(G) ≤ hi`:
/// `lo = max(p, ⌈max_U |E(U)|/(|U|−1)⌉ on the densest witness)` and
/// `hi = min(p + 1, degeneracy)`.
pub fn arboricity_bounds(g: &CsrGraph) -> (usize, usize) {
    if g.num_edges() == 0 {
        return (0, 0);
    }
    let (num, den) = max_density(g);
    let p = num.div_ceil(den) as usize;
    // Nash–Williams on the densest witness gives a valid lower bound with
    // the correct (|U|−1) denominator.
    let nw_lo = if den >= 2 {
        num.div_ceil(den - 1) as usize
    } else {
        p
    };
    let lo = p.max(nw_lo);
    let hi = (p + 1).min(degeneracy(g)).max(lo);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::generators::{clique, complete_bipartite, cycle, path, star};

    #[test]
    fn degeneracy_basics() {
        assert_eq!(degeneracy(&path(10)), 1);
        assert_eq!(degeneracy(&cycle(10)), 2);
        assert_eq!(degeneracy(&star(10)), 1);
        assert_eq!(degeneracy(&clique(6)), 5);
        assert_eq!(degeneracy(&complete_bipartite(3, 7)), 3);
    }

    #[test]
    fn degeneracy_of_empty_and_trivial() {
        assert_eq!(degeneracy(&from_edges(0, [])), 0);
        assert_eq!(degeneracy(&from_edges(5, [])), 0);
    }

    #[test]
    fn max_density_of_clique() {
        // K_5: density = 10/5 = 2.
        let (num, den) = max_density(&clique(5));
        assert_eq!((num * 2, den), (den * 4, den)); // num/den == 2
        assert_eq!(num as f64 / den as f64, 2.0);
    }

    #[test]
    fn max_density_finds_dense_core() {
        // K_5 plus a long pendant path: densest subgraph is still K_5.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for v in 5..20 {
            edges.push((v - 1, v));
        }
        let g = from_edges(20, edges);
        let (num, den) = max_density(&g);
        assert_eq!(num as f64 / den as f64, 2.0, "core density 10/5");
    }

    #[test]
    fn density_of_tree_is_under_one() {
        let (num, den) = max_density(&path(8));
        assert!(num < den, "trees have density < 1, got {num}/{den}");
        assert_eq!(pseudoarboricity(&path(8)), 1);
    }

    #[test]
    fn arboricity_bounds_on_knowns() {
        // Trees: arboricity 1.
        let (lo, hi) = arboricity_bounds(&star(12));
        assert!(lo <= 1 && 1 <= hi, "star: ({lo},{hi})");
        // Cycle: arboricity 2 (not a forest), pseudoarboricity 1.
        let (lo, hi) = arboricity_bounds(&cycle(9));
        assert!(lo <= 2 && 2 <= hi, "cycle: ({lo},{hi})");
        // K_6: arboricity = ceil(15/5) = 3.
        let (lo, hi) = arboricity_bounds(&clique(6));
        assert!(lo <= 3 && 3 <= hi, "K6: ({lo},{hi})");
        // K_{4,4}: arboricity = ceil(16/7) = 3.
        let (lo, hi) = arboricity_bounds(&complete_bipartite(4, 4));
        assert!(lo <= 3 && 3 <= hi, "K44: ({lo},{hi})");
    }

    #[test]
    fn bounds_are_tight_window() {
        for g in [clique(7), complete_bipartite(5, 6), cycle(11)] {
            let (lo, hi) = arboricity_bounds(&g);
            assert!(hi - lo <= 1, "window wider than 1: ({lo},{hi})");
        }
    }

    #[test]
    fn density_brute_force_small() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let g = crate::generators::gnp(9, 0.4, &mut rng);
            if g.num_edges() == 0 {
                continue;
            }
            let (num, den) = max_density(&g);
            // Brute force all nonempty subsets.
            let n = g.num_vertices();
            let mut best = (0u64, 1u64);
            for mask in 1u32..(1 << n) {
                let keep: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
                let (e, k) = super::subgraph_size(&g, &keep);
                if e * best.1 > best.0 * k {
                    best = (e, k);
                }
            }
            assert_eq!(
                num * best.1,
                best.0 * den,
                "flow {num}/{den} vs brute {}/{}",
                best.0,
                best.1
            );
        }
    }
}
