//! Dinic's maximum-flow algorithm.
//!
//! Used by the exact densest-subgraph computation behind the arboricity
//! measurements (Observation 2.12). Capacities are `u64`; `u64::MAX / 4`
//! serves as +∞.

/// Effectively infinite capacity (safe to add a few of these without
/// overflow).
pub const INF: u64 = u64::MAX / 4;

#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    cap: u64,
    /// Index of the reverse arc in `arcs[to]`.
    rev: usize,
}

/// A flow network under construction / being solved.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    arcs: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            arcs: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.arcs.len()
    }

    /// Add a directed arc `from → to` with the given capacity (and a
    /// residual reverse arc of capacity 0).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64) {
        let from_len = self.arcs[from].len();
        let to_len = self.arcs[to].len();
        self.arcs[from].push(Arc {
            to,
            cap,
            rev: to_len,
        });
        self.arcs[to].push(Arc {
            to: from,
            cap: 0,
            rev: from_len,
        });
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for arc in &self.arcs[v] {
                if arc.cap > 0 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: u64) -> u64 {
        if v == t {
            return pushed;
        }
        while self.iter[v] < self.arcs[v].len() {
            let i = self.iter[v];
            let (to, cap, rev) = {
                let a = &self.arcs[v][i];
                (a.to, a.cap, a.rev)
            };
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[v][i].cap -= d;
                    self.arcs[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    /// Compute the maximum `s → t` flow. Consumes capacity; call once per
    /// built network (clone first to reuse).
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t);
        let mut flow = 0u64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After `max_flow`, the set of nodes reachable from `s` in the
    /// residual network — the source side of a minimum cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for arc in &self.arcs[v] {
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn diamond() {
        // s=0, t=3; two disjoint paths of capacity 3 and 4.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 3, 3);
        net.add_arc(0, 2, 4);
        net.add_arc(2, 3, 4);
        assert_eq!(net.max_flow(0, 3), 7);
    }

    #[test]
    fn bottleneck_respected() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10);
        net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
    }

    #[test]
    fn classic_augmenting_path_case() {
        // The textbook instance where a naive greedy needs the residual
        // back-arc: s-a, s-b, a-b, a-t, b-t.
        let (s, a, b, t) = (0, 1, 2, 3);
        let mut net = FlowNetwork::new(4);
        net.add_arc(s, a, 1000);
        net.add_arc(s, b, 1000);
        net.add_arc(a, b, 1);
        net.add_arc(a, t, 1000);
        net.add_arc(b, t, 1000);
        assert_eq!(net.max_flow(s, t), 2000);
    }

    #[test]
    fn min_cut_side_is_consistent() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 2, 1); // unique min cut here
        net.add_arc(2, 3, 2);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 1);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && side[1]);
        assert!(!side[2] && !side[3]);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3x3 bipartite with a perfect matching.
        let n = 8; // s=0, L=1..3, R=4..6, t=7
        let mut net = FlowNetwork::new(n);
        for l in 1..=3 {
            net.add_arc(0, l, 1);
        }
        for r in 4..=6 {
            net.add_arc(r, 7, 1);
        }
        for (l, r) in [(1, 4), (1, 5), (2, 5), (3, 5), (3, 6)] {
            net.add_arc(l, r, 1);
        }
        assert_eq!(net.max_flow(0, 7), 3);
    }
}
