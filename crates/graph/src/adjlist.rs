//! A mutable adjacency-list graph for the fully dynamic setting.
//!
//! The dynamic model of Section 3.3 fixes the vertex set and applies a
//! sequence of single-edge insertions and deletions. [`AdjListGraph`]
//! supports both in O(1) expected time (hash-indexed positions +
//! `swap_remove`), exposes the same adjacency-array queries as
//! [`csr::CsrGraph`](crate::csr::CsrGraph) (so the sparsifier sampler runs on it
//! unchanged), and can snapshot to CSR for exact audits.

use crate::adjacency::AdjacencyOracle;
use crate::csr::{CsrGraph, GraphBuilder};
use crate::ids::VertexId;
use std::collections::HashMap;

/// A mutable undirected graph over a fixed vertex set.
#[derive(Clone, Debug, Default)]
pub struct AdjListGraph {
    adj: Vec<Vec<u32>>,
    /// For edge key `(min, max)`: positions of the other endpoint in each
    /// endpoint's adjacency vector — `(index of max in adj[min], index of
    /// min in adj[max])`.
    positions: HashMap<(u32, u32), (u32, u32)>,
}

impl AdjListGraph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        AdjListGraph {
            adj: vec![Vec::new(); n],
            positions: HashMap::new(),
        }
    }

    /// Start from an existing static graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut out = AdjListGraph::new(g.num_vertices());
        for (_, u, v) in g.edges() {
            out.insert_edge(u, v);
        }
        out
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.positions.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Whether `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.positions.contains_key(&Self::key(u, v))
    }

    /// Neighbors of `v` in arbitrary (insertion-perturbed) order.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v.index()].iter().map(|&t| VertexId(t))
    }

    /// All undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.positions
            .keys()
            .map(|&(u, v)| (VertexId(u), VertexId(v)))
    }

    /// Resident heap footprint of the graph, in bytes.
    ///
    /// Counts allocated capacity, not live length, like
    /// [`CsrGraph::memory_bytes`] — but where the CSR figure is exact,
    /// the hash-map term here is an estimate (entry storage plus one
    /// control byte per slot; the table's exact layout is a hashbrown
    /// implementation detail).
    pub fn memory_bytes(&self) -> usize {
        let spine = self.adj.capacity() * std::mem::size_of::<Vec<u32>>();
        let lists: usize = self
            .adj
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<u32>())
            .sum();
        let entry = std::mem::size_of::<((u32, u32), (u32, u32))>() + 1;
        spine + lists + self.positions.capacity() * entry
    }

    #[inline]
    fn key(u: VertexId, v: VertexId) -> (u32, u32) {
        if u.0 < v.0 {
            (u.0, v.0)
        } else {
            (v.0, u.0)
        }
    }

    /// Insert edge `{u, v}`. Returns `false` if it was already present or
    /// is a self-loop.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let key = Self::key(u, v);
        if self.positions.contains_key(&key) {
            return false;
        }
        let (a, b) = (VertexId(key.0), VertexId(key.1));
        let pos_in_a = self.adj[a.index()].len() as u32;
        let pos_in_b = self.adj[b.index()].len() as u32;
        self.adj[a.index()].push(b.0);
        self.adj[b.index()].push(a.0);
        self.positions.insert(key, (pos_in_a, pos_in_b));
        true
    }

    /// Delete edge `{u, v}`. Returns `false` if it was not present.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let key = Self::key(u, v);
        let Some((pos_in_a, pos_in_b)) = self.positions.remove(&key) else {
            return false;
        };
        let (a, b) = (VertexId(key.0), VertexId(key.1));
        self.remove_half_edge(a, pos_in_a as usize);
        self.remove_half_edge(b, pos_in_b as usize);
        true
    }

    /// Remove the half-edge at `pos` in `v`'s adjacency vector via
    /// `swap_remove`, repairing the position index of the entry that moved.
    fn remove_half_edge(&mut self, v: VertexId, pos: usize) {
        let list = &mut self.adj[v.index()];
        list.swap_remove(pos);
        if pos < list.len() {
            // The former last element (call it w) now sits at `pos`: update
            // the stored position of v within the edge {v, w}.
            let w = VertexId(list[pos]);
            let key = Self::key(v, w);
            // Safety: w is still in v's list, so the edge {v, w} was inserted
            // and not yet removed — its position entry must exist.
            let entry = self
                .positions
                .get_mut(&key)
                .expect("moved half-edge must have a live position entry");
            if key.0 == v.0 {
                entry.0 = pos as u32;
            } else {
                entry.1 = pos as u32;
            }
        }
    }

    /// Snapshot into an immutable CSR graph (O(n + m)).
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        b.build()
    }
}

impl AdjacencyOracle for AdjListGraph {
    #[inline(always)]
    fn num_vertices(&self) -> usize {
        AdjListGraph::num_vertices(self)
    }

    #[inline(always)]
    fn degree(&self, v: VertexId) -> usize {
        AdjListGraph::degree(self, v)
    }

    #[inline(always)]
    fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        VertexId(self.adj[v.index()][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_delete() {
        let mut g = AdjListGraph::new(4);
        assert!(g.insert_edge(VertexId(0), VertexId(1)));
        assert!(!g.insert_edge(VertexId(1), VertexId(0)), "duplicate");
        assert!(!g.insert_edge(VertexId(2), VertexId(2)), "self-loop");
        assert!(g.insert_edge(VertexId(1), VertexId(2)));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert!(g.delete_edge(VertexId(0), VertexId(1)));
        assert!(!g.delete_edge(VertexId(0), VertexId(1)), "already gone");
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn swap_remove_position_repair() {
        // Force the swap_remove repair path: vertex 0 has several neighbors,
        // delete the first-inserted edge, then verify the rest still delete
        // cleanly.
        let mut g = AdjListGraph::new(5);
        for v in 1..5 {
            g.insert_edge(VertexId(0), VertexId(v));
        }
        assert!(g.delete_edge(VertexId(0), VertexId(1)));
        for v in 2..5 {
            assert!(g.has_edge(VertexId(0), VertexId(v)));
            assert!(g.delete_edge(VertexId(0), VertexId(v)));
        }
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(VertexId(0)), 0);
    }

    #[test]
    fn csr_roundtrip() {
        let mut g = AdjListGraph::new(4);
        g.insert_edge(VertexId(0), VertexId(1));
        g.insert_edge(VertexId(2), VertexId(3));
        g.insert_edge(VertexId(1), VertexId(2));
        g.delete_edge(VertexId(0), VertexId(1));
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 2);
        assert!(csr.has_edge(VertexId(2), VertexId(3)));
        assert!(!csr.has_edge(VertexId(0), VertexId(1)));

        let back = AdjListGraph::from_csr(&csr);
        assert_eq!(back.num_edges(), 2);
    }

    #[test]
    fn oracle_view_consistent() {
        let mut g = AdjListGraph::new(3);
        g.insert_edge(VertexId(0), VertexId(1));
        g.insert_edge(VertexId(0), VertexId(2));
        let o: &dyn AdjacencyOracle = &g;
        assert_eq!(o.degree(VertexId(0)), 2);
        let mut seen: Vec<u32> = (0..2).map(|i| o.neighbor(VertexId(0), i).0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn randomized_against_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20;
        let mut g = AdjListGraph::new(n);
        let mut reference: HashSet<(u32, u32)> = HashSet::new();
        for _ in 0..5000 {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if rng.random_bool(0.5) {
                assert_eq!(
                    g.insert_edge(VertexId(u), VertexId(v)),
                    reference.insert(key)
                );
            } else {
                assert_eq!(
                    g.delete_edge(VertexId(u), VertexId(v)),
                    reference.remove(&key)
                );
            }
            assert_eq!(g.num_edges(), reference.len());
        }
        // Degrees must sum to 2m.
        let degsum: usize = (0..n).map(|v| g.degree(VertexId::new(v))).sum();
        assert_eq!(degsum, 2 * reference.len());
    }
}
