//! Out-of-core edge streams: the input side of the streaming sparsifier
//! build.
//!
//! A [`EdgeStreamSource`] yields the edges of a graph in strict
//! lexicographic order with `u < v` per edge — exactly the order
//! [`CsrGraph::edges`] iterates and [`crate::io::write_edge_list`]
//! writes — and can be scanned more than once. That contract is what
//! makes a two-pass degree-count → sample → filter construction possible
//! without ever materializing the parent graph's adjacency arrays: in a
//! lex-sorted stream the half-edges incident to any vertex `w` arrive in
//! `w`'s sorted-adjacency order (all `(a, w)` with `a < w` precede all
//! `(w, b)` with `b > w`, each group ascending), so a per-vertex arrival
//! counter reproduces adjacency positions in O(n) resident memory.
//!
//! Two sources are provided: [`FileEdgeSource`] streams a plain-text
//! edge-list file through a fixed-size buffer, validating the full
//! format contract on every pass (the file is untrusted input), and
//! [`CsrGraph`] itself implements the trait so in-memory and out-of-core
//! paths can be differential-tested against each other.

use crate::csr::CsrGraph;
use crate::io::{parse_line_fields, validate_header, ReadError};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// A rescannable source of lex-sorted `u < v` edges.
///
/// Contract, checked by [`FileEdgeSource`] and guaranteed by the
/// [`CsrGraph`] impl: `scan` visits exactly [`num_edges`] edges, each
/// with `u < v < num_vertices` (as `u32`s), in strictly increasing
/// lexicographic order, and repeated scans visit the identical sequence.
///
/// [`num_edges`]: EdgeStreamSource::num_edges
pub trait EdgeStreamSource {
    /// Number of vertices `n` of the streamed graph.
    fn num_vertices(&self) -> usize;
    /// Number of undirected edges `m` the stream will yield.
    fn num_edges(&self) -> usize;
    /// Visit every edge in order. May be called repeatedly; each call
    /// re-verifies whatever the source cannot guarantee statically.
    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError>;
}

/// Stream a plain-text edge-list file (the [`crate::io`] format) without
/// loading it: only the [`std::io::BufReader`] window is resident.
///
/// The file is untrusted. [`FileEdgeSource::open`] validates the header
/// (range caps, `m ≤ n·(n−1)/2`) and every [`scan`] re-validates the
/// body line by line: endpoint bounds, no self-loops, `u < v`, strictly
/// increasing lexicographic order (which subsumes duplicate detection),
/// and an edge count equal to the declared `m`. A file that mutates
/// between passes is therefore caught, not silently mis-sampled.
///
/// [`scan`]: EdgeStreamSource::scan
#[derive(Clone, Debug)]
pub struct FileEdgeSource {
    path: PathBuf,
    n: usize,
    m: usize,
    /// Scans that ran to completion. Once a pass has delivered all `m`
    /// edges, a later short pass is a file truncated *between* passes
    /// ([`ReadError::TruncatedBetweenPasses`]), not a file that was
    /// short all along (a plain parse error).
    completed_scans: u64,
}

impl FileEdgeSource {
    /// Open `path` and validate its header. The body is not read here —
    /// each [`EdgeStreamSource::scan`] streams and validates it.
    pub fn open(path: impl AsRef<Path>) -> Result<FileEdgeSource, ReadError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ReadError::Parse {
                    line: 0,
                    message: "empty input (missing header)".into(),
                });
            }
            lineno += 1;
            if let Some((a, b)) = parse_line_fields(&line, lineno)? {
                let (n, m) = validate_header(a, b, lineno)?;
                return Ok(FileEdgeSource {
                    path,
                    n,
                    m,
                    completed_scans: 0,
                });
            }
        }
    }

    /// The file this source streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EdgeStreamSource for FileEdgeSource {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        let file = std::fs::File::open(&self.path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut in_body = false;
        let mut prev: Option<(u32, u32)> = None;
        let mut edges_seen = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let Some((a, b)) = parse_line_fields(&line, lineno)? else {
                continue;
            };
            if !in_body {
                // Header line: must agree with what `open` recorded, or
                // the file changed underneath us between passes.
                let (n, m) = validate_header(a, b, lineno)?;
                if (n, m) != (self.n, self.m) {
                    return Err(ReadError::Parse {
                        line: lineno,
                        message: format!(
                            "header changed between scans: expected {} {}, found {n} {m}",
                            self.n, self.m
                        ),
                    });
                }
                in_body = true;
                continue;
            }
            if a >= self.n as u64 || b >= self.n as u64 {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("vertex out of range (n = {})", self.n),
                });
            }
            if a == b {
                return Err(ReadError::SelfLoop { line: lineno });
            }
            if a > b {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: "streaming input requires u < v per edge".into(),
                });
            }
            let edge = (a as u32, b as u32);
            if let Some(prev) = prev {
                if edge == prev {
                    return Err(ReadError::DuplicateEdge { line: lineno });
                }
                if edge < prev {
                    return Err(ReadError::Parse {
                        line: lineno,
                        message: "streaming input requires lexicographically sorted edges".into(),
                    });
                }
            }
            prev = Some(edge);
            edges_seen += 1;
            if edges_seen > self.m {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("more than the declared {} edges", self.m),
                });
            }
            visit(edge.0, edge.1);
        }
        if !in_body {
            return Err(ReadError::Parse {
                line: 0,
                message: "empty input (missing header)".into(),
            });
        }
        if edges_seen != self.m {
            // A short body on the first pass is a malformed file; the
            // same short body after a completed pass means the file lost
            // data while a multi-pass build was running against it.
            if self.completed_scans > 0 {
                return Err(ReadError::TruncatedBetweenPasses {
                    expected: self.m,
                    found: edges_seen,
                });
            }
            return Err(ReadError::Parse {
                line: 0,
                message: format!("declared {} edges but found {edges_seen}", self.m),
            });
        }
        self.completed_scans += 1;
        Ok(())
    }
}

/// An in-memory graph is trivially a stream source: [`CsrGraph::edges`]
/// already iterates in strict lexicographic order with `u < v`. This is
/// the reference the out-of-core build is differential-tested against.
impl EdgeStreamSource for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        for (_, u, v) in CsrGraph::edges(self) {
            visit(u.0, v.0);
        }
        Ok(())
    }
}

/// A mutable reference to a source is itself a source, so callers that
/// hold a `&mut dyn EdgeStreamSource` (e.g. a backend trait object) can
/// feed the generic streamed build entry points without knowing the
/// concrete type.
impl<S: EdgeStreamSource + ?Sized> EdgeStreamSource for &mut S {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        (**self).scan(visit)
    }
}

/// Per-kind I/O fault probabilities, each in `[0, 1]`, drawn once per
/// scan attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoFaultRates {
    /// Probability a scan attempt aborts mid-body with a transient `EIO`.
    pub eio: f64,
    /// Probability a scan attempt delivers fewer than `m` edges and then
    /// reports the stream truncated.
    pub short_read: f64,
    /// Probability a scan attempt ends on a torn (half-written) trailing
    /// line, surfacing as a parse error.
    pub torn_line: f64,
    /// Probability a scan attempt opens on a header that mutated since
    /// the previous pass.
    pub header_mutation: f64,
}

impl IoFaultRates {
    fn validate(&self) {
        for (name, r) in [
            ("eio", self.eio),
            ("short_read", self.short_read),
            ("torn_line", self.torn_line),
            ("header_mutation", self.header_mutation),
        ] {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "i/o fault rate {name} = {r} must be a probability in [0, 1]"
            );
        }
    }
}

/// Fault counters accumulated by a [`FaultyEdgeSource`], one per kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoFaultStats {
    /// Transient `EIO` aborts injected.
    pub eio: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// Torn trailing lines injected.
    pub torn_lines: u64,
    /// Between-pass header mutations injected.
    pub header_mutations: u64,
}

impl IoFaultStats {
    /// Merge another record into this one (all fields add).
    pub fn absorb(&mut self, other: IoFaultStats) {
        self.eio += other.eio;
        self.short_reads += other.short_reads;
        self.torn_lines += other.torn_lines;
        self.header_mutations += other.header_mutations;
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.eio + self.short_reads + self.torn_lines + self.header_mutations
    }
}

impl std::fmt::Display for IoFaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} eio, {} short reads, {} torn lines, {} header mutations",
            self.eio, self.short_reads, self.torn_lines, self.header_mutations
        )
    }
}

// splitmix64 finalizer — the same decision hash the distsim fault layer
// uses, so the two chaos surfaces share one determinism story.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn hash3(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    mix(mix(mix(seed ^ salt) ^ a) ^ b)
}

/// Convert a probability to a 65-bit threshold so that `hash < threshold`
/// holds with probability exactly 0 at `p = 0` and exactly 1 at `p = 1`.
fn threshold(p: f64) -> u128 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        1u128 << 64
    } else {
        (p * (1u128 << 64) as f64) as u128
    }
}

const EIO_SALT: u64 = 0xE10;
const SHORT_SALT: u64 = 0x5407;
const TORN_SALT: u64 = 0x7042;
const HEADER_SALT: u64 = 0x4EAD;
const POS_SALT: u64 = 0x0515;

/// One injected fault, resolved for a specific scan attempt.
///
/// `after` is the number of edges the attempt delivers before failing
/// (hashed from the plan seed, so it is a pure function of the attempt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedIoFault {
    /// Deliver `after` edges, then abort with a transient `EIO`.
    Eio {
        /// Edges delivered before the abort.
        after: usize,
    },
    /// Deliver `after < m` edges, then report the stream truncated.
    ShortRead {
        /// Edges delivered before the truncation.
        after: usize,
    },
    /// Deliver `after` edges, then fail parsing a torn trailing line.
    TornLine {
        /// Edges delivered before the torn line.
        after: usize,
    },
    /// Fail immediately: the header changed since the previous pass.
    HeaderMutation,
}

/// A deterministic schedule of I/O faults: a pure function from a `u64`
/// seed and [`IoFaultRates`] to per-scan-attempt decisions, mirroring
/// the distsim `FaultPlan`. Two runs with the same plan inject the
/// identical faults at the identical points, so every chaos test is
/// reproducible by seed alone.
///
/// The `horizon` bounds injection to the first `horizon` scan attempts;
/// later attempts are clean. A fault-free retry is therefore
/// *guaranteed* (not just probable) once a build has burned through the
/// horizon, which is what makes a plan provably recoverable under a
/// bounded retry budget.
#[derive(Clone, Copy, Debug)]
pub struct IoFaultPlan {
    seed: u64,
    eio: u128,
    short_read: u128,
    torn_line: u128,
    header_mutation: u128,
    horizon: u64,
}

impl IoFaultPlan {
    /// A plan that injects nothing: [`FaultyEdgeSource`] under this plan
    /// is byte-transparent (pinned by test).
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::new(0, IoFaultRates::default())
    }

    /// Build a plan from a seed and per-kind rates (must be valid
    /// probabilities). Faults are unbounded in time until
    /// [`with_horizon`](IoFaultPlan::with_horizon) caps them.
    pub fn new(seed: u64, rates: IoFaultRates) -> IoFaultPlan {
        rates.validate();
        IoFaultPlan {
            seed,
            eio: threshold(rates.eio),
            short_read: threshold(rates.short_read),
            torn_line: threshold(rates.torn_line),
            header_mutation: threshold(rates.header_mutation),
            horizon: u64::MAX,
        }
    }

    /// Restrict injection to scan attempts `0..horizon`; later attempts
    /// are clean, guaranteeing recovery under `max_attempts > horizon`.
    pub fn with_horizon(mut self, horizon: u64) -> IoFaultPlan {
        self.horizon = horizon;
        self
    }

    /// The injection horizon in scan attempts (`u64::MAX` = unbounded).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The fault (if any) this plan injects into scan attempt `attempt`
    /// of a stream declaring `m` edges. Pure, so tests and experiments
    /// can inspect the schedule without running a build. At most one
    /// fault fires per attempt, resolved in a fixed priority order
    /// (header, eio, short read, torn line).
    pub fn fault_for_attempt(&self, attempt: u64, m: usize) -> Option<InjectedIoFault> {
        if attempt >= self.horizon {
            return None;
        }
        let hits = |salt: u64, thr: u128| (hash3(self.seed, salt, attempt, 0) as u128) < thr;
        let pos = |salt: u64, modulus: usize| {
            hash3(self.seed, POS_SALT, attempt, salt) as usize % modulus
        };
        if hits(HEADER_SALT, self.header_mutation) {
            return Some(InjectedIoFault::HeaderMutation);
        }
        if hits(EIO_SALT, self.eio) {
            return Some(InjectedIoFault::Eio {
                after: pos(EIO_SALT, m + 1),
            });
        }
        // A short read needs at least one edge to withhold.
        if m > 0 && hits(SHORT_SALT, self.short_read) {
            return Some(InjectedIoFault::ShortRead {
                after: pos(SHORT_SALT, m),
            });
        }
        if hits(TORN_SALT, self.torn_line) {
            return Some(InjectedIoFault::TornLine {
                after: pos(TORN_SALT, m + 1),
            });
        }
        None
    }
}

/// Wrap any [`EdgeStreamSource`] with a deterministic [`IoFaultPlan`]:
/// the chaos half of the streaming build's resilience story, mirroring
/// distsim's `FaultyNetwork`.
///
/// Each call to [`scan`](EdgeStreamSource::scan) consumes one attempt
/// index from a monotone counter. A faulted attempt delivers exactly the
/// prefix the plan dictates and then fails through the scan's `Result`
/// with the same typed [`ReadError`]s a real failing device produces —
/// callers cannot tell injected faults from real ones, which is the
/// point. A real error from the wrapped source always wins over an
/// injected one. Under [`IoFaultPlan::none`] the wrapper is
/// byte-transparent and all counters stay zero.
#[derive(Clone, Debug)]
pub struct FaultyEdgeSource<S> {
    inner: S,
    plan: IoFaultPlan,
    attempts: u64,
    stats: IoFaultStats,
}

impl<S: EdgeStreamSource> FaultyEdgeSource<S> {
    /// Wrap `inner` under `plan`, starting at attempt 0.
    pub fn new(inner: S, plan: IoFaultPlan) -> FaultyEdgeSource<S> {
        FaultyEdgeSource {
            inner,
            plan,
            attempts: 0,
            stats: IoFaultStats::default(),
        }
    }

    /// Fault counters accumulated so far.
    pub fn stats(&self) -> IoFaultStats {
        self.stats
    }

    /// Scan attempts consumed so far (clean and faulted alike).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Unwrap, discarding the plan and counters.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStreamSource> EdgeStreamSource for FaultyEdgeSource<S> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        let attempt = self.attempts;
        self.attempts += 1;
        let m = self.inner.num_edges();
        let Some(fault) = self.plan.fault_for_attempt(attempt, m) else {
            return self.inner.scan(visit);
        };
        // Deliver the prefix the fault allows. The inner scan still runs
        // to completion (its own validation may fail first and wins),
        // but the caller observes a stream that died after `after` edges.
        let after = match fault {
            InjectedIoFault::Eio { after }
            | InjectedIoFault::ShortRead { after }
            | InjectedIoFault::TornLine { after } => after,
            InjectedIoFault::HeaderMutation => 0,
        };
        let mut delivered = 0usize;
        self.inner.scan(&mut |u, v| {
            if delivered < after {
                delivered += 1;
                visit(u, v);
            }
        })?;
        Err(match fault {
            InjectedIoFault::Eio { .. } => {
                self.stats.eio += 1;
                ReadError::Io(std::io::Error::other(format!(
                    "injected transient EIO on scan attempt {attempt} after {after} edges"
                )))
            }
            InjectedIoFault::ShortRead { .. } => {
                self.stats.short_reads += 1;
                ReadError::TruncatedBetweenPasses {
                    expected: m,
                    found: after,
                }
            }
            InjectedIoFault::TornLine { .. } => {
                self.stats.torn_lines += 1;
                ReadError::Parse {
                    line: after + 2,
                    message: format!("injected torn trailing line after {after} edges"),
                }
            }
            InjectedIoFault::HeaderMutation => {
                self.stats.header_mutations += 1;
                ReadError::Parse {
                    line: 1,
                    message: "injected header mutation between scans".into(),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::io::write_edge_list_file;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sparsimatch-edge-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn collect(src: &mut impl EdgeStreamSource) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        src.scan(&mut |u, v| out.push((u, v))).unwrap();
        out
    }

    #[test]
    fn file_source_streams_written_graphs_repeatedly() {
        let g = from_edges(6, [(0, 1), (0, 3), (1, 2), (2, 5), (4, 5)]);
        let path = temp_path("ok.el");
        write_edge_list_file(&g, &path).unwrap();
        let mut src = FileEdgeSource::open(&path).unwrap();
        assert_eq!(EdgeStreamSource::num_vertices(&src), 6);
        assert_eq!(EdgeStreamSource::num_edges(&src), 5);
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        // Two scans — the streaming build's access pattern — agree.
        assert_eq!(collect(&mut src), want);
        assert_eq!(collect(&mut src), want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_graph_is_its_own_stream_source() {
        let mut g = from_edges(5, [(3, 4), (0, 2), (0, 1)]);
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(collect(&mut g), want);
        assert_eq!(EdgeStreamSource::num_edges(&g), 3);
    }

    #[test]
    fn file_source_rejects_malformed_streams() {
        let cases = [
            ("unsorted.el", "3 2\n1 2\n0 1\n", "sorted"),
            ("swapped.el", "3 1\n2 1\n", "u < v"),
            ("dup.el", "3 2\n0 1\n0 1\n", "duplicate"),
            ("selfloop.el", "3 1\n1 1\n", "self-loop"),
            ("short.el", "3 2\n0 1\n", "declared 2"),
            ("long.el", "3 1\n0 1\n1 2\n", "more than"),
            ("range.el", "3 1\n0 7\n", "out of range"),
        ];
        for (name, text, needle) in cases {
            let path = temp_path(name);
            std::fs::write(&path, text).unwrap();
            let mut src = FileEdgeSource::open(&path).unwrap();
            let err = src.scan(&mut |_, _| {}).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{name}: expected {needle:?} in {:?}",
                err.to_string()
            );
            std::fs::remove_file(&path).ok();
        }
        // Header problems fail at open, before any scan.
        let path = temp_path("badheader.el");
        std::fs::write(&path, "4 7\n").unwrap();
        assert!(matches!(
            FileEdgeSource::open(&path),
            Err(ReadError::TooLarge { line: 1, .. })
        ));
        std::fs::write(&path, "").unwrap();
        assert!(FileEdgeSource::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_detects_header_mutation_between_scans() {
        let path = temp_path("mutated.el");
        std::fs::write(&path, "3 1\n0 1\n").unwrap();
        let mut src = FileEdgeSource::open(&path).unwrap();
        src.scan(&mut |_, _| {}).unwrap();
        std::fs::write(&path, "4 1\n0 1\n").unwrap();
        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("header changed between scans"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_types_truncation_after_a_completed_pass() {
        // Regression: a file that loses body lines between passes used
        // to surface as the same generic parse error as a file that was
        // short all along. Pass 1 completes, the file is truncated, and
        // pass 2 must say so with the typed error.
        let path = temp_path("truncated.el");
        std::fs::write(&path, "4 3\n0 1\n1 2\n2 3\n").unwrap();
        let mut src = FileEdgeSource::open(&path).unwrap();
        src.scan(&mut |_, _| {}).unwrap();
        std::fs::write(&path, "4 3\n0 1\n").unwrap();
        match src.scan(&mut |_, _| {}) {
            Err(ReadError::TruncatedBetweenPasses { expected, found }) => {
                assert_eq!((expected, found), (3, 1));
            }
            other => panic!("expected TruncatedBetweenPasses, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    fn sample_graph() -> CsrGraph {
        from_edges(6, [(0, 1), (0, 3), (1, 2), (2, 5), (3, 4), (4, 5)])
    }

    #[test]
    fn zero_fault_plan_is_byte_transparent() {
        let g = sample_graph();
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let mut faulty = FaultyEdgeSource::new(sample_graph(), IoFaultPlan::none());
        assert_eq!(EdgeStreamSource::num_vertices(&faulty), 6);
        assert_eq!(EdgeStreamSource::num_edges(&faulty), 6);
        for _ in 0..3 {
            assert_eq!(collect(&mut faulty), want);
        }
        assert_eq!(faulty.stats(), IoFaultStats::default());
        assert_eq!(faulty.attempts(), 3);
    }

    #[test]
    fn every_fault_kind_fires_with_its_typed_error() {
        let all_of =
            |rates: IoFaultRates| FaultyEdgeSource::new(sample_graph(), IoFaultPlan::new(9, rates));
        let mut eio = all_of(IoFaultRates {
            eio: 1.0,
            ..Default::default()
        });
        let err = eio.scan(&mut |_, _| {}).unwrap_err();
        assert!(matches!(err, ReadError::Io(_)), "got {err:?}");
        assert!(err.to_string().contains("injected transient EIO"));
        assert_eq!(eio.stats().eio, 1);

        let mut short = all_of(IoFaultRates {
            short_read: 1.0,
            ..Default::default()
        });
        let mut seen = 0usize;
        let err = short.scan(&mut |_, _| seen += 1).unwrap_err();
        match err {
            ReadError::TruncatedBetweenPasses { expected, found } => {
                assert_eq!(expected, 6);
                assert_eq!(found, seen);
                assert!(found < expected, "short read must withhold an edge");
            }
            other => panic!("expected TruncatedBetweenPasses, got {other:?}"),
        }
        assert_eq!(short.stats().short_reads, 1);

        let mut torn = all_of(IoFaultRates {
            torn_line: 1.0,
            ..Default::default()
        });
        let err = torn.scan(&mut |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("injected torn trailing line"));
        assert_eq!(torn.stats().torn_lines, 1);

        let mut header = all_of(IoFaultRates {
            header_mutation: 1.0,
            ..Default::default()
        });
        let mut delivered = 0usize;
        let err = header.scan(&mut |_, _| delivered += 1).unwrap_err();
        assert!(err.to_string().contains("injected header mutation"));
        assert_eq!(delivered, 0, "a mutated header fails before any edge");
        assert_eq!(header.stats().header_mutations, 1);
    }

    #[test]
    fn horizon_guarantees_a_clean_attempt() {
        let g = sample_graph();
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let plan = IoFaultPlan::new(
            3,
            IoFaultRates {
                eio: 1.0,
                ..Default::default()
            },
        )
        .with_horizon(2);
        let mut faulty = FaultyEdgeSource::new(sample_graph(), plan);
        assert!(faulty.scan(&mut |_, _| {}).is_err());
        assert!(faulty.scan(&mut |_, _| {}).is_err());
        assert_eq!(collect(&mut faulty), want);
        assert_eq!(faulty.stats().eio, 2);
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_plan() {
        let rates = IoFaultRates {
            eio: 0.4,
            short_read: 0.3,
            torn_line: 0.3,
            header_mutation: 0.2,
        };
        let plan = IoFaultPlan::new(42, rates).with_horizon(64);
        let schedule: Vec<_> = (0..64).map(|a| plan.fault_for_attempt(a, 6)).collect();
        assert_eq!(
            schedule,
            (0..64)
                .map(|a| IoFaultPlan::new(42, rates)
                    .with_horizon(64)
                    .fault_for_attempt(a, 6))
                .collect::<Vec<_>>()
        );
        assert!(
            schedule.iter().any(|f| f.is_some()),
            "at these rates 64 attempts must hit at least one fault"
        );
        assert!(
            schedule.iter().any(|f| f.is_none()),
            "at these rates 64 attempts must include a clean one"
        );
        // Replaying the wrapper produces the identical error sequence.
        let mut a = FaultyEdgeSource::new(sample_graph(), plan);
        let mut b = FaultyEdgeSource::new(sample_graph(), plan);
        for _ in 0..8 {
            let ra = a.scan(&mut |_, _| {}).map_err(|e| e.to_string());
            let rb = b.scan(&mut |_, _| {}).map_err(|e| e.to_string());
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
    }
}
