//! Out-of-core edge streams: the input side of the streaming sparsifier
//! build.
//!
//! A [`EdgeStreamSource`] yields the edges of a graph in strict
//! lexicographic order with `u < v` per edge — exactly the order
//! [`CsrGraph::edges`] iterates and [`crate::io::write_edge_list`]
//! writes — and can be scanned more than once. That contract is what
//! makes a two-pass degree-count → sample → filter construction possible
//! without ever materializing the parent graph's adjacency arrays: in a
//! lex-sorted stream the half-edges incident to any vertex `w` arrive in
//! `w`'s sorted-adjacency order (all `(a, w)` with `a < w` precede all
//! `(w, b)` with `b > w`, each group ascending), so a per-vertex arrival
//! counter reproduces adjacency positions in O(n) resident memory.
//!
//! Two sources are provided: [`FileEdgeSource`] streams a plain-text
//! edge-list file through a fixed-size buffer, validating the full
//! format contract on every pass (the file is untrusted input), and
//! [`CsrGraph`] itself implements the trait so in-memory and out-of-core
//! paths can be differential-tested against each other.

use crate::csr::CsrGraph;
use crate::io::{parse_line_fields, validate_header, ReadError};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// A rescannable source of lex-sorted `u < v` edges.
///
/// Contract, checked by [`FileEdgeSource`] and guaranteed by the
/// [`CsrGraph`] impl: `scan` visits exactly [`num_edges`] edges, each
/// with `u < v < num_vertices` (as `u32`s), in strictly increasing
/// lexicographic order, and repeated scans visit the identical sequence.
///
/// [`num_edges`]: EdgeStreamSource::num_edges
pub trait EdgeStreamSource {
    /// Number of vertices `n` of the streamed graph.
    fn num_vertices(&self) -> usize;
    /// Number of undirected edges `m` the stream will yield.
    fn num_edges(&self) -> usize;
    /// Visit every edge in order. May be called repeatedly; each call
    /// re-verifies whatever the source cannot guarantee statically.
    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError>;
}

/// Stream a plain-text edge-list file (the [`crate::io`] format) without
/// loading it: only the [`std::io::BufReader`] window is resident.
///
/// The file is untrusted. [`FileEdgeSource::open`] validates the header
/// (range caps, `m ≤ n·(n−1)/2`) and every [`scan`] re-validates the
/// body line by line: endpoint bounds, no self-loops, `u < v`, strictly
/// increasing lexicographic order (which subsumes duplicate detection),
/// and an edge count equal to the declared `m`. A file that mutates
/// between passes is therefore caught, not silently mis-sampled.
///
/// [`scan`]: EdgeStreamSource::scan
#[derive(Clone, Debug)]
pub struct FileEdgeSource {
    path: PathBuf,
    n: usize,
    m: usize,
}

impl FileEdgeSource {
    /// Open `path` and validate its header. The body is not read here —
    /// each [`EdgeStreamSource::scan`] streams and validates it.
    pub fn open(path: impl AsRef<Path>) -> Result<FileEdgeSource, ReadError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ReadError::Parse {
                    line: 0,
                    message: "empty input (missing header)".into(),
                });
            }
            lineno += 1;
            if let Some((a, b)) = parse_line_fields(&line, lineno)? {
                let (n, m) = validate_header(a, b, lineno)?;
                return Ok(FileEdgeSource { path, n, m });
            }
        }
    }

    /// The file this source streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl EdgeStreamSource for FileEdgeSource {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        let file = std::fs::File::open(&self.path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut in_body = false;
        let mut prev: Option<(u32, u32)> = None;
        let mut edges_seen = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let Some((a, b)) = parse_line_fields(&line, lineno)? else {
                continue;
            };
            if !in_body {
                // Header line: must agree with what `open` recorded, or
                // the file changed underneath us between passes.
                let (n, m) = validate_header(a, b, lineno)?;
                if (n, m) != (self.n, self.m) {
                    return Err(ReadError::Parse {
                        line: lineno,
                        message: format!(
                            "header changed between scans: expected {} {}, found {n} {m}",
                            self.n, self.m
                        ),
                    });
                }
                in_body = true;
                continue;
            }
            if a >= self.n as u64 || b >= self.n as u64 {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("vertex out of range (n = {})", self.n),
                });
            }
            if a == b {
                return Err(ReadError::SelfLoop { line: lineno });
            }
            if a > b {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: "streaming input requires u < v per edge".into(),
                });
            }
            let edge = (a as u32, b as u32);
            if let Some(prev) = prev {
                if edge == prev {
                    return Err(ReadError::DuplicateEdge { line: lineno });
                }
                if edge < prev {
                    return Err(ReadError::Parse {
                        line: lineno,
                        message: "streaming input requires lexicographically sorted edges".into(),
                    });
                }
            }
            prev = Some(edge);
            edges_seen += 1;
            if edges_seen > self.m {
                return Err(ReadError::Parse {
                    line: lineno,
                    message: format!("more than the declared {} edges", self.m),
                });
            }
            visit(edge.0, edge.1);
        }
        if !in_body {
            return Err(ReadError::Parse {
                line: 0,
                message: "empty input (missing header)".into(),
            });
        }
        if edges_seen != self.m {
            return Err(ReadError::Parse {
                line: 0,
                message: format!("declared {} edges but found {edges_seen}", self.m),
            });
        }
        Ok(())
    }
}

/// An in-memory graph is trivially a stream source: [`CsrGraph::edges`]
/// already iterates in strict lexicographic order with `u < v`. This is
/// the reference the out-of-core build is differential-tested against.
impl EdgeStreamSource for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn scan(&mut self, visit: &mut dyn FnMut(u32, u32)) -> Result<(), ReadError> {
        for (_, u, v) in CsrGraph::edges(self) {
            visit(u.0, v.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::from_edges;
    use crate::io::write_edge_list_file;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sparsimatch-edge-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn collect(src: &mut impl EdgeStreamSource) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        src.scan(&mut |u, v| out.push((u, v))).unwrap();
        out
    }

    #[test]
    fn file_source_streams_written_graphs_repeatedly() {
        let g = from_edges(6, [(0, 1), (0, 3), (1, 2), (2, 5), (4, 5)]);
        let path = temp_path("ok.el");
        write_edge_list_file(&g, &path).unwrap();
        let mut src = FileEdgeSource::open(&path).unwrap();
        assert_eq!(EdgeStreamSource::num_vertices(&src), 6);
        assert_eq!(EdgeStreamSource::num_edges(&src), 5);
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        // Two scans — the streaming build's access pattern — agree.
        assert_eq!(collect(&mut src), want);
        assert_eq!(collect(&mut src), want);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_graph_is_its_own_stream_source() {
        let mut g = from_edges(5, [(3, 4), (0, 2), (0, 1)]);
        let want: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(collect(&mut g), want);
        assert_eq!(EdgeStreamSource::num_edges(&g), 3);
    }

    #[test]
    fn file_source_rejects_malformed_streams() {
        let cases = [
            ("unsorted.el", "3 2\n1 2\n0 1\n", "sorted"),
            ("swapped.el", "3 1\n2 1\n", "u < v"),
            ("dup.el", "3 2\n0 1\n0 1\n", "duplicate"),
            ("selfloop.el", "3 1\n1 1\n", "self-loop"),
            ("short.el", "3 2\n0 1\n", "declared 2"),
            ("long.el", "3 1\n0 1\n1 2\n", "more than"),
            ("range.el", "3 1\n0 7\n", "out of range"),
        ];
        for (name, text, needle) in cases {
            let path = temp_path(name);
            std::fs::write(&path, text).unwrap();
            let mut src = FileEdgeSource::open(&path).unwrap();
            let err = src.scan(&mut |_, _| {}).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{name}: expected {needle:?} in {:?}",
                err.to_string()
            );
            std::fs::remove_file(&path).ok();
        }
        // Header problems fail at open, before any scan.
        let path = temp_path("badheader.el");
        std::fs::write(&path, "4 7\n").unwrap();
        assert!(matches!(
            FileEdgeSource::open(&path),
            Err(ReadError::TooLarge { line: 1, .. })
        ));
        std::fs::write(&path, "").unwrap();
        assert!(FileEdgeSource::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_detects_header_mutation_between_scans() {
        let path = temp_path("mutated.el");
        std::fs::write(&path, "3 1\n0 1\n").unwrap();
        let mut src = FileEdgeSource::open(&path).unwrap();
        src.scan(&mut |_, _| {}).unwrap();
        std::fs::write(&path, "4 1\n0 1\n").unwrap();
        let err = src.scan(&mut |_, _| {}).unwrap_err();
        assert!(err.to_string().contains("header changed between scans"));
        std::fs::remove_file(&path).ok();
    }
}
