//! An array with O(1) initialization ("sparse array").
//!
//! Theorem 3.1 needs, for each vertex `v`, a positions array `pos_v` that is
//! (conceptually) initialized to a default value in O(1) time — otherwise
//! initializing `n` arrays of total length `Σ deg(v) = 2m` would already
//! cost linear time in the input, defeating sublinearity. The classic
//! solution (Aho–Hopcroft–Ullman, *The Design and Analysis of Computer
//! Algorithms*, Exercise 2.12) keeps a stack of initialized slots and a
//! back-pointer certificate per slot: a slot's value is valid iff its
//! back-pointer indexes a stack entry that points back at the slot.
//!
//! This implementation deliberately avoids `unsafe`: the backing stores
//! are eagerly filled with `vec![default; len]` / `vec![0; len]` at
//! construction, a one-time `O(len)` fill. (For zeroed patterns the
//! allocator typically serves this from fresh zero pages anyway.) That
//! eager fill does not undermine the complexity claims, for two reasons:
//! the sampler's *measured* complexity counts probes to the read-only
//! input graph, not private-buffer writes; and one array of length
//! `max_degree` is allocated once and shared across all vertices (see
//! `PosArraySampler`), so the fill is paid once, not per vertex. After
//! construction, the AHU back-pointer certificate keeps the *algorithmic*
//! cost honest: touching `k` slots performs exactly `k` certified writes,
//! [`SparseArray::clear`] is O(1) regardless of how many slots were
//! written, and [`SparseArray::writes`] exposes the touched-slot count so
//! tests can assert the O(k) bound.

/// An array of `len` slots, conceptually all equal to a default value, with
/// O(1) logical initialization and O(1) get/set.
///
/// ```
/// use sparsimatch_graph::sparse_array::SparseArray;
///
/// let mut a = SparseArray::new(1_000_000, 0u32);
/// a.set(123_456, 7);
/// assert_eq!(*a.get(123_456), 7);
/// assert_eq!(*a.get(0), 0);
/// a.clear(); // O(1), regardless of how many slots were written
/// assert_eq!(*a.get(123_456), 0);
/// ```
#[derive(Clone, Debug)]
pub struct SparseArray<T> {
    default: T,
    /// `data[i]` is meaningful iff `certify(i)`.
    data: Vec<T>,
    /// Back-pointer of slot `i` into `touched`.
    back: Vec<usize>,
    /// Stack of touched slot indices.
    touched: Vec<usize>,
}

impl<T: Clone> SparseArray<T> {
    /// A sparse array of `len` slots, all logically `default`.
    pub fn new(len: usize, default: T) -> Self {
        SparseArray {
            data: vec![default.clone(); len],
            back: vec![0; len],
            touched: Vec::new(),
            default,
        }
    }

    /// Number of slots.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has zero slots.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// How many distinct slots have been written since the last
    /// (re-)initialization. This is the algorithmic cost certificate.
    #[inline(always)]
    pub fn writes(&self) -> usize {
        self.touched.len()
    }

    #[inline(always)]
    fn certified(&self, i: usize) -> bool {
        let b = self.back[i];
        b < self.touched.len() && self.touched[b] == i
    }

    /// Read slot `i` (the default if never written).
    #[inline(always)]
    pub fn get(&self, i: usize) -> &T {
        if self.certified(i) {
            &self.data[i]
        } else {
            &self.default
        }
    }

    /// Write slot `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, value: T) {
        if !self.certified(i) {
            self.back[i] = self.touched.len();
            self.touched.push(i);
        }
        self.data[i] = value;
    }

    /// Logically reset every slot to the default in O(1).
    #[inline(always)]
    pub fn clear(&mut self) {
        self.touched.clear();
    }

    /// Grow to at least `len` slots; no-op when already large enough.
    /// Logical contents are preserved: a fresh slot `i ≥ old_len` starts
    /// with `back[i] == 0`, and every live `touched` entry indexes a slot
    /// below `old_len`, so `i` can never be falsely certified.
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.data.len() {
            self.data.resize(len, self.default.clone());
            self.back.resize(len, 0);
        }
    }

    /// Heap bytes of backing capacity currently held (an estimate —
    /// element sizes, not allocator overhead).
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        self.data.capacity() * size_of::<T>()
            + (self.back.capacity() + self.touched.capacity()) * size_of::<usize>()
    }

    /// Iterate over `(index, value)` of explicitly written slots, in write
    /// order (first write wins for ordering; the value is current).
    pub fn iter_written(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.touched.iter().map(move |&i| (i, &self.data[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_everywhere_initially() {
        let a: SparseArray<u32> = SparseArray::new(10, 7);
        for i in 0..10 {
            assert_eq!(*a.get(i), 7);
        }
        assert_eq!(a.writes(), 0);
    }

    #[test]
    fn set_then_get() {
        let mut a = SparseArray::new(5, 0usize);
        a.set(3, 42);
        assert_eq!(*a.get(3), 42);
        assert_eq!(*a.get(2), 0);
        assert_eq!(a.writes(), 1);
        a.set(3, 43);
        assert_eq!(*a.get(3), 43);
        assert_eq!(a.writes(), 1, "rewrite of same slot is not a new touch");
    }

    #[test]
    fn clear_is_logical_reinit() {
        let mut a = SparseArray::new(4, -1i64);
        a.set(0, 5);
        a.set(2, 9);
        a.clear();
        assert_eq!(a.writes(), 0);
        for i in 0..4 {
            assert_eq!(*a.get(i), -1);
        }
        // Stale certificates must not resurrect: write one slot, others stay default.
        a.set(2, 11);
        assert_eq!(*a.get(2), 11);
        assert_eq!(*a.get(0), -1);
    }

    #[test]
    fn iter_written_reports_current_values() {
        let mut a = SparseArray::new(6, 0u8);
        a.set(5, 1);
        a.set(1, 2);
        a.set(5, 3);
        let seen: Vec<(usize, u8)> = a.iter_written().map(|(i, &v)| (i, v)).collect();
        assert_eq!(seen, vec![(5, 3), (1, 2)]);
    }

    #[test]
    fn ensure_len_grows_without_resurrecting_state() {
        let mut a = SparseArray::new(3, 9u32);
        a.set(0, 1);
        a.set(2, 2);
        a.ensure_len(8);
        assert_eq!(a.len(), 8);
        assert_eq!(*a.get(0), 1);
        assert_eq!(*a.get(2), 2);
        for i in 3..8 {
            assert_eq!(*a.get(i), 9, "new slot {i} must read as default");
        }
        a.ensure_len(4); // shrink request is a no-op
        assert_eq!(a.len(), 8);
        a.clear();
        for i in 0..8 {
            assert_eq!(*a.get(i), 9);
        }
        a.set(7, 5);
        assert_eq!(*a.get(7), 5);
        assert_eq!(a.writes(), 1);
    }

    #[test]
    fn behaves_like_plain_array_under_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        let n = 64;
        let mut sparse = SparseArray::new(n, 0u64);
        let mut dense = vec![0u64; n];
        for step in 0..10_000 {
            if step % 500 == 499 {
                sparse.clear();
                dense.iter_mut().for_each(|x| *x = 0);
            } else if rng.random_bool(0.5) {
                let i = rng.random_range(0..n);
                let v = rng.random::<u64>();
                sparse.set(i, v);
                dense[i] = v;
            } else {
                let i = rng.random_range(0..n);
                assert_eq!(*sparse.get(i), dense[i]);
            }
        }
        for (i, &d) in dense.iter().enumerate().take(n) {
            assert_eq!(*sparse.get(i), d);
        }
    }
}
