//! End-to-end smoke tests of the actual `sparsimatch` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparsimatch"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("sparsify"));
}

#[test]
fn bad_subcommand_exits_two() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn generate_analyze_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("smoke.el");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "40",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    let out = bin()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vertices:      40"), "{text}");
    assert!(text.contains("edges:         780"), "{text}");

    let out = bin()
        .args(["match", file.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size: 20"), "{text}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("probes:"), "{text}");

    std::fs::remove_file(&file).ok();
}

#[test]
fn metrics_timings_env_exposes_stage_spans() {
    // Runs the binary in a subprocess so the env var cannot race other
    // in-process tests that rely on timings staying off.
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-spans-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("spans.el");
    let metrics = dir.join("spans.json");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "200",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
            "--seed",
            "3",
            "--threads",
            "2",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .env("SPARSIMATCH_METRICS_TIMINGS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let text = std::fs::read_to_string(&metrics).unwrap();
    let doc = sparsimatch_obs::Json::parse(&text).unwrap();
    let spans = doc
        .get("meter")
        .unwrap()
        .get("spans")
        .expect("timings env must add the spans section");
    let nanos = |key: &str| -> u64 {
        spans
            .get(key)
            .unwrap_or_else(|| panic!("span {key} missing"))
            .get("total_nanos")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    let mark = nanos("stage.mark");
    let extract = nanos("stage.extract");
    let matching = nanos("stage.match");
    let total = nanos("pipeline.total");
    assert!(mark > 0 && extract > 0 && matching > 0 && total > 0);
    let stage_sum = mark + extract + matching;
    assert!(stage_sum <= total, "stages {stage_sum} > total {total}");
    assert!(
        stage_sum as f64 >= 0.9 * total as f64,
        "stages {stage_sum} fall short of 90% of total {total}"
    );

    for p in [&file, &metrics] {
        std::fs::remove_file(p).ok();
    }
}

/// One stderr line, the expected class message, and the class's stable
/// exit code (see `crates/cli/src/error.rs` for the table).
fn assert_fails(args: &[&str], code: i32, needle: &str) {
    let out = bin().args(args).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(code),
        "{args:?}: wrong exit code, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(needle), "{args:?}: stderr {err:?}");
    assert_eq!(
        err.trim_end().lines().count(),
        1,
        "stderr must be one line: {err:?}"
    );
    assert!(err.starts_with("error: "), "{err:?}");
}

#[test]
fn missing_file_exits_three() {
    assert_fails(
        &["analyze", "/nonexistent/definitely-not-here.el"],
        3,
        "i/o error",
    );
}

#[test]
fn malformed_edge_list_exits_four() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let junk = dir.join("junk.el");
    std::fs::write(&junk, "3 2\n0 1\nhello world\n").unwrap();
    assert_fails(&["analyze", junk.to_str().unwrap()], 4, "line 3");

    let dup = dir.join("dup.el");
    std::fs::write(&dup, "3 2\n0 1\n1 0\n").unwrap();
    assert_fails(
        &["match", dup.to_str().unwrap(), "--exact"],
        4,
        "duplicate edge",
    );

    let looped = dir.join("loop.el");
    std::fs::write(&looped, "3 1\n2 2\n").unwrap();
    assert_fails(&["analyze", looped.to_str().unwrap()], 4, "self-loop");

    for p in [&junk, &dup, &looped] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn oversized_header_exits_five() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-big-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let big = dir.join("big.el");
    // A header demanding 2^60 vertices must die fast with "too large",
    // not attempt the allocation.
    std::fs::write(&big, "1152921504606846976 1\n0 1\n").unwrap();
    assert_fails(&["analyze", big.to_str().unwrap()], 5, "too large");
    std::fs::remove_file(&big).ok();
}

#[test]
fn bad_thread_count_exits_six() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-thr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("thr.el");
    std::fs::write(&file, "4 2\n0 1\n2 3\n").unwrap();
    assert_fails(
        &[
            "sparsify",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.5",
            "--threads",
            "65",
        ],
        6,
        "between 1 and 64",
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn invalid_parameter_exits_seven() {
    // NaN / out-of-range probabilities are caught by CLI validation
    // before any generator or fault-plan assertion can fire.
    assert_fails(&["generate", "gnp:NaN", "--n", "10"], 7, "probability");
    assert_fails(&["generate", "gnp:1.5", "--n", "10"], 7, "probability");

    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-param-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("param.el");
    std::fs::write(&file, "4 2\n0 1\n2 3\n").unwrap();
    assert_fails(
        &["distsim", file.to_str().unwrap(), "--drop", "2.0"],
        7,
        "--drop must be a probability",
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn distsim_runs_and_reports_faults() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("dist.el");
    let metrics = dir.join("dist.json");

    let out = bin()
        .args([
            "generate",
            "clique-union:2:20",
            "--n",
            "80",
            "--seed",
            "4",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "distsim",
            file.to_str().unwrap(),
            "--algo",
            "baseline",
            "--drop",
            "0.3",
            "--fault-horizon",
            "40",
            "--retries",
            "1",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size:"), "{text}");
    assert!(text.contains("faults:"), "{text}");

    let doc = sparsimatch_obs::Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc.get("command").unwrap().as_str(), Some("distsim"));
    let counters = doc.get("meter").unwrap().get("counters").unwrap();
    let dropped = counters
        .get(sparsimatch_obs::keys::FAULTS_DROPPED)
        .expect("faults.dropped counter missing")
        .as_u64()
        .unwrap();
    assert!(dropped > 0, "a 30% drop plan must drop something");
    assert!(counters
        .get(sparsimatch_obs::keys::FAULTS_RETRIES)
        .is_some());
    let plan = doc.get("fault_plan").unwrap();
    assert_eq!(plan.get("horizon").unwrap().as_u64(), Some(40));

    for p in [&file, &metrics] {
        std::fs::remove_file(p).ok();
    }
}
