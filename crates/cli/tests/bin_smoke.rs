//! End-to-end smoke tests of the actual `sparsimatch` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparsimatch"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("sparsify"));
}

#[test]
fn bad_subcommand_exits_two() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn generate_analyze_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("smoke.el");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "40",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    let out = bin()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vertices:      40"), "{text}");
    assert!(text.contains("edges:         780"), "{text}");

    let out = bin()
        .args(["match", file.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size: 20"), "{text}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("probes:"), "{text}");

    std::fs::remove_file(&file).ok();
}

#[test]
fn missing_file_is_reported() {
    let out = bin()
        .args(["analyze", "/nonexistent/definitely-not-here.el"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
