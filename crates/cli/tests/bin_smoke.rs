//! End-to-end smoke tests of the actual `sparsimatch` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparsimatch"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("sparsify"));
}

#[test]
fn bad_subcommand_exits_two() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn generate_analyze_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("smoke.el");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "40",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    let out = bin()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vertices:      40"), "{text}");
    assert!(text.contains("edges:         780"), "{text}");

    let out = bin()
        .args(["match", file.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size: 20"), "{text}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("probes:"), "{text}");

    std::fs::remove_file(&file).ok();
}

#[test]
fn metrics_timings_env_exposes_stage_spans() {
    // Runs the binary in a subprocess so the env var cannot race other
    // in-process tests that rely on timings staying off.
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-spans-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("spans.el");
    let metrics = dir.join("spans.json");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "200",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
            "--seed",
            "3",
            "--threads",
            "2",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .env("SPARSIMATCH_METRICS_TIMINGS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let text = std::fs::read_to_string(&metrics).unwrap();
    let doc = sparsimatch_obs::Json::parse(&text).unwrap();
    let spans = doc
        .get("meter")
        .unwrap()
        .get("spans")
        .expect("timings env must add the spans section");
    let nanos = |key: &str| -> u64 {
        spans
            .get(key)
            .unwrap_or_else(|| panic!("span {key} missing"))
            .get("total_nanos")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    let mark = nanos("stage.mark");
    let extract = nanos("stage.extract");
    let matching = nanos("stage.match");
    let total = nanos("pipeline.total");
    assert!(mark > 0 && extract > 0 && matching > 0 && total > 0);
    let stage_sum = mark + extract + matching;
    assert!(stage_sum <= total, "stages {stage_sum} > total {total}");
    assert!(
        stage_sum as f64 >= 0.9 * total as f64,
        "stages {stage_sum} fall short of 90% of total {total}"
    );

    for p in [&file, &metrics] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn missing_file_is_reported() {
    let out = bin()
        .args(["analyze", "/nonexistent/definitely-not-here.el"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
