//! End-to-end smoke tests of the actual `sparsimatch` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparsimatch"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("sparsify"));
}

#[test]
fn bad_subcommand_exits_two() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn generate_analyze_match_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("smoke.el");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "40",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    let out = bin()
        .args(["analyze", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vertices:      40"), "{text}");
    assert!(text.contains("edges:         780"), "{text}");

    let out = bin()
        .args(["match", file.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size: 20"), "{text}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("probes:"), "{text}");

    std::fs::remove_file(&file).ok();
}

#[test]
fn metrics_timings_env_exposes_stage_spans() {
    // Runs the binary in a subprocess so the env var cannot race other
    // in-process tests that rely on timings staying off.
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-spans-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("spans.el");
    let metrics = dir.join("spans.json");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "200",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.4",
            "--seed",
            "3",
            "--threads",
            "2",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .env("SPARSIMATCH_METRICS_TIMINGS", "1")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let text = std::fs::read_to_string(&metrics).unwrap();
    let doc = sparsimatch_obs::Json::parse(&text).unwrap();
    let spans = doc
        .get("meter")
        .unwrap()
        .get("spans")
        .expect("timings env must add the spans section");
    let nanos = |key: &str| -> u64 {
        spans
            .get(key)
            .unwrap_or_else(|| panic!("span {key} missing"))
            .get("total_nanos")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    let mark = nanos("stage.mark");
    let extract = nanos("stage.extract");
    let matching = nanos("stage.match");
    let total = nanos("pipeline.total");
    assert!(mark > 0 && extract > 0 && matching > 0 && total > 0);
    let stage_sum = mark + extract + matching;
    assert!(stage_sum <= total, "stages {stage_sum} > total {total}");
    assert!(
        stage_sum as f64 >= 0.9 * total as f64,
        "stages {stage_sum} fall short of 90% of total {total}"
    );

    for p in [&file, &metrics] {
        std::fs::remove_file(p).ok();
    }
}

/// One stderr line, the expected class message, and the class's stable
/// exit code (see `crates/cli/src/error.rs` for the table).
fn assert_fails(args: &[&str], code: i32, needle: &str) {
    let out = bin().args(args).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(code),
        "{args:?}: wrong exit code, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(needle), "{args:?}: stderr {err:?}");
    assert_eq!(
        err.trim_end().lines().count(),
        1,
        "stderr must be one line: {err:?}"
    );
    assert!(err.starts_with("error: "), "{err:?}");
}

#[test]
fn missing_file_exits_three() {
    assert_fails(
        &["analyze", "/nonexistent/definitely-not-here.el"],
        3,
        "i/o error",
    );
}

#[test]
fn malformed_edge_list_exits_four() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let junk = dir.join("junk.el");
    std::fs::write(&junk, "3 2\n0 1\nhello world\n").unwrap();
    assert_fails(&["analyze", junk.to_str().unwrap()], 4, "line 3");

    let dup = dir.join("dup.el");
    std::fs::write(&dup, "3 2\n0 1\n1 0\n").unwrap();
    assert_fails(
        &["match", dup.to_str().unwrap(), "--exact"],
        4,
        "duplicate edge",
    );

    let looped = dir.join("loop.el");
    std::fs::write(&looped, "3 1\n2 2\n").unwrap();
    assert_fails(&["analyze", looped.to_str().unwrap()], 4, "self-loop");

    for p in [&junk, &dup, &looped] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn oversized_header_exits_five() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-big-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let big = dir.join("big.el");
    // A header demanding 2^60 vertices must die fast with "too large",
    // not attempt the allocation.
    std::fs::write(&big, "1152921504606846976 1\n0 1\n").unwrap();
    assert_fails(&["analyze", big.to_str().unwrap()], 5, "too large");
    std::fs::remove_file(&big).ok();
}

#[test]
fn bad_thread_count_exits_six() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-thr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("thr.el");
    std::fs::write(&file, "4 2\n0 1\n2 3\n").unwrap();
    assert_fails(
        &[
            "sparsify",
            file.to_str().unwrap(),
            "--beta",
            "1",
            "--eps",
            "0.5",
            "--threads",
            "65",
        ],
        6,
        "between 1 and 64",
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn invalid_parameter_exits_seven() {
    // NaN / out-of-range probabilities are caught by CLI validation
    // before any generator or fault-plan assertion can fire.
    assert_fails(&["generate", "gnp:NaN", "--n", "10"], 7, "probability");
    assert_fails(&["generate", "gnp:1.5", "--n", "10"], 7, "probability");

    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-param-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("param.el");
    std::fs::write(&file, "4 2\n0 1\n2 3\n").unwrap();
    assert_fails(
        &["distsim", file.to_str().unwrap(), "--drop", "2.0"],
        7,
        "--drop must be a probability",
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn edcs_backend_matches_end_to_end() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-edcs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("edcs.el");

    let out = bin()
        .args([
            "generate",
            "clique",
            "--n",
            "40",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--backend",
            "edcs",
            "--eps",
            "0.3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("algorithm: edcs+match"), "{text}");
    assert!(text.contains("matching size: 20"), "{text}");
    assert!(text.contains("probes:"), "{text}");

    // EDCS construction is deterministic and ignores the seed, so a rerun
    // under a different seed must be byte-identical.
    let rerun = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--backend",
            "edcs",
            "--eps",
            "0.3",
            "--seed",
            "99",
        ])
        .output()
        .unwrap();
    assert!(rerun.status.success(), "{rerun:?}");
    assert_eq!(text, String::from_utf8(rerun.stdout).unwrap());

    std::fs::remove_file(&file).ok();
}

#[test]
fn backend_parameter_bounds_exit_seven() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-bparam-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bparam.el");
    std::fs::write(&file, "4 2\n0 1\n2 3\n").unwrap();
    let f = file.to_str().unwrap();

    // Latent panics in SparsifierParams::scaled are now typed CLI errors.
    assert_fails(
        &["match", f, "--beta", "0", "--eps", "0.4"],
        7,
        "--beta must be at least 1",
    );
    assert_fails(
        &["match", f, "--beta", "2", "--eps", "1"],
        7,
        "open interval (0, 1)",
    );
    assert_fails(
        &["sparsify", f, "--beta", "0", "--eps", "0.4"],
        7,
        "--beta must be at least 1",
    );
    assert_fails(
        &["distsim", f, "--beta", "2", "--eps", "NaN"],
        7,
        "open interval (0, 1)",
    );

    // EDCS-specific bounds surface the library's own invariant messages.
    assert_fails(
        &[
            "match",
            f,
            "--backend",
            "edcs",
            "--edcs-beta",
            "1",
            "--eps",
            "0.3",
        ],
        7,
        "at least 2",
    );
    assert_fails(
        &[
            "match",
            f,
            "--backend",
            "edcs",
            "--lambda",
            "1.5",
            "--eps",
            "0.3",
        ],
        7,
        "in (0, 1)",
    );
    assert_fails(
        &[
            "match",
            f,
            "--backend",
            "edcs",
            "--edcs-beta",
            "100",
            "--lambda",
            "0.001",
            "--eps",
            "0.3",
        ],
        7,
        "lambda * beta >= 1",
    );

    // Cross-backend knobs are usage errors caught at parse time.
    assert_fails(
        &[
            "match",
            f,
            "--backend",
            "edcs",
            "--beta",
            "3",
            "--eps",
            "0.3",
        ],
        2,
        "use --edcs-beta",
    );
    assert_fails(
        &["match", f, "--backend", "magic", "--eps", "0.3"],
        2,
        "must be delta or edcs",
    );

    std::fs::remove_file(&file).ok();
}

#[test]
fn check_replay_reproduces_a_real_counterexample_byte_identically() {
    use sparsimatch_check::shrink::DEFAULT_CALL_BUDGET;
    use sparsimatch_check::{counterexample_doc, shrink_instance, CheckConfig, Scenario};

    // Mis-parameterize exactly like `sparsimatch-check --delta 1
    // --bound-eps 0.05`: a forced-lossy sparsifier judged against a bound
    // tighter than Theorem 2.1 promises. Search a few seeds for the first
    // violation rather than hardcoding one, so generator changes cannot
    // silently turn this test into a no-op.
    let cfg = CheckConfig {
        bound_eps: Some(0.05),
        delta: Some(1),
        backend: None,
        oracle: None,
    };
    let (scenario, violation) = (0u64..64)
        .find_map(|seed| {
            let s = Scenario::generate(seed, &cfg);
            s.oracle.check(&s.instance, &cfg).map(|v| (s, v))
        })
        .expect("the mis-parameterized config must violate within 64 seeds");
    let slug = violation.check.clone();
    let oracle = scenario.oracle;
    let (small, stats) = shrink_instance(
        &scenario.instance,
        |c| oracle.check(c, &cfg).is_some_and(|v| v.check == slug),
        DEFAULT_CALL_BUDGET,
    );
    let fresh = oracle
        .check(&small, &cfg)
        .expect("shrunk instance violates");
    let doc = counterexample_doc(scenario.seed, oracle, &small, &cfg, &fresh, &stats);

    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("counterexample-{}.json", scenario.seed));
    std::fs::write(&file, doc.to_pretty()).unwrap();

    let out = bin()
        .args(["check", "--replay", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "replay of a just-written reproducer must exit 0: {out:?}"
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains(&format!("[{slug}]")), "{text}");
    assert!(text.contains("byte-identical: yes"), "{text}");

    std::fs::remove_file(&file).ok();
}

#[test]
fn check_replay_of_a_non_reproducing_file_exits_eight() {
    use sparsimatch_check::shrink::ShrinkStats;
    use sparsimatch_check::{
        counterexample_doc, CheckConfig, CheckInstance, OracleKind, Violation,
    };

    // Two disjoint edges are matched perfectly even through a Δ = 1
    // sparsifier, so the recorded "violation" cannot fire on replay.
    let inst = CheckInstance {
        family: "clique".to_string(),
        n: 4,
        beta: 1,
        eps: 0.4,
        delta: Some(1),
        algo_seed: 99,
        edges: vec![(0, 1), (2, 3)],
        updates: Vec::new(),
    };
    let cfg = CheckConfig {
        bound_eps: Some(0.05),
        delta: Some(1),
        backend: None,
        oracle: None,
    };
    let v = Violation {
        check: "stale".to_string(),
        message: "recorded against an older build".to_string(),
    };
    let doc = counterexample_doc(
        3,
        OracleKind::Static,
        &inst,
        &cfg,
        &v,
        &ShrinkStats::default(),
    );

    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-check8-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("counterexample-3.json");
    std::fs::write(&file, doc.to_pretty()).unwrap();

    assert_fails(
        &["check", "--replay", file.to_str().unwrap()],
        8,
        "did not reproduce",
    );
    // A syntactically broken reproducer is malformed input (4), not a
    // check failure.
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"tool\": \"other\"}").unwrap();
    assert_fails(
        &["check", "--replay", junk.to_str().unwrap()],
        4,
        "not a sparsimatch-check reproducer",
    );
    // A missing file is I/O (3).
    assert_fails(
        &["check", "--replay", "/nonexistent/counterexample-0.json"],
        3,
        "No such file",
    );

    for p in [&file, &junk] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn distsim_runs_and_reports_faults() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("dist.el");
    let metrics = dir.join("dist.json");

    let out = bin()
        .args([
            "generate",
            "clique-union:2:20",
            "--n",
            "80",
            "--seed",
            "4",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = bin()
        .args([
            "distsim",
            file.to_str().unwrap(),
            "--algo",
            "baseline",
            "--drop",
            "0.3",
            "--fault-horizon",
            "40",
            "--retries",
            "1",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("matching size:"), "{text}");
    assert!(text.contains("faults:"), "{text}");

    let doc = sparsimatch_obs::Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc.get("command").unwrap().as_str(), Some("distsim"));
    let counters = doc.get("meter").unwrap().get("counters").unwrap();
    let dropped = counters
        .get(sparsimatch_obs::keys::FAULTS_DROPPED)
        .expect("faults.dropped counter missing")
        .as_u64()
        .unwrap();
    assert!(dropped > 0, "a 30% drop plan must drop something");
    assert!(counters
        .get(sparsimatch_obs::keys::FAULTS_RETRIES)
        .is_some());
    let plan = doc.get("fault_plan").unwrap();
    assert_eq!(plan.get("horizon").unwrap().as_u64(), Some(40));

    for p in [&file, &metrics] {
        std::fs::remove_file(p).ok();
    }
}

/// `--threads 2` runs the sharded engine and must produce byte-identical
/// stdout (matching, rounds, messages, bits, fault counters) to the
/// sequential `--threads 1` run — including under an active fault plan.
#[test]
fn distsim_sharded_output_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bin-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("shard.el");

    let out = bin()
        .args([
            "generate",
            "clique-union:2:20",
            "--n",
            "80",
            "--seed",
            "4",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let run = |threads: &str| {
        let out = bin()
            .args([
                "distsim",
                file.to_str().unwrap(),
                "--algo",
                "randomized",
                "--pairs",
                "--drop",
                "0.2",
                "--fault-horizon",
                "30",
                "--retries",
                "1",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "t={threads}: {out:?}");
        out.stdout
    };
    let sequential = run("1");
    assert_eq!(run("2"), sequential, "t=2 stdout differs from t=1");
    assert_eq!(run("4"), sequential, "t=4 stdout differs from t=1");

    // Out-of-range thread counts die with the stable threads exit code.
    let out = bin()
        .args(["distsim", file.to_str().unwrap(), "--threads", "65"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(6),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("between 1 and 64"));

    std::fs::remove_file(&file).ok();
}

/// Drive `sparsimatch serve` over stdin/stdout with a scripted session
/// covering every command plus a malformed and an over-deep request;
/// the daemon answers typed errors for the bad lines and stays up.
#[test]
fn serve_scripted_stdio_session() {
    use std::io::Write;
    let deep = "[".repeat(300);
    let script = format!(
        concat!(
            r#"{{"id":1,"cmd":"load_graph","n":12,"family":"clique"}}"#,
            "\n",
            r#"{{"id":2,"cmd":"solve","beta":1,"eps":0.5,"seed":7}}"#,
            "\n",
            "not json\n",
            "{deep}\n",
            r#"{{"id":3,"cmd":"solve","beta":1,"eps":0.5,"seed":7}}"#,
            "\n",
            r#"{{"id":4,"cmd":"update","ops":[["insert",0,1]],"beta":1,"eps":0.5}}"#,
            "\n",
            r#"{{"id":5,"cmd":"query","what":"status"}}"#,
            "\n",
            r#"{{"id":6,"cmd":"metrics"}}"#,
            "\n",
            r#"{{"id":7,"cmd":"shutdown"}}"#,
            "\n",
        ),
        deep = deep
    );
    let mut child = bin()
        .arg("serve")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 9, "one response per request: {lines:#?}");
    assert!(lines[0].contains(r#""ok":true"#), "{}", lines[0]);
    assert!(lines[1].contains(r#""warm":false"#), "{}", lines[1]);
    assert!(lines[2].contains(r#""code":"parse""#), "{}", lines[2]);
    assert!(lines[3].contains(r#""code":"too_deep""#), "{}", lines[3]);
    assert!(lines[4].contains(r#""warm":true"#), "{}", lines[4]);
    assert!(lines[5].contains(r#""ok":true"#), "{}", lines[5]);
    assert!(lines[6].contains(r#""dynamic":true"#), "{}", lines[6]);
    assert!(lines[7].contains(r#""wire_errors":2"#), "{}", lines[7]);
    assert_eq!(
        lines[8],
        r#"{"id":7,"ok":true,"result":{"stopping":"session"}}"#
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("session closed"), "{stderr}");
}

/// A warm in-daemon solve returns exactly the pairs the one-shot CLI
/// prints for the same family, seed, and parameters.
#[test]
fn serve_solve_is_byte_identical_to_one_shot_match() {
    use std::io::Write;
    let dir = std::env::temp_dir().join(format!("sparsimatch-serve-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("ident.el");
    let out = bin()
        .args([
            "generate",
            "clique-union:2:20",
            "--n",
            "60",
            "--seed",
            "5",
            "--out",
            file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = bin()
        .args([
            "match",
            file.to_str().unwrap(),
            "--beta",
            "2",
            "--eps",
            "0.5",
            "--seed",
            "7",
            "--pairs",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let cli_pairs: Vec<&str> = text
        .lines()
        .filter(|l| {
            let mut parts = l.split_whitespace();
            matches!(
                (
                    parts.next().map(|p| p.parse::<u32>().is_ok()),
                    parts.next().map(|p| p.parse::<u32>().is_ok()),
                    parts.next(),
                ),
                (Some(true), Some(true), None)
            )
        })
        .collect();
    assert!(!cli_pairs.is_empty(), "no pairs in {text}");
    let expected_pairs_json: String = cli_pairs
        .iter()
        .map(|l| {
            let mut it = l.split_whitespace();
            format!("[{},{}]", it.next().unwrap(), it.next().unwrap())
        })
        .collect::<Vec<_>>()
        .join(",");

    // Same family/seed loaded in-daemon; the second solve is warm and
    // must carry the identical pair list.
    let script = concat!(
        r#"{"id":1,"cmd":"load_graph","n":60,"family":"clique-union:2:20","seed":5}"#,
        "\n",
        r#"{"id":2,"cmd":"solve","beta":2,"eps":0.5,"seed":7,"pairs":true}"#,
        "\n",
        r#"{"id":3,"cmd":"solve","beta":2,"eps":0.5,"seed":7,"pairs":true}"#,
        "\n",
        r#"{"id":4,"cmd":"shutdown"}"#,
        "\n",
    );
    let mut child = bin()
        .arg("serve")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{lines:#?}");
    let want = format!(r#""pairs":[{expected_pairs_json}]"#);
    assert!(
        lines[1].contains(&want),
        "cold solve: {}\nwant {want}",
        lines[1]
    );
    assert!(
        lines[2].contains(&want),
        "warm solve: {}\nwant {want}",
        lines[2]
    );
    assert!(lines[2].contains(r#""warm":true"#), "{}", lines[2]);
    std::fs::remove_file(&file).ok();
}

/// Daemon runtime failures (unbindable socket path) exit 9; a bad
/// thread count exits 6 before any I/O happens.
#[test]
fn serve_error_exit_codes() {
    let out = bin()
        .args(["serve", "--socket", "/nonexistent-dir/deeper/s.sock"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(9), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("serve:"), "{err}");

    let out = bin().args(["serve", "--threads", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(6), "{out:?}");

    let out = bin().args(["serve", "--queue-cap", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(7), "{out:?}");
}
