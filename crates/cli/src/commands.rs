//! Command implementations, parameterized over the output writer for
//! testability.

use crate::args::{
    AnalyzeArgs, CheckArgs, DistAlgo, DistsimArgs, GenerateArgs, MatchAlgo, MatchArgs, ServeArgs,
    SparsifyArgs,
};
use crate::error::CliError;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::edcs::{approx_mcm_via_edcs_with_scratch_metered, EdcsParams};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier_metered;
use sparsimatch_core::scratch::PipelineScratch;
use sparsimatch_core::sparsifier::{
    build_sparsifier_parallel_metered, ThreadCountError, MAX_THREADS,
};
use sparsimatch_distsim::algorithms::pipeline::{
    distributed_approx_mcm_sharded, distributed_maximal_baseline_sharded,
    distributed_randomized_maximal_sharded, FaultCfg,
};
use sparsimatch_distsim::{FaultPlan, FaultRates, ResilienceParams};
use sparsimatch_graph::analysis::arboricity::{arboricity_bounds, degeneracy};
use sparsimatch_graph::analysis::independence::neighborhood_independence_exact;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::generators::{family_from_spec, FamilySpecError};
use sparsimatch_graph::io::{read_edge_list_file, write_edge_list, write_edge_list_file};
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::Matching;
use sparsimatch_obs::{Json, WorkMeter};
use sparsimatch_serve::{serve_stdio, serve_unix, ServeConfig};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

fn io_err(e: impl std::fmt::Display) -> CliError {
    CliError::Io(e.to_string())
}

/// Reject a flag value that must be a probability. Catches NaN and ±∞
/// before they reach generator/fault-plan assertions deeper down.
fn require_probability(name: &str, p: f64) -> Result<(), CliError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(CliError::InvalidParam(format!(
            "{name} must be a probability in [0, 1], got {p}"
        )))
    }
}

/// Reject a flag value that must be a finite positive number.
fn require_positive(name: &str, x: f64) -> Result<(), CliError> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        Err(CliError::InvalidParam(format!(
            "{name} must be a finite positive number, got {x}"
        )))
    }
}

/// Reject an ε outside the open interval (0, 1). The sparsifier's Δ
/// sizing divides by ε and the augmenting-path length bound needs
/// ε < 1, so values on or past either endpoint would trip internal
/// asserts instead of producing a typed exit-7 error.
fn require_eps(name: &str, eps: f64) -> Result<(), CliError> {
    if eps.is_finite() && 0.0 < eps && eps < 1.0 {
        Ok(())
    } else {
        Err(CliError::InvalidParam(format!(
            "{name} must be in the open interval (0, 1), got {eps}"
        )))
    }
}

/// Reject β = 0, which [`SparsifierParams`] asserts against (any graph
/// with an edge has neighborhood independence at least 1).
fn require_beta(name: &str, beta: usize) -> Result<(), CliError> {
    if beta >= 1 {
        Ok(())
    } else {
        Err(CliError::InvalidParam(format!(
            "{name} must be at least 1, got 0"
        )))
    }
}

/// Start a metrics document: tool/command header plus input shape.
fn metrics_doc(command: &str, g: &CsrGraph) -> Json {
    let mut input = Json::object();
    input.set("vertices", g.num_vertices());
    input.set("edges", g.num_edges());
    let mut doc = Json::object();
    doc.set("tool", "sparsimatch");
    doc.set("command", command);
    doc.set("input", input);
    doc
}

/// Attach the meter snapshot and write the document. Counter values are
/// deterministic for a fixed seed, so the file is byte-stable unless
/// `SPARSIMATCH_METRICS_TIMINGS=1` opts into wall-clock span timings.
/// With `--features alloc-count` the snapshot additionally carries
/// `alloc.bytes` / `alloc.count`: the process-wide allocation totals at
/// write time. The CLI runs one command per process, so those read as
/// per-command totals — but they are cumulative, hence exempt from the
/// byte-stability guarantee when several commands share a process.
fn write_metrics_json(
    path: &std::path::Path,
    mut doc: Json,
    meter: &mut WorkMeter,
) -> Result<(), CliError> {
    #[cfg(feature = "alloc-count")]
    {
        let totals = sparsimatch_obs::alloc::totals();
        meter.add(sparsimatch_obs::keys::ALLOC_BYTES, totals.bytes);
        meter.add(sparsimatch_obs::keys::ALLOC_COUNT, totals.count);
    }
    let with_timings = std::env::var("SPARSIMATCH_METRICS_TIMINGS").is_ok_and(|v| v == "1");
    doc.set(
        "meter",
        if with_timings {
            meter.snapshot_full()
        } else {
            meter.snapshot_counters()
        },
    );
    std::fs::write(path, doc.to_pretty()).map_err(io_err)
}

/// Build a graph from a family spec like `clique-union:2:100`. The spec
/// grammar lives in [`sparsimatch_graph::generators::family_from_spec`]
/// (shared with the serve daemon's `load_graph` request); this wrapper
/// only classifies its errors onto CLI exit codes.
pub fn build_family(spec: &str, n: usize, rng: &mut StdRng) -> Result<CsrGraph, CliError> {
    family_from_spec(spec, n, rng).map_err(|e| match e {
        FamilySpecError::UnknownFamily(m) => CliError::Usage(m),
        FamilySpecError::BadValue(m) => CliError::InvalidParam(m),
    })
}

/// `sparsimatch generate`.
pub fn generate(args: GenerateArgs, out: Out<'_>) -> Result<(), CliError> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = build_family(&args.family, args.n, &mut rng)?;
    emit_graph(&g, &args.out, out)?;
    writeln!(
        std::io::stderr(),
        "generated {}: n = {}, m = {}",
        args.family,
        g.num_vertices(),
        g.num_edges()
    )
    .ok();
    Ok(())
}

fn emit_graph(
    g: &CsrGraph,
    dest: &Option<std::path::PathBuf>,
    out: Out<'_>,
) -> Result<(), CliError> {
    match dest {
        Some(path) => write_edge_list_file(g, path).map_err(io_err),
        None => write_edge_list(g, out).map_err(io_err),
    }
}

/// `sparsimatch analyze`.
pub fn analyze(args: AnalyzeArgs, out: Out<'_>) -> Result<(), CliError> {
    let g = read_edge_list_file(&args.input)?;
    let mut meter = WorkMeter::new();
    let mut results = Json::object();
    writeln!(out, "vertices:      {}", g.num_vertices()).map_err(io_err)?;
    writeln!(out, "edges:         {}", g.num_edges()).map_err(io_err)?;
    writeln!(out, "non-isolated:  {}", g.num_non_isolated()).map_err(io_err)?;
    writeln!(out, "max degree:    {}", g.max_degree()).map_err(io_err)?;
    let degen = meter.time("degeneracy", |_| degeneracy(&g));
    writeln!(out, "degeneracy:    {degen}").map_err(io_err)?;
    results.set("non_isolated", g.num_non_isolated());
    results.set("max_degree", g.max_degree());
    results.set("degeneracy", degen);
    if g.num_edges() > 0 {
        let (lo, hi) = meter.time("arboricity", |_| arboricity_bounds(&g));
        writeln!(out, "arboricity:    in [{lo}, {hi}]").map_err(io_err)?;
        results.set("arboricity_lo", lo);
        results.set("arboricity_hi", hi);
    }
    let mm = meter.time("greedy_matching", |_| greedy_maximal_matching(&g).len());
    writeln!(
        out,
        "maximal match: {mm} (greedy; MCM is in [{mm}, {}])",
        2 * mm
    )
    .map_err(io_err)?;
    results.set("greedy_matching", mm);
    // A cheap sampled lower bound on beta plus the diversity upper bound
    // (beta <= diversity): together they bracket the parameter users need
    // for SparsifierParams.
    let mut rng = StdRng::seed_from_u64(0);
    let beta_lower =
        sparsimatch_graph::analysis::independence::estimate_beta_sampled(&g, 16, &mut rng);
    writeln!(out, "beta >= {beta_lower} (sampled lower bound)").map_err(io_err)?;
    results.set("beta_lower", beta_lower);
    match sparsimatch_graph::analysis::diversity::diversity(&g, 100_000) {
        Some(d) => {
            writeln!(out, "beta <= {d} (diversity upper bound)").map_err(io_err)?;
            results.set("beta_upper", d);
        }
        None => writeln!(out, "diversity:     > clique budget (skipped)").map_err(io_err)?,
    }
    if args.exact_beta {
        let beta = meter.time("beta_exact", |_| neighborhood_independence_exact(&g));
        writeln!(out, "beta (exact):  {beta}").map_err(io_err)?;
        results.set("beta_exact", beta);
        if beta > 0 {
            let n_prime = g.num_non_isolated();
            writeln!(
                out,
                "Lemma 2.2:     MCM >= n'/(beta+2) = {:.2}",
                n_prime as f64 / (beta as f64 + 2.0)
            )
            .map_err(io_err)?;
        }
    }
    if let Some(path) = &args.metrics_json {
        let mut doc = metrics_doc("analyze", &g);
        doc.set("results", results);
        write_metrics_json(path, doc, &mut meter)?;
    }
    Ok(())
}

/// `sparsimatch sparsify`.
pub fn sparsify(args: SparsifyArgs, out: Out<'_>) -> Result<(), CliError> {
    let g = read_edge_list_file(&args.input)?;
    require_beta("--beta", args.beta)?;
    require_eps("--eps", args.eps)?;
    require_positive("--scale", args.scale)?;
    let params = SparsifierParams::scaled(args.beta, args.eps, args.scale);
    let mut meter = WorkMeter::new();
    // Every thread count (including 1) takes the seeded per-vertex path,
    // so the output depends only on the seed, never on `--threads`.
    let s = meter
        .time("sparsify", |m| {
            build_sparsifier_parallel_metered(&g, &params, args.seed, args.threads, m)
        })
        .map_err(CliError::from)?;
    emit_graph(&s.graph, &args.out, out)?;
    if let Some(path) = &args.metrics_json {
        let mut doc = metrics_doc("sparsify", &g);
        doc.set("seed", args.seed);
        doc.set("threads", args.threads);
        let mut results = Json::object();
        results.set("delta", s.stats.delta);
        results.set("mark_cap", s.stats.mark_cap);
        results.set("sparsifier_edges", s.stats.edges);
        doc.set("results", results);
        write_metrics_json(path, doc, &mut meter)?;
    }
    writeln!(
        std::io::stderr(),
        "sparsified m = {} -> {} edges (delta = {}, cap = {})",
        g.num_edges(),
        s.stats.edges,
        params.delta,
        params.mark_cap()
    )
    .ok();
    Ok(())
}

/// `sparsimatch match`.
pub fn do_match(args: MatchArgs, out: Out<'_>) -> Result<(), CliError> {
    let g = read_edge_list_file(&args.input)?;
    let mut meter = WorkMeter::new();
    let (label, matching): (&str, Matching) = match args.algo {
        MatchAlgo::Exact => (
            "exact (blossom)",
            meter.time("match", |_| maximum_matching(&g)),
        ),
        MatchAlgo::Greedy => (
            "greedy maximal",
            meter.time("match", |_| greedy_maximal_matching(&g)),
        ),
        MatchAlgo::Sparsify { beta, eps } => {
            require_beta("--beta", beta)?;
            require_eps("--eps", eps)?;
            let params = SparsifierParams::practical(beta, eps);
            // One seeded pipeline for every thread count: `--threads`
            // accelerates marking, extraction, and matching without
            // changing a single output byte.
            let r = meter
                .time("match", |m| {
                    approx_mcm_via_sparsifier_metered(&g, &params, args.seed, args.threads, m)
                })
                .map_err(CliError::from)?;
            writeln!(out, "probes: {} (m = {})", r.probes.total(), g.num_edges())
                .map_err(io_err)?;
            ("sparsify+match", r.matching)
        }
        MatchAlgo::Edcs { beta, lambda, eps } => {
            require_eps("--eps", eps)?;
            let lambda = lambda.unwrap_or_else(|| EdcsParams::default_lambda(beta));
            let params =
                EdcsParams::new(beta, lambda).map_err(|e| CliError::InvalidParam(e.to_string()))?;
            // EDCS construction is deterministic (it ignores --seed), so
            // the output — like delta's — is identical for every thread
            // count; --threads only bounds the accepted range here.
            let mut scratch = PipelineScratch::new();
            let r = meter
                .time("match", |m| {
                    approx_mcm_via_edcs_with_scratch_metered(
                        &g,
                        &params,
                        eps,
                        args.threads,
                        m,
                        &mut scratch,
                    )
                    .cloned()
                })
                .map_err(CliError::from)?;
            writeln!(out, "probes: {} (m = {})", r.probes.total(), g.num_edges())
                .map_err(io_err)?;
            ("edcs+match", r.matching)
        }
    };
    writeln!(out, "algorithm: {label}").map_err(io_err)?;
    writeln!(out, "matching size: {}", matching.len()).map_err(io_err)?;
    if args.pairs {
        for (u, v) in matching.pairs() {
            writeln!(out, "{} {}", u.0, v.0).map_err(io_err)?;
        }
    }
    if let Some(path) = &args.metrics_json {
        let mut doc = metrics_doc("match", &g);
        doc.set("algorithm", label);
        doc.set("seed", args.seed);
        doc.set("threads", args.threads);
        let mut results = Json::object();
        results.set("matching_size", matching.len());
        doc.set("results", results);
        write_metrics_json(path, doc, &mut meter)?;
    }
    Ok(())
}

/// `sparsimatch distsim`.
pub fn distsim(args: DistsimArgs, out: Out<'_>) -> Result<(), CliError> {
    // Validate every fault knob before FaultPlan::new, whose own
    // validation is an assert (programming-error contract, not a CLI one).
    require_probability("--drop", args.drop)?;
    require_probability("--duplicate", args.duplicate)?;
    require_probability("--reorder", args.reorder)?;
    require_probability("--crash", args.crash)?;
    require_beta("--beta", args.beta)?;
    require_eps("--eps", args.eps)?;
    if args.crash_period == 0 {
        return Err(CliError::InvalidParam(
            "--crash-period must be at least 1".into(),
        ));
    }
    if !(1..=MAX_THREADS).contains(&args.threads) {
        return Err(CliError::Threads(
            ThreadCountError {
                requested: args.threads,
            }
            .to_string(),
        ));
    }
    let g = read_edge_list_file(&args.input)?;
    let rates = FaultRates {
        drop: args.drop,
        duplicate: args.duplicate,
        reorder: args.reorder,
        crash: args.crash,
    };
    let mut plan = FaultPlan::new(args.fault_seed, rates).with_crash_period(args.crash_period);
    if let Some(h) = args.fault_horizon {
        plan = plan.with_horizon(h);
    }
    let resilience = if args.retries > 0 {
        ResilienceParams::retry(args.retries)
    } else {
        ResilienceParams::off()
    };
    let params = SparsifierParams::practical(args.beta, args.eps);
    type ShardedRun = fn(
        &CsrGraph,
        &SparsifierParams,
        u64,
        FaultCfg<'_>,
        usize,
    ) -> sparsimatch_distsim::algorithms::pipeline::DistributedOutcome;
    let (label, run): (&str, ShardedRun) = match args.algo {
        DistAlgo::Approx => ("distributed approx-mcm", distributed_approx_mcm_sharded),
        DistAlgo::Baseline => (
            "distributed maximal (color-scheduled)",
            distributed_maximal_baseline_sharded,
        ),
        DistAlgo::Randomized => (
            "distributed maximal (randomized)",
            distributed_randomized_maximal_sharded,
        ),
    };
    let mut meter = WorkMeter::new();
    let outcome = meter.time("distsim", |_| {
        run(
            &g,
            &params,
            args.seed,
            Some((&plan, resilience)),
            args.threads,
        )
    });
    writeln!(out, "algorithm: {label}").map_err(io_err)?;
    writeln!(out, "matching size: {}", outcome.matching.len()).map_err(io_err)?;
    writeln!(
        out,
        "rounds: {}  messages: {}  bits: {}",
        outcome.metrics.rounds, outcome.metrics.messages, outcome.metrics.bits
    )
    .map_err(io_err)?;
    writeln!(out, "faults: {}", outcome.faults).map_err(io_err)?;
    if args.pairs {
        for (u, v) in outcome.matching.pairs() {
            writeln!(out, "{} {}", u.0, v.0).map_err(io_err)?;
        }
    }
    if let Some(path) = &args.metrics_json {
        outcome.faults.mirror_into(&mut meter);
        let mut doc = metrics_doc("distsim", &g);
        doc.set("algorithm", label);
        doc.set("seed", args.seed);
        doc.set("threads", args.threads);
        let mut fault_cfg = Json::object();
        fault_cfg.set("seed", args.fault_seed);
        fault_cfg.set("drop", args.drop);
        fault_cfg.set("duplicate", args.duplicate);
        fault_cfg.set("reorder", args.reorder);
        fault_cfg.set("crash", args.crash);
        fault_cfg.set("crash_period", args.crash_period);
        if let Some(h) = args.fault_horizon {
            fault_cfg.set("horizon", h);
        }
        fault_cfg.set("retries", u64::from(args.retries));
        doc.set("fault_plan", fault_cfg);
        let mut results = Json::object();
        results.set("matching_size", outcome.matching.len());
        results.set("rounds", outcome.metrics.rounds);
        results.set("messages", outcome.metrics.messages);
        results.set("bits", outcome.metrics.bits);
        results.set("composed_max_degree", outcome.composed_max_degree);
        doc.set("results", results);
        write_metrics_json(path, doc, &mut meter)?;
    }
    Ok(())
}

/// `sparsimatch check --replay`: re-execute a counterexample reproducer
/// written by the `sparsimatch-check` differential fuzzer. Success means
/// the recorded violation reproduced *and* the re-rendered document is
/// byte-identical to the file; anything weaker is [`CliError::CheckFailed`]
/// (exit 8), because a drifting reproducer no longer witnesses the bug it
/// was filed for.
pub fn check(args: CheckArgs, out: Out<'_>) -> Result<(), CliError> {
    let text = std::fs::read_to_string(&args.replay)?;
    let report = sparsimatch_check::replay_str(&text).map_err(CliError::MalformedInput)?;
    writeln!(
        out,
        "replaying {} (seed {}, oracle {})",
        args.replay.display(),
        report.seed,
        report.oracle.name()
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "recorded violation: [{}] {}",
        report.recorded.check, report.recorded.message
    )
    .map_err(io_err)?;
    match &report.fresh {
        Some(v) if report.byte_identical => {
            writeln!(out, "reproduced: [{}] {}", v.check, v.message).map_err(io_err)?;
            writeln!(out, "byte-identical: yes").map_err(io_err)?;
            Ok(())
        }
        Some(v) => Err(CliError::CheckFailed(format!(
            "violation reproduced as [{}] but the re-rendered document is not byte-identical to {}",
            v.check,
            args.replay.display()
        ))),
        None => Err(CliError::CheckFailed(format!(
            "recorded violation [{}] did not reproduce on replay of {}",
            report.recorded.check,
            args.replay.display()
        ))),
    }
}

/// `sparsimatch serve`: run the resident request-loop daemon.
///
/// Protocol responses own stdout in stdio mode, so this command writes
/// nothing to `out`; start/stop notices go to stderr. Daemon runtime
/// failures (bind/accept errors) map to [`CliError::Serve`] (exit 9).
pub fn serve(args: ServeArgs, _out: Out<'_>) -> Result<(), CliError> {
    if !(1..=MAX_THREADS).contains(&args.threads) {
        return Err(CliError::Threads(
            ThreadCountError {
                requested: args.threads,
            }
            .to_string(),
        ));
    }
    if args.queue_cap == 0 {
        return Err(CliError::InvalidParam(
            "--queue-cap must be at least 1".into(),
        ));
    }
    if args.max_sessions == 0 {
        return Err(CliError::InvalidParam(
            "--max-sessions must be at least 1".into(),
        ));
    }
    let cfg = ServeConfig {
        threads: args.threads,
        backend: args.backend,
        queue_cap: args.queue_cap,
        max_sessions: args.max_sessions,
        deadline_ms: args.deadline_ms,
        idle_timeout_ms: args.idle_timeout_ms,
        drain_ms: args.drain_ms,
    };
    let serve_err = |e: std::io::Error| CliError::Serve(format!("serve: {e}"));
    match &args.socket {
        Some(path) => {
            eprintln!("serving on unix socket {}", path.display());
            serve_unix(path, &cfg).map_err(serve_err)?;
            eprintln!("daemon stopped");
        }
        None => {
            let summary = serve_stdio(&cfg).map_err(serve_err)?;
            eprintln!(
                "session closed: {} requests, {} overloaded, {} wire errors",
                summary.requests, summary.overloaded, summary.wire_errors
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sparsimatch-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_line(line: &str) -> Result<String, String> {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let cmd = parse(&argv)?;
        let mut buf = Vec::new();
        crate::run(cmd, &mut buf).map_err(|e| e.to_string())?;
        Ok(String::from_utf8(buf).unwrap())
    }

    /// The `alloc.*` counters are cumulative per process, so tests that
    /// compare metrics documents across several in-process runs must
    /// drop those lines before comparing (see `write_metrics_json`).
    fn stable_metrics_lines(text: &str) -> String {
        text.lines()
            .filter(|l| !l.contains("\"alloc."))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn generate_analyze_match_pipeline() {
        let dir = tmpdir();
        let file = dir.join("g.el");
        let fs = file.to_str().unwrap();
        run_line(&format!(
            "generate clique-union:2:30 --n 120 --seed 5 --out {fs}"
        ))
        .unwrap();
        let analysis = run_line(&format!("analyze {fs} --exact-beta")).unwrap();
        assert!(analysis.contains("vertices:      120"));
        assert!(analysis.contains("beta (exact):  2") || analysis.contains("beta (exact):  1"));

        let exact = run_line(&format!("match {fs} --exact")).unwrap();
        assert!(exact.contains("matching size: 60"), "{exact}");

        let approx = run_line(&format!("match {fs} --beta 2 --eps 0.3 --seed 2")).unwrap();
        assert!(approx.contains("probes:"));
        assert!(approx.contains("matching size:"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn sparsify_reduces_edges() {
        let dir = tmpdir();
        let input = dir.join("dense.el");
        let output = dir.join("sparse.el");
        run_line(&format!(
            "generate clique --n 150 --out {}",
            input.display()
        ))
        .unwrap();
        run_line(&format!(
            "sparsify {} --beta 1 --eps 0.4 --seed 1 --out {}",
            input.display(),
            output.display()
        ))
        .unwrap();
        let g = read_edge_list_file(&input).unwrap();
        let s = read_edge_list_file(&output).unwrap();
        assert!(s.num_edges() < g.num_edges() / 2);
        // Sparsifier is a subgraph.
        for (_, u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn generate_to_stdout() {
        let text = run_line("generate path --n 5").unwrap();
        let first = text.lines().next().unwrap();
        assert_eq!(first, "5 4");
    }

    #[test]
    fn match_pairs_output() {
        let dir = tmpdir();
        let file = dir.join("p.el");
        run_line(&format!("generate path --n 4 --out {}", file.display())).unwrap();
        let out = run_line(&format!("match {} --exact --pairs", file.display())).unwrap();
        assert!(out.contains("matching size: 2"));
        // Two pair lines follow.
        assert_eq!(
            out.lines()
                .filter(|l| l.split_whitespace().count() == 2)
                .count(),
            2
        );
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn metrics_json_is_byte_stable_for_fixed_seed() {
        let dir = tmpdir();
        let file = dir.join("det.el");
        run_line(&format!(
            "generate clique-union:2:25 --n 100 --seed 3 --out {}",
            file.display()
        ))
        .unwrap();
        let m1 = dir.join("det1.json");
        let m2 = dir.join("det2.json");
        for m in [&m1, &m2] {
            run_line(&format!(
                "match {} --beta 2 --eps 0.4 --seed 9 --metrics-json {}",
                file.display(),
                m.display()
            ))
            .unwrap();
        }
        let b1 = std::fs::read(&m1).unwrap();
        let b2 = std::fs::read(&m2).unwrap();
        assert_eq!(
            stable_metrics_lines(std::str::from_utf8(&b1).unwrap()),
            stable_metrics_lines(std::str::from_utf8(&b2).unwrap()),
            "metrics JSON must be byte-stable for a fixed seed"
        );
        // And it is well-formed JSON carrying the unified counters.
        let doc = Json::parse(std::str::from_utf8(&b1).unwrap()).unwrap();
        assert_eq!(doc.get("command").unwrap().as_str(), Some("match"));
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(9));
        let counters = doc.get("meter").unwrap().get("counters").unwrap();
        assert!(
            counters
                .get(sparsimatch_obs::keys::DEGREE_PROBES)
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert!(counters.get(sparsimatch_obs::keys::RNG_DRAWS).is_some());
        assert!(
            doc.get("meter").unwrap().get("spans").is_none(),
            "timings are opt-in"
        );
        for p in [&file, &m1, &m2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn sparsify_and_match_are_thread_count_invariant_via_cli() {
        let dir = tmpdir();
        let file = dir.join("par.el");
        run_line(&format!(
            "generate clique --n 120 --seed 1 --out {}",
            file.display()
        ))
        .unwrap();
        // sparsify: byte-identical sparsifier (and metrics) for every
        // thread count, including 1.
        let mut cleanup = vec![file.clone()];
        let mut sparsifier_bytes: Vec<Vec<u8>> = Vec::new();
        let mut metrics_text: Vec<String> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let o = dir.join(format!("par{threads}.el"));
            let m = dir.join(format!("par{threads}.json"));
            run_line(&format!(
                "sparsify {} --beta 1 --eps 0.4 --seed 8 --threads {threads} --out {} --metrics-json {}",
                file.display(),
                o.display(),
                m.display()
            ))
            .unwrap();
            sparsifier_bytes.push(std::fs::read(&o).unwrap());
            // The metrics differ only in the recorded thread count (and
            // the cumulative alloc.* counters, which are stripped).
            metrics_text.push(stable_metrics_lines(
                &String::from_utf8(std::fs::read(&m).unwrap())
                    .unwrap()
                    .replace(&format!("\"threads\": {threads}"), "\"threads\": T"),
            ));
            cleanup.push(o);
            cleanup.push(m);
        }
        for (i, b) in sparsifier_bytes.iter().enumerate().skip(1) {
            assert_eq!(
                &sparsifier_bytes[0], b,
                "sparsifier output must not depend on the thread count (run {i})"
            );
            assert_eq!(metrics_text[0], metrics_text[i], "metrics (run {i})");
        }
        // match through the pipeline: same matching for every thread count.
        let reference = run_line(&format!(
            "match {} --beta 1 --eps 0.4 --seed 8 --threads 1 --pairs",
            file.display()
        ))
        .unwrap();
        for threads in [2usize, 4, 8] {
            let t = run_line(&format!(
                "match {} --beta 1 --eps 0.4 --seed 8 --threads {threads} --pairs",
                file.display()
            ))
            .unwrap();
            assert_eq!(reference, t, "threads = {threads}");
        }
        for p in &cleanup {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn out_of_range_thread_count_is_a_clean_error() {
        let dir = tmpdir();
        let file = dir.join("err.el");
        run_line(&format!("generate path --n 6 --out {}", file.display())).unwrap();
        let err = run_line(&format!(
            "sparsify {} --beta 1 --eps 0.5 --threads 65",
            file.display()
        ))
        .unwrap_err();
        assert!(err.contains("between 1 and 64"), "{err}");
        let err = run_line(&format!(
            "match {} --beta 1 --eps 0.5 --threads 0",
            file.display()
        ))
        .unwrap_err();
        assert!(err.contains("between 1 and 64"), "{err}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn analyze_metrics_json_has_structure_results() {
        let dir = tmpdir();
        let file = dir.join("an.el");
        let met = dir.join("an.json");
        run_line(&format!("generate clique --n 30 --out {}", file.display())).unwrap();
        run_line(&format!(
            "analyze {} --exact-beta --metrics-json {}",
            file.display(),
            met.display()
        ))
        .unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&met).unwrap()).unwrap();
        assert_eq!(doc.get("command").unwrap().as_str(), Some("analyze"));
        let results = doc.get("results").unwrap();
        assert_eq!(results.get("greedy_matching").unwrap().as_u64(), Some(15));
        assert_eq!(results.get("beta_exact").unwrap().as_u64(), Some(1));
        for p in [&file, &met] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn unknown_family_is_an_error() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(build_family("nonsense", 5, &mut rng).is_err());
        assert!(build_family("clique-union:x:3", 5, &mut rng).is_err());
    }

    /// With the counting allocator installed, every metrics document
    /// carries live `alloc.bytes` / `alloc.count` counters.
    #[cfg(feature = "alloc-count")]
    #[test]
    fn metrics_json_surfaces_alloc_counters() {
        let dir = tmpdir();
        let file = dir.join("ac.el");
        let met = dir.join("ac.json");
        run_line(&format!("generate clique --n 60 --out {}", file.display())).unwrap();
        run_line(&format!(
            "match {} --beta 1 --eps 0.4 --seed 3 --metrics-json {}",
            file.display(),
            met.display()
        ))
        .unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&met).unwrap()).unwrap();
        let counters = doc.get("meter").unwrap().get("counters").unwrap();
        for key in [
            sparsimatch_obs::keys::ALLOC_BYTES,
            sparsimatch_obs::keys::ALLOC_COUNT,
        ] {
            assert!(
                counters.get(key).unwrap().as_u64().unwrap() > 0,
                "{key} missing or zero"
            );
        }
        for p in [&file, &met] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn all_families_build() {
        let mut rng = StdRng::seed_from_u64(2);
        for spec in [
            "clique",
            "clique-union:2:8",
            "unit-disk:8",
            "gnp:0.2",
            "line-gnp:0.3",
            "path",
            "cycle",
        ] {
            let g = build_family(spec, 30, &mut rng).unwrap();
            assert!(g.num_vertices() >= 1, "{spec}");
        }
    }
}
