fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match sparsimatch_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", sparsimatch_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = sparsimatch_cli::run(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
