use sparsimatch_cli::CliError;

/// With `--features alloc-count`, count every heap allocation the
/// process makes so `--metrics-json` can report `alloc.*` totals.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: sparsimatch_obs::alloc::CountingAllocator = sparsimatch_obs::alloc::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match sparsimatch_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => fail(CliError::Usage(format!(
            "{e} (run `sparsimatch help` for usage)"
        ))),
    };
    // No StdoutLock here: `serve` writes protocol responses to
    // `io::stdout()` from a worker thread, which would deadlock against
    // a lock held across `run` on this thread.
    let mut stdout = std::io::stdout();
    if let Err(e) = sparsimatch_cli::run(cmd, &mut stdout) {
        fail(e);
    }
}

/// One line on stderr, then the error class's stable exit code.
fn fail(e: CliError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(e.exit_code());
}
