//! Hand-rolled argument parsing (no external dependency needed for four
//! subcommands).

use sparsimatch_core::backend::BackendKind;
use std::path::PathBuf;

/// Top-level usage text.
pub const USAGE: &str = "\
sparsimatch — matching sparsifiers for bounded neighborhood independence

USAGE:
  sparsimatch generate <family> --n <N> [--seed <S>] [--out <FILE>]
      families: clique | clique-union:<layers>:<clique_size> |
                unit-disk:<avg_degree> | gnp:<p> | line-gnp:<p> |
                path | cycle
  sparsimatch analyze <FILE> [--exact-beta] [--metrics-json <FILE>]
  sparsimatch sparsify <FILE> --beta <B> --eps <E> [--scale <S>] [--seed <S>] [--out <FILE>]
                       [--threads <T>] [--metrics-json <FILE>]
  sparsimatch match <FILE> (--eps <E> --beta <B> | --exact | --greedy) [--seed <S>] [--pairs]
                    [--backend delta|edcs] [--edcs-beta <B>] [--lambda <L>]
                    [--threads <T>] [--metrics-json <FILE>]
  sparsimatch distsim <FILE> [--algo approx|baseline|randomized] [--beta <B>] [--eps <E>]
                      [--seed <S>] [--pairs] [--threads <T>] [--metrics-json <FILE>]
                      [--fault-seed <S>] [--drop <P>] [--duplicate <P>] [--reorder <P>]
                      [--crash <P>] [--crash-period <K>] [--fault-horizon <R>] [--retries <K>]
  sparsimatch check --replay <FILE>
  sparsimatch serve [--socket <PATH>] [--backend delta|edcs] [--threads <T>] [--queue-cap <N>]
                    [--max-sessions <C>] [--deadline-ms <D>] [--idle-timeout-ms <I>]
                    [--drain-ms <W>]
  sparsimatch help

Graphs are plain-text edge lists: a `n m` header line followed by one
`u v` line per edge (0-based ids, `#` comments allowed). Omitting --out
writes the graph to stdout.

--threads <T> (1..=64, default 1) sets the worker count for every
pipeline stage — marking, sparsifier CSR extraction, and greedy
matching. Marking draws from deterministic per-vertex RNG streams, so
the output depends only on --seed and is byte-identical for every
thread count. --metrics-json writes the unified work counters (probes,
RNG draws, overlay writes, ...) as JSON; the file is byte-stable for a
fixed seed unless the SPARSIMATCH_METRICS_TIMINGS=1 environment
variable adds wall-clock span timings (including per-stage
stage.mark / stage.extract / stage.match spans).

--backend selects the sparsifier family behind `match` (and the default
each serve session applies when a solve request names none). `delta`
(the default) is the paper's G_Delta pipeline and takes --beta/--eps.
`edcs` builds a (beta, (1 - lambda) * beta)-EDCS instead: it takes only
--eps, with --edcs-beta (default 16, must be >= 2) and --lambda
(default min(2/beta, 1/2), must keep lambda * beta >= 1) tuning the
edge-degree bound. EDCS construction is deterministic and ignores
--seed. See results/RESULTS.md for the measured trade-off between the
two backends.

distsim runs the synchronous message-passing pipeline on one machine
and reports rounds/messages/bits. --threads <T> (1..=64, default 1)
selects the execution engine: 1 runs the historical sequential
simulator, 2 and above runs the sharded engine (contiguous vertex
shards, one round worker each, deterministic batched message router);
the matching, round/message/bit counts, and fault counters are
byte-identical at every thread count. The --drop/--duplicate/--reorder/
--crash probabilities (each in [0, 1], default 0) inject seeded,
reproducible transport faults; --retries <K> arms a per-message
ack/retry layer that re-sends up to K times. Fault counters
(faults.dropped, faults.duplicated, faults.retries,
faults.crashed_rounds) appear in --metrics-json.

check --replay re-executes a counterexample reproducer written by the
`sparsimatch-check` differential fuzzer (results/check/
counterexample-<seed>.json; schema in EXPERIMENTS.md). Exit 0 means the
recorded violation reproduced and the re-rendered document is
byte-identical to the file; exit 8 means the violation is gone or the
bytes drifted.

serve runs a resident engine speaking newline-delimited JSON requests
(load_graph / solve / update / query / metrics / shutdown) with echoed
ids and typed error codes; see DESIGN.md for the wire schema. Without
--socket it serves one session over stdin/stdout; with --socket <PATH>
it accepts up to --max-sessions (default 4) concurrent unix-socket
sessions, each with its own resident graph and scratch arenas.
--queue-cap <N> (default 128) bounds the per-session request queue;
excess requests are answered with an `overloaded` error instead of
buffering without bound. Daemon runtime failures (e.g. the socket path
cannot be bound) exit 9.";

/// The `generate` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateArgs {
    /// Family spec, e.g. `clique-union:2:100`.
    pub family: String,
    /// Number of vertices.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output path (stdout if absent).
    pub out: Option<PathBuf>,
}

/// The `analyze` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeArgs {
    /// Input graph.
    pub input: PathBuf,
    /// Also compute β exactly (exponential-time per neighborhood; fine on
    /// moderate graphs, omitted by default).
    pub exact_beta: bool,
    /// Write the analysis as JSON metrics to this path.
    pub metrics_json: Option<PathBuf>,
}

/// The `sparsify` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsifyArgs {
    /// Input graph.
    pub input: PathBuf,
    /// β bound to size Δ for.
    pub beta: usize,
    /// Target ε.
    pub eps: f64,
    /// Δ scale relative to the paper's proof constant (default 1/20).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output path (stdout if absent).
    pub out: Option<PathBuf>,
    /// Worker threads (1..=64); the sparsifier output is byte-identical
    /// for every accepted value.
    pub threads: usize,
    /// Write work-counter metrics as JSON to this path.
    pub metrics_json: Option<PathBuf>,
}

/// Matching algorithm selector.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchAlgo {
    /// Sparsify-and-match through the `delta` backend (needs β and ε).
    Sparsify {
        /// β bound.
        beta: usize,
        /// Target ε.
        eps: f64,
    },
    /// Sparsify-and-match through the `edcs` backend (needs only ε; the
    /// EDCS parameters have CLI defaults).
    Edcs {
        /// EDCS edge-degree bound β (`--edcs-beta`).
        beta: usize,
        /// Slack λ (`--lambda`; `None` = the β-derived default).
        lambda: Option<f64>,
        /// Target ε for the augmentation stage.
        eps: f64,
    },
    /// Exact blossom.
    Exact,
    /// Greedy maximal.
    Greedy,
}

/// The `match` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchArgs {
    /// Input graph.
    pub input: PathBuf,
    /// Which algorithm.
    pub algo: MatchAlgo,
    /// RNG seed.
    pub seed: u64,
    /// Print the matched pairs, not just the size.
    pub pairs: bool,
    /// Worker threads (1..=64) for every stage of the sparsify-and-match
    /// pipeline (only meaningful with the sparsify algo); the matching is
    /// identical for every accepted value.
    pub threads: usize,
    /// Write work-counter metrics as JSON to this path.
    pub metrics_json: Option<PathBuf>,
}

/// Which distributed pipeline variant `distsim` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistAlgo {
    /// Sparsify → color → match → augment (the paper's pipeline).
    Approx,
    /// Sparsify → deterministic color-scheduled maximal matching.
    Baseline,
    /// Sparsify → randomized (Israeli–Itai) maximal matching.
    Randomized,
}

/// The `distsim` subcommand: run a distributed pipeline on the
/// simulator, optionally under seeded fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct DistsimArgs {
    /// Input graph.
    pub input: PathBuf,
    /// Pipeline variant.
    pub algo: DistAlgo,
    /// β bound for the sparsifier phase.
    pub beta: usize,
    /// Target ε.
    pub eps: f64,
    /// Algorithm RNG seed.
    pub seed: u64,
    /// Print the matched pairs, not just the size.
    pub pairs: bool,
    /// Seed for the fault plan (independent of the algorithm seed).
    pub fault_seed: u64,
    /// Per-message drop probability.
    pub drop: f64,
    /// Per-message duplication probability.
    pub duplicate: f64,
    /// Per-inbox reorder probability.
    pub reorder: f64,
    /// Per-window crash probability.
    pub crash: f64,
    /// Rounds per crash window.
    pub crash_period: u64,
    /// Faults only strike rounds `1..=horizon` (absent = forever).
    pub fault_horizon: Option<u64>,
    /// Ack/retry resend budget (0 = resilience layer off).
    pub retries: u32,
    /// Round-worker threads (1 = historical sequential simulator,
    /// 2..=64 = sharded execution engine; byte-identical output).
    pub threads: usize,
    /// Write work-counter + fault-counter metrics as JSON to this path.
    pub metrics_json: Option<PathBuf>,
}

/// The `check` subcommand: replay a counterexample reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckArgs {
    /// Reproducer file written by `sparsimatch-check`.
    pub replay: PathBuf,
}

/// The `serve` subcommand: run the resident request-loop daemon.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Unix socket path (stdin/stdout session if absent).
    pub socket: Option<PathBuf>,
    /// Backend a solve request falls back to when it names none.
    pub backend: BackendKind,
    /// Worker threads (1..=64) per pipeline solve.
    pub threads: usize,
    /// Bounded per-session request queue capacity.
    pub queue_cap: usize,
    /// Concurrent unix-socket sessions accepted.
    pub max_sessions: usize,
    /// Per-request deadline in milliseconds (0 disables).
    pub deadline_ms: u64,
    /// Idle threshold for LRU session eviction at saturation (0 disables).
    pub idle_timeout_ms: u64,
    /// Bound on the graceful-drain window after daemon shutdown.
    pub drain_ms: u64,
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a graph.
    Generate(GenerateArgs),
    /// Analyze a graph file.
    Analyze(AnalyzeArgs),
    /// Sparsify a graph file.
    Sparsify(SparsifyArgs),
    /// Match on a graph file.
    Match(MatchArgs),
    /// Run the distributed simulator (optionally with fault injection).
    Distsim(DistsimArgs),
    /// Replay a differential-fuzz counterexample reproducer.
    Check(CheckArgs),
    /// Run the resident serve daemon.
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

struct Flags<'a> {
    rest: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Result<Option<&'a str>, String> {
        let mut found = None;
        let mut i = 0;
        while i < self.rest.len() {
            if self.rest[i] == name {
                let val = self
                    .rest
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{name} needs a value"))?;
                if found.is_some() {
                    return Err(format!("{name} given twice"));
                }
                found = Some(val.as_str());
                i += 2;
            } else {
                i += 1;
            }
        }
        Ok(found)
    }

    fn has(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    fn parse_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name)? {
            None => Ok(None),
            Some(s) => s.parse::<T>().map(Some).map_err(|e| format!("{name}: {e}")),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.parse_opt(name)?
            .ok_or_else(|| format!("missing required {name}"))
    }

    fn expect_known(&self, known: &[&str]) -> Result<(), String> {
        for a in self.rest {
            if a.starts_with("--") && !known.contains(&a.as_str()) {
                return Err(format!("unknown flag {a}"));
            }
        }
        Ok(())
    }

    /// `--backend` as a [`BackendKind`], or `None` when absent.
    fn backend(&self) -> Result<Option<BackendKind>, String> {
        match self.get("--backend")? {
            None => Ok(None),
            Some(s) => BackendKind::parse(s)
                .map(Some)
                .ok_or_else(|| format!("--backend must be delta or edcs, got {s:?}")),
        }
    }
}

/// Parse a raw argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let family = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("generate needs a family")?
                .clone();
            let flags = Flags { rest: &args[2..] };
            flags.expect_known(&["--n", "--seed", "--out"])?;
            Ok(Command::Generate(GenerateArgs {
                family,
                n: flags.require("--n")?,
                seed: flags.parse_opt("--seed")?.unwrap_or(0),
                out: flags.get("--out")?.map(PathBuf::from),
            }))
        }
        "analyze" => {
            let input = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("analyze needs an input file")?;
            let flags = Flags { rest: &args[2..] };
            flags.expect_known(&["--exact-beta", "--metrics-json"])?;
            Ok(Command::Analyze(AnalyzeArgs {
                input: PathBuf::from(input),
                exact_beta: flags.has("--exact-beta"),
                metrics_json: flags.get("--metrics-json")?.map(PathBuf::from),
            }))
        }
        "sparsify" => {
            let input = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("sparsify needs an input file")?;
            let flags = Flags { rest: &args[2..] };
            flags.expect_known(&[
                "--beta",
                "--eps",
                "--scale",
                "--seed",
                "--out",
                "--threads",
                "--metrics-json",
            ])?;
            Ok(Command::Sparsify(SparsifyArgs {
                input: PathBuf::from(input),
                beta: flags.require("--beta")?,
                eps: flags.require("--eps")?,
                scale: flags.parse_opt("--scale")?.unwrap_or(1.0 / 20.0),
                seed: flags.parse_opt("--seed")?.unwrap_or(0),
                out: flags.get("--out")?.map(PathBuf::from),
                threads: flags.parse_opt("--threads")?.unwrap_or(1),
                metrics_json: flags.get("--metrics-json")?.map(PathBuf::from),
            }))
        }
        "match" => {
            let input = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("match needs an input file")?;
            let flags = Flags { rest: &args[2..] };
            flags.expect_known(&[
                "--exact",
                "--greedy",
                "--backend",
                "--beta",
                "--eps",
                "--edcs-beta",
                "--lambda",
                "--seed",
                "--pairs",
                "--threads",
                "--metrics-json",
            ])?;
            let backend = flags.backend()?;
            if backend.is_some() && (flags.has("--exact") || flags.has("--greedy")) {
                return Err(
                    "--backend selects a sparsifier; it conflicts with --exact/--greedy".into(),
                );
            }
            let algo = if flags.has("--exact") {
                MatchAlgo::Exact
            } else if flags.has("--greedy") {
                MatchAlgo::Greedy
            } else {
                match backend.unwrap_or(BackendKind::Delta) {
                    BackendKind::Delta => {
                        if flags.has("--edcs-beta") || flags.has("--lambda") {
                            return Err("--edcs-beta/--lambda require --backend edcs".to_string());
                        }
                        MatchAlgo::Sparsify {
                            beta: flags.require("--beta")?,
                            eps: flags.require("--eps")?,
                        }
                    }
                    BackendKind::Edcs => {
                        if flags.has("--beta") {
                            return Err(
                                "--beta is the delta backend's bound; with --backend edcs \
                                 use --edcs-beta"
                                    .to_string(),
                            );
                        }
                        MatchAlgo::Edcs {
                            beta: flags.parse_opt("--edcs-beta")?.unwrap_or(16),
                            lambda: flags.parse_opt("--lambda")?,
                            eps: flags.require("--eps")?,
                        }
                    }
                }
            };
            Ok(Command::Match(MatchArgs {
                input: PathBuf::from(input),
                algo,
                seed: flags.parse_opt("--seed")?.unwrap_or(0),
                pairs: flags.has("--pairs"),
                threads: flags.parse_opt("--threads")?.unwrap_or(1),
                metrics_json: flags.get("--metrics-json")?.map(PathBuf::from),
            }))
        }
        "distsim" => {
            let input = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("distsim needs an input file")?;
            let flags = Flags { rest: &args[2..] };
            flags.expect_known(&[
                "--algo",
                "--beta",
                "--eps",
                "--seed",
                "--pairs",
                "--fault-seed",
                "--drop",
                "--duplicate",
                "--reorder",
                "--crash",
                "--crash-period",
                "--fault-horizon",
                "--retries",
                "--threads",
                "--metrics-json",
            ])?;
            let algo = match flags.get("--algo")?.unwrap_or("approx") {
                "approx" => DistAlgo::Approx,
                "baseline" => DistAlgo::Baseline,
                "randomized" => DistAlgo::Randomized,
                other => {
                    return Err(format!(
                        "--algo must be approx, baseline, or randomized, got {other:?}"
                    ))
                }
            };
            Ok(Command::Distsim(DistsimArgs {
                input: PathBuf::from(input),
                algo,
                beta: flags.parse_opt("--beta")?.unwrap_or(2),
                eps: flags.parse_opt("--eps")?.unwrap_or(0.5),
                seed: flags.parse_opt("--seed")?.unwrap_or(0),
                pairs: flags.has("--pairs"),
                fault_seed: flags.parse_opt("--fault-seed")?.unwrap_or(0),
                drop: flags.parse_opt("--drop")?.unwrap_or(0.0),
                duplicate: flags.parse_opt("--duplicate")?.unwrap_or(0.0),
                reorder: flags.parse_opt("--reorder")?.unwrap_or(0.0),
                crash: flags.parse_opt("--crash")?.unwrap_or(0.0),
                crash_period: flags.parse_opt("--crash-period")?.unwrap_or(8),
                fault_horizon: flags.parse_opt("--fault-horizon")?,
                retries: flags.parse_opt("--retries")?.unwrap_or(0),
                threads: flags.parse_opt("--threads")?.unwrap_or(1),
                metrics_json: flags.get("--metrics-json")?.map(PathBuf::from),
            }))
        }
        "check" => {
            let flags = Flags { rest: &args[1..] };
            flags.expect_known(&["--replay"])?;
            let replay = flags
                .get("--replay")?
                .ok_or("check needs --replay <FILE>")?;
            Ok(Command::Check(CheckArgs {
                replay: PathBuf::from(replay),
            }))
        }
        "serve" => {
            let flags = Flags { rest: &args[1..] };
            flags.expect_known(&[
                "--socket",
                "--backend",
                "--threads",
                "--queue-cap",
                "--max-sessions",
                "--deadline-ms",
                "--idle-timeout-ms",
                "--drain-ms",
            ])?;
            Ok(Command::Serve(ServeArgs {
                socket: flags.get("--socket")?.map(PathBuf::from),
                backend: flags.backend()?.unwrap_or(BackendKind::Delta),
                threads: flags.parse_opt("--threads")?.unwrap_or(1),
                queue_cap: flags.parse_opt("--queue-cap")?.unwrap_or(128),
                max_sessions: flags.parse_opt("--max-sessions")?.unwrap_or(4),
                deadline_ms: flags.parse_opt("--deadline-ms")?.unwrap_or(0),
                idle_timeout_ms: flags.parse_opt("--idle-timeout-ms")?.unwrap_or(0),
                drain_ms: flags.parse_opt("--drain-ms")?.unwrap_or(2_000),
            }))
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&args(
            "generate clique-union:2:50 --n 200 --seed 7 --out g.el",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate(GenerateArgs {
                family: "clique-union:2:50".into(),
                n: 200,
                seed: 7,
                out: Some(PathBuf::from("g.el")),
            })
        );
    }

    #[test]
    fn parses_match_variants() {
        assert!(matches!(
            parse(&args("match g.el --exact")).unwrap(),
            Command::Match(MatchArgs {
                algo: MatchAlgo::Exact,
                ..
            })
        ));
        assert!(matches!(
            parse(&args("match g.el --greedy --pairs")).unwrap(),
            Command::Match(MatchArgs {
                algo: MatchAlgo::Greedy,
                pairs: true,
                ..
            })
        ));
        let sp = parse(&args("match g.el --beta 2 --eps 0.3")).unwrap();
        assert!(matches!(
            sp,
            Command::Match(MatchArgs {
                algo: MatchAlgo::Sparsify { beta: 2, .. },
                ..
            })
        ));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(&args("generate --n 10")).is_err());
        assert!(parse(&args("generate clique")).is_err());
        assert!(parse(&args("sparsify g.el --beta 2")).is_err());
        assert!(parse(&args("match g.el")).is_err(), "needs algo flags");
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("generate clique --n abc")).is_err());
        assert!(parse(&args("generate clique --n 5 --n 6")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn defaults() {
        let Command::Sparsify(s) = parse(&args("sparsify g.el --beta 3 --eps 0.5")).unwrap() else {
            panic!()
        };
        assert_eq!(s.seed, 0);
        assert!((s.scale - 0.05).abs() < 1e-12);
        assert_eq!(s.out, None);
        assert_eq!(s.threads, 1);
        assert_eq!(s.metrics_json, None);
    }

    #[test]
    fn parses_threads_and_metrics_json() {
        let Command::Sparsify(s) = parse(&args(
            "sparsify g.el --beta 3 --eps 0.5 --threads 4 --metrics-json m.json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.threads, 4);
        assert_eq!(s.metrics_json, Some(PathBuf::from("m.json")));
        let Command::Match(m) = parse(&args(
            "match g.el --exact --threads 2 --metrics-json out.json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(m.threads, 2);
        assert_eq!(m.metrics_json, Some(PathBuf::from("out.json")));
        let Command::Analyze(a) = parse(&args("analyze g.el --metrics-json a.json")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.metrics_json, Some(PathBuf::from("a.json")));
        assert!(parse(&args("sparsify g.el --beta 3 --eps 0.5 --threads wat")).is_err());
    }

    #[test]
    fn parses_distsim() {
        let Command::Distsim(d) = parse(&args(
            "distsim g.el --algo baseline --beta 3 --eps 0.4 --seed 5 \
             --fault-seed 9 --drop 0.25 --duplicate 0.1 --reorder 0.5 \
             --crash 0.05 --crash-period 4 --fault-horizon 32 --retries 2 --threads 4",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(d.algo, DistAlgo::Baseline);
        assert_eq!(d.beta, 3);
        assert_eq!(d.fault_seed, 9);
        assert!((d.drop - 0.25).abs() < 1e-12);
        assert_eq!(d.crash_period, 4);
        assert_eq!(d.fault_horizon, Some(32));
        assert_eq!(d.retries, 2);
        assert_eq!(d.threads, 4);

        // Defaults: approx variant, zero-fault plan, resilience off,
        // sequential engine.
        let Command::Distsim(d) = parse(&args("distsim g.el")).unwrap() else {
            panic!()
        };
        assert_eq!(d.algo, DistAlgo::Approx);
        assert_eq!(d.drop, 0.0);
        assert_eq!(d.fault_horizon, None);
        assert_eq!(d.retries, 0);
        assert_eq!(d.threads, 1);

        assert!(parse(&args("distsim g.el --algo quantum")).is_err());
        assert!(parse(&args("distsim")).is_err());
        assert!(parse(&args("distsim g.el --drop zero")).is_err());
    }

    #[test]
    fn parses_check() {
        assert_eq!(
            parse(&args("check --replay results/check/counterexample-7.json")).unwrap(),
            Command::Check(CheckArgs {
                replay: PathBuf::from("results/check/counterexample-7.json"),
            })
        );
        assert!(parse(&args("check")).is_err(), "--replay is required");
        assert!(parse(&args("check --replay")).is_err());
        assert!(parse(&args("check --replay f.json --bogus 1")).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve(ServeArgs {
                socket: None,
                backend: BackendKind::Delta,
                threads: 1,
                queue_cap: 128,
                max_sessions: 4,
                deadline_ms: 0,
                idle_timeout_ms: 0,
                drain_ms: 2_000,
            })
        );
        assert_eq!(
            parse(&args(
                "serve --socket /tmp/s.sock --backend edcs --threads 2 --queue-cap 16 \
                 --max-sessions 8 --deadline-ms 250 --idle-timeout-ms 5000 --drain-ms 750"
            ))
            .unwrap(),
            Command::Serve(ServeArgs {
                socket: Some(PathBuf::from("/tmp/s.sock")),
                backend: BackendKind::Edcs,
                threads: 2,
                queue_cap: 16,
                max_sessions: 8,
                deadline_ms: 250,
                idle_timeout_ms: 5000,
                drain_ms: 750,
            })
        );
        assert!(parse(&args("serve --socket")).is_err());
        assert!(parse(&args("serve --threads wat")).is_err());
        assert!(parse(&args("serve --port 80")).is_err(), "unknown flag");
        assert!(parse(&args("serve --backend magic")).is_err());
    }

    #[test]
    fn parses_match_backend_selection() {
        // EDCS with everything explicit.
        let Command::Match(m) = parse(&args(
            "match g.el --backend edcs --edcs-beta 8 --lambda 0.25 --eps 0.3",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            m.algo,
            MatchAlgo::Edcs {
                beta: 8,
                lambda: Some(0.25),
                eps: 0.3,
            }
        );
        // EDCS defaults: beta 16, lambda derived at the command layer.
        let Command::Match(m) = parse(&args("match g.el --backend edcs --eps 0.3")).unwrap() else {
            panic!()
        };
        assert_eq!(
            m.algo,
            MatchAlgo::Edcs {
                beta: 16,
                lambda: None,
                eps: 0.3,
            }
        );
        // An explicit `--backend delta` is the existing sparsify algo.
        let Command::Match(m) =
            parse(&args("match g.el --backend delta --beta 2 --eps 0.3")).unwrap()
        else {
            panic!()
        };
        assert_eq!(m.algo, MatchAlgo::Sparsify { beta: 2, eps: 0.3 });
        // Conflicts and typos are hard errors, not silent fallbacks.
        assert!(parse(&args("match g.el --backend warp --eps 0.3")).is_err());
        assert!(parse(&args("match g.el --backend edcs --beta 2 --eps 0.3")).is_err());
        assert!(parse(&args("match g.el --edcs-beta 8 --beta 2 --eps 0.3")).is_err());
        assert!(parse(&args(
            "match g.el --backend delta --lambda 0.1 --beta 2 --eps 0.3"
        ))
        .is_err());
        assert!(parse(&args("match g.el --backend edcs --exact")).is_err());
    }

    #[test]
    fn rejects_unknown_and_dangling_flags() {
        // A typo'd flag is an error, not silently ignored.
        let e = parse(&args("sparsify g.el --beta 2 --eps 0.3 --thread 2")).unwrap_err();
        assert!(e.contains("unknown flag --thread"), "{e}");
        // A flag cannot swallow the next flag as its value.
        let e = parse(&args("match g.el --exact --metrics-json --pairs")).unwrap_err();
        assert!(e.contains("--metrics-json needs a value"), "{e}");
    }
}
