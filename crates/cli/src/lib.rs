#![warn(missing_docs)]

//! Library backing the `sparsimatch` command-line tool.
//!
//! All behavior lives here (argument parsing, command execution against
//! generic writers) so it is unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;
pub mod error;

pub use args::{parse, Command};
pub use error::CliError;

/// Mirror the binary's counting allocator in the library's own test
/// harness, so `--features alloc-count` unit tests observe live
/// counters the way the `sparsimatch` binary does.
#[cfg(all(test, feature = "alloc-count"))]
#[global_allocator]
static TEST_ALLOC: sparsimatch_obs::alloc::CountingAllocator =
    sparsimatch_obs::alloc::CountingAllocator;

/// Run a parsed command, writing human output to `out`. Each error class
/// carries its own stable exit code ([`CliError::exit_code`]).
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match cmd {
        Command::Generate(g) => commands::generate(g, out),
        Command::Analyze(a) => commands::analyze(a, out),
        Command::Sparsify(s) => commands::sparsify(s, out),
        Command::Match(m) => commands::do_match(m, out),
        Command::Distsim(d) => commands::distsim(d, out),
        Command::Check(c) => commands::check(c, out),
        Command::Serve(s) => commands::serve(s, out),
        Command::Help => {
            writeln!(out, "{}", args::USAGE)?;
            Ok(())
        }
    }
}
