//! Typed CLI errors with stable process exit codes.
//!
//! Every failure class maps to a distinct non-zero exit code so scripts
//! can branch on `$?` without parsing stderr:
//!
//! | code | class                                                  |
//! |------|--------------------------------------------------------|
//! | 1    | other / internal                                       |
//! | 2    | usage (bad subcommand, unknown flag, missing value)    |
//! | 3    | I/O (missing file, unreadable path, write failure)     |
//! | 4    | malformed input (bad edge list, self-loop, duplicate)  |
//! | 5    | input too large (header exceeds the hard caps)         |
//! | 6    | thread count out of range                              |
//! | 7    | invalid parameter value (bad probability, rate, ...)   |
//! | 8    | check replay failed (violation gone or bytes drifted)  |
//! | 9    | serve daemon runtime failure (bind/accept error)       |
//!
//! The codes are part of the CLI contract and pinned by
//! `tests/bin_smoke.rs`; change them only with a changelog entry.

use sparsimatch_core::sparsifier::ThreadCountError;
use sparsimatch_graph::io::ReadError;

/// A CLI failure, classified for exit-code mapping. The payload is the
/// single-line message printed to stderr.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Command line could not be understood (exit 2).
    Usage(String),
    /// Filesystem / stream failure (exit 3).
    Io(String),
    /// Input file parsed but violates the format contract (exit 4).
    MalformedInput(String),
    /// Input declares sizes beyond the hard caps (exit 5).
    InputTooLarge(String),
    /// Worker thread count outside the accepted range (exit 6).
    Threads(String),
    /// A flag value is syntactically fine but semantically invalid,
    /// e.g. a probability outside `[0, 1]` (exit 7).
    InvalidParam(String),
    /// A counterexample replay did not reproduce: the recorded violation
    /// no longer fires, or the re-rendered reproducer is not
    /// byte-identical to the input file (exit 8).
    CheckFailed(String),
    /// The serve daemon could not start or keep running, e.g. the
    /// socket path cannot be bound (exit 9).
    Serve(String),
    /// Anything else (exit 1).
    Other(String),
}

impl CliError {
    /// The stable process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::MalformedInput(_) => 4,
            CliError::InputTooLarge(_) => 5,
            CliError::Threads(_) => 6,
            CliError::InvalidParam(_) => 7,
            CliError::CheckFailed(_) => 8,
            CliError::Serve(_) => 9,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::MalformedInput(m)
            | CliError::InputTooLarge(m)
            | CliError::Threads(m)
            | CliError::InvalidParam(m)
            | CliError::CheckFailed(m)
            | CliError::Serve(m)
            | CliError::Other(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Stderr contract: exactly one line per failure. Collapse any
        // embedded newlines a wrapped message might carry.
        for (i, part) in self.message().lines().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CliError {}

impl From<ReadError> for CliError {
    fn from(e: ReadError) -> Self {
        match &e {
            ReadError::Io(_) => CliError::Io(e.to_string()),
            ReadError::TooLarge { .. } => CliError::InputTooLarge(e.to_string()),
            ReadError::SelfLoop { .. }
            | ReadError::DuplicateEdge { .. }
            | ReadError::Parse { .. }
            | ReadError::TruncatedBetweenPasses { .. } => CliError::MalformedInput(e.to_string()),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

impl From<ThreadCountError> for CliError {
    fn from(e: ThreadCountError) -> Self {
        CliError::Threads(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let all = [
            CliError::Other("x".into()),
            CliError::Usage("x".into()),
            CliError::Io("x".into()),
            CliError::MalformedInput("x".into()),
            CliError::InputTooLarge("x".into()),
            CliError::Threads("x".into()),
            CliError::InvalidParam("x".into()),
            CliError::CheckFailed("x".into()),
            CliError::Serve("x".into()),
        ];
        let codes: Vec<i32> = all.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn read_errors_classify_by_variant() {
        let too_large = ReadError::TooLarge {
            line: 1,
            message: "n".into(),
        };
        assert_eq!(CliError::from(too_large).exit_code(), 5);
        assert_eq!(
            CliError::from(ReadError::SelfLoop { line: 2 }).exit_code(),
            4
        );
        assert_eq!(
            CliError::from(ReadError::DuplicateEdge { line: 2 }).exit_code(),
            4
        );
        let io = ReadError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(CliError::from(io).exit_code(), 3);
    }

    #[test]
    fn display_is_single_line() {
        let e = CliError::Other("first\nsecond".into());
        let rendered = e.to_string();
        assert!(!rendered.contains('\n'), "{rendered:?}");
        assert_eq!(rendered, "first; second");
    }
}
