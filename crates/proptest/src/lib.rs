//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment cannot reach crates.io, so the workspace
//! path-replaces the `proptest` dev-dependency with this crate. It keeps
//! the property-test *sources* unchanged while swapping the engine for a
//! small deterministic one:
//!
//! - each `#[test]` inside [`proptest!`] runs `cases` times (default 256,
//!   overridable with `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! - inputs are drawn from a [`Strategy`] using a per-(test, case) seeded
//!   [`rand::rngs::StdRng`], so failures are reproducible by rerunning the
//!   same test binary,
//! - `prop_assert!`/`prop_assert_eq!` short-circuit the case with an error
//!   that the runner reports alongside the case number,
//! - there is **no shrinking**: a failing case reports the case index and
//!   message only.

use std::fmt::Debug;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Error carried out of a failing test case body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed assertion/requirement with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result type of a test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only the knobs this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces one value per case from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// A union of the given non-empty strategy list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Full-domain strategies for primitive types (backs [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $m:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.$m() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                     u64 => next_u64, usize => next_u64, i32 => next_u32,
                     i64 => next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_bool(0.5)
    }
}

/// Strategy over the full domain of `T`.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;

    /// Vector length specification: an exact length or a half-open range
    /// (mirrors the `Into<SizeRange>` forms this workspace uses).
    #[derive(Clone, Debug)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let r = &self.len.0;
            let len = if r.end <= r.start + 1 {
                r.start
            } else {
                rng.random_range(r.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of values from `elem` with length in `len`
    /// (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

/// Derive a per-(test, case) RNG seed: FNV-1a over the test name mixed
/// with the case index, so every test gets an independent deterministic
/// stream.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run one property test: `cases` iterations of `body` on fresh inputs.
pub fn run<F: FnMut(&mut TestRng) -> TestCaseResult>(
    test_name: &str,
    config: &ProptestConfig,
    mut body: F,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(case_seed(test_name, case));
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!(
                "proptest case {case}/{total} of `{test_name}` failed: {msg}",
                total = config.cases
            );
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq: left = {:?}, right = {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq: left = {:?}, right = {:?}: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "prop_assert_ne: both sides = {:?}", l);
    }};
}

/// Skip the rest of the case unless `cond` holds (counts as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test entry point; mirrors `proptest::proptest!` for the
/// forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                (move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 0u32..5), c in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            let _ = c;
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(prop_oneof![0usize..3, Just(9usize)], 0..20)) {
            prop_assert!(v.len() < 20);
            for x in v {
                prop_assert!(x < 3 || x == 9, "unexpected {}", x);
            }
        }

        #[test]
        fn map_works(v in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
            if v == 0 {
                return Ok(());
            }
            prop_assert!(v >= 1);
        }
    }

    #[test]
    fn seeds_differ_across_tests_and_cases() {
        assert_ne!(super::case_seed("a", 0), super::case_seed("b", 0));
        assert_ne!(super::case_seed("a", 0), super::case_seed("a", 1));
    }
}
