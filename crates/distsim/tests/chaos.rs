//! Chaos suite: every distributed algorithm under adversarial fault plans.
//!
//! The contract being pinned (ISSUE 3 / DESIGN.md §7): under *any* fault
//! schedule the algorithms terminate and return structurally sound objects
//! — matchings valid for the input graph, colorings inside their declared
//! palette — with identical results for identical `(seed, plan)` pairs.
//! Under a zero-fault plan the faulty transport is byte-identical to the
//! perfect [`Network`]. Under a permanent-crash plan (live↔live delivery
//! is perfect), the stronger promises return on the surviving subgraph:
//! proper colorings and maximal matchings among live nodes.
//!
//! Three standing plan shapes, as the acceptance criteria require:
//! drop-only, drop+dup+reorder, and a crash schedule.

use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::algorithms::coloring::{linial_coloring, validate_coloring, Coloring};
use sparsimatch_distsim::algorithms::israeli_itai::israeli_itai_matching;
use sparsimatch_distsim::algorithms::matching::{bounded_degree_matching, color_scheduled_mm};
use sparsimatch_distsim::algorithms::solomon::distributed_solomon;
use sparsimatch_distsim::algorithms::sparsify::distributed_sparsifier;
use sparsimatch_distsim::{
    FaultPlan, FaultRates, FaultStats, FaultyNetwork, Network, ResilienceParams, ShardedNetwork,
};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::generators::{clique, cycle, gnp, path};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::Matching;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drop-only: 30% of messages vanish during the first 40 rounds.
fn drop_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultRates {
            drop: 0.3,
            ..Default::default()
        },
    )
    .with_horizon(40)
}

/// The kitchen sink: drops, duplicates, and reorders together.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultRates {
            drop: 0.25,
            duplicate: 0.25,
            reorder: 0.5,
            ..Default::default()
        },
    )
    .with_horizon(60)
}

/// Crash schedule: nodes flap in 4-round windows for the first 48 rounds.
fn crash_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultRates {
            crash: 0.15,
            ..Default::default()
        },
    )
    .with_crash_period(4)
    .with_horizon(48)
}

fn standing_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop", drop_plan(seed)),
        ("mixed", mixed_plan(seed)),
        ("crash", crash_plan(seed)),
    ]
}

fn pairs_of(m: &Matching) -> Vec<(u32, u32)> {
    m.pairs().map(|(u, v)| (u.0, v.0)).collect()
}

fn edge_list(g: &CsrGraph) -> Vec<(u32, u32)> {
    g.edges().map(|(_, u, v)| (u.0, v.0)).collect()
}

fn test_graph(seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gnp(90, 0.06, &mut rng)
}

#[test]
fn israeli_itai_stays_valid_and_deterministic_under_every_plan() {
    let g = test_graph(1);
    for (name, plan) in standing_plans(17) {
        let run = |alg_seed: u64| {
            let mut net = FaultyNetwork::new(&g, plan.clone());
            let (m, iters) = israeli_itai_matching(&mut net, alg_seed);
            (pairs_of(&m), iters, net.metrics(), net.fault_stats())
        };
        let (p1, it1, me1, f1) = run(5);
        let (p2, it2, me2, f2) = run(5);
        assert_eq!(p1, p2, "{name}: same (seed, plan) must replay exactly");
        assert_eq!((it1, me1, f1), (it2, me2, f2), "{name}: metrics replay");
        // Validity re-checked from the raw pairs against the graph.
        let mut m = Matching::new(g.num_vertices());
        for &(u, v) in &p1 {
            assert!(
                m.add_pair(VertexId(u), VertexId(v)),
                "{name}: pair ({u},{v}) conflicts — matching invalid"
            );
        }
        assert!(m.is_valid_for(&g), "{name}");
        // A different algorithm seed under the same plan should not crash
        // either (smoke the decision-space a little wider).
        let (p3, ..) = run(6);
        let mut m3 = Matching::new(g.num_vertices());
        for &(u, v) in &p3 {
            assert!(m3.add_pair(VertexId(u), VertexId(v)), "{name}");
        }
        assert!(m3.is_valid_for(&g), "{name}");
    }
}

#[test]
fn coloring_stays_in_palette_and_deterministic_under_every_plan() {
    let g = test_graph(2);
    let target = g.max_degree() as u64 + 1;
    for (name, plan) in standing_plans(23) {
        let run = || {
            let mut net = FaultyNetwork::new(&g, plan.clone());
            let c = linial_coloring(&mut net, target.max(2));
            (c, net.metrics())
        };
        let (c1, me1) = run();
        let (c2, me2) = run();
        assert_eq!(c1.colors, c2.colors, "{name}: coloring must replay");
        assert_eq!(me1, me2, "{name}");
        // Palette discipline survives arbitrary faults (properness does
        // not — it needs lossless or live↔live-perfect delivery).
        assert!(
            c1.colors.iter().all(|&x| x < c1.num_colors),
            "{name}: color outside declared palette"
        );
        assert_eq!(c1.colors.len(), g.num_vertices(), "{name}");
    }
}

#[test]
fn color_scheduled_mm_stays_valid_under_every_plan() {
    let g = test_graph(3);
    let target = (g.max_degree() as u64 + 1).max(2);
    for (name, plan) in standing_plans(29) {
        let run = || {
            let mut net = FaultyNetwork::new(&g, plan.clone());
            let coloring = linial_coloring(&mut net, target);
            let m = color_scheduled_mm(&mut net, &coloring);
            (pairs_of(&m), net.metrics(), net.fault_stats())
        };
        let (p1, me1, f1) = run();
        let (p2, me2, f2) = run();
        assert_eq!(p1, p2, "{name}");
        assert_eq!((me1, f1), (me2, f2), "{name}");
        let mut m = Matching::new(g.num_vertices());
        for &(u, v) in &p1 {
            assert!(m.add_pair(VertexId(u), VertexId(v)), "{name}");
        }
        assert!(m.is_valid_for(&g), "{name}");
    }
}

#[test]
fn sparsifiers_shrink_but_never_invent_edges_under_faults() {
    let g = clique(60);
    let params = SparsifierParams::with_delta(1, 0.5, 4);
    // Fault-free reference runs.
    let mut net0 = Network::new(&g);
    let full_sparsifier = edge_list(&distributed_sparsifier(&mut net0, &params, 9));
    let mut net0b = Network::new(&g);
    let full_solomon = edge_list(&distributed_solomon(&mut net0b, 5));

    for (name, plan) in standing_plans(31) {
        let mut net = FaultyNetwork::new(&g, plan.clone());
        let s = distributed_sparsifier(&mut net, &params, 9);
        // Dropped marks only remove edges; duplicated marks are idempotent
        // in the keep-set union. So faulty ⊆ fault-free, always.
        for e in edge_list(&s) {
            assert!(
                full_sparsifier.contains(&e),
                "{name}: sparsifier invented edge {e:?}"
            );
        }
        // Determinism.
        let mut net2 = FaultyNetwork::new(&g, plan.clone());
        let s2 = distributed_sparsifier(&mut net2, &params, 9);
        assert_eq!(edge_list(&s), edge_list(&s2), "{name}");

        let mut net3 = FaultyNetwork::new(&g, plan.clone());
        let sol = distributed_solomon(&mut net3, 5);
        assert!(sol.max_degree() <= 5, "{name}: degree cap must hold");
        for e in edge_list(&sol) {
            assert!(
                full_solomon.contains(&e),
                "{name}: solomon invented edge {e:?}"
            );
        }
    }
}

#[test]
fn bounded_degree_matching_stays_valid_under_every_plan() {
    // Low-degree input keeps the augmentation balls (and the runtime)
    // small while still exercising gather + conflict resolution.
    let g = cycle(48);
    for (name, plan) in standing_plans(37) {
        let run = || {
            let mut net = FaultyNetwork::new(&g, plan.clone());
            let (m, _) = bounded_degree_matching(&mut net, 0.34);
            (pairs_of(&m), net.metrics(), net.fault_stats())
        };
        let (p1, me1, f1) = run();
        let (p2, me2, f2) = run();
        assert_eq!(p1, p2, "{name}");
        assert_eq!((me1, f1), (me2, f2), "{name}");
        let mut m = Matching::new(g.num_vertices());
        for &(u, v) in &p1 {
            assert!(m.add_pair(VertexId(u), VertexId(v)), "{name}");
        }
        assert!(m.is_valid_for(&g), "{name}");
    }
}

#[test]
fn permanent_crashes_preserve_guarantees_on_survivors() {
    // Under a permanent-crash-only plan, live↔live delivery is perfect, so
    // the strong promises hold restricted to survivors: the coloring is
    // proper on live-live edges and the matchings are maximal in the
    // live-induced subgraph.
    let g = test_graph(4);
    let dead: Vec<u32> = vec![3, 11, 26, 40, 77];
    let plan = FaultPlan::none().with_crashed_nodes(dead.iter().copied());
    let is_dead = |v: u32| dead.binary_search(&v).is_ok();

    let mut net = FaultyNetwork::new(&g, plan.clone());
    let (m, _) = israeli_itai_matching(&mut net, 13);
    assert!(m.is_valid_for(&g));
    for &d in &dead {
        assert!(!m.is_matched(VertexId(d)), "crashed node {d} matched");
    }
    for (_, u, v) in g.edges() {
        if is_dead(u.0) || is_dead(v.0) {
            continue;
        }
        assert!(
            m.is_matched(u) || m.is_matched(v),
            "live-live edge ({},{}) unmatched on both ends",
            u.0,
            v.0
        );
    }

    // Deterministic schedule: coloring proper on survivors, then the
    // color-scheduled matcher maximal on survivors.
    let mut net2 = FaultyNetwork::new(&g, plan.clone());
    let target = (g.max_degree() as u64 + 1).max(2);
    let coloring: Coloring = linial_coloring(&mut net2, target);
    for (_, u, v) in g.edges() {
        if is_dead(u.0) || is_dead(v.0) {
            continue;
        }
        assert_ne!(
            coloring.colors[u.index()],
            coloring.colors[v.index()],
            "live-live edge ({},{}) monochromatic",
            u.0,
            v.0
        );
    }
    let mm = color_scheduled_mm(&mut net2, &coloring);
    assert!(mm.is_valid_for(&g));
    for (_, u, v) in g.edges() {
        if is_dead(u.0) || is_dead(v.0) {
            continue;
        }
        assert!(mm.is_matched(u) || mm.is_matched(v));
    }
    // Crash accounting saw every dead node in every physical round.
    let rounds = net2.metrics().rounds;
    assert_eq!(
        net2.fault_stats().crashed_rounds,
        rounds * dead.len() as u64
    );
}

#[test]
fn zero_fault_transport_is_byte_identical_on_full_algorithms() {
    // The whole deterministic stack — coloring, MM, augmentation — run on
    // Network and on FaultyNetwork(none) must agree in outputs AND in
    // every accounted quantity (satellite: congest accounting unchanged).
    let g = test_graph(5);
    let mut perfect = Network::new(&g);
    let (m_p, stats_p) = bounded_degree_matching(&mut perfect, 0.34);

    let mut faulty = FaultyNetwork::new(&g, FaultPlan::none());
    let (m_f, stats_f) = bounded_degree_matching(&mut faulty, 0.34);

    assert_eq!(pairs_of(&m_p), pairs_of(&m_f));
    assert_eq!(
        (stats_p.blocks, stats_p.flips),
        (stats_f.blocks, stats_f.flips)
    );
    assert_eq!(perfect.metrics(), faulty.metrics());
    assert_eq!(faulty.fault_stats(), FaultStats::default());
    for c in [1u64, 8, 64] {
        assert_eq!(
            perfect.metrics().congest_compliant(g.num_vertices(), c),
            faulty.metrics().congest_compliant(g.num_vertices(), c),
            "congest verdict must not depend on the transport (c = {c})"
        );
    }

    // Randomized algorithm too: per-node RNG streams are independent of
    // the transport, so the zero-fault runs coincide exactly.
    let g2 = path(33);
    let mut perfect2 = Network::new(&g2);
    let (m_p2, it_p) = israeli_itai_matching(&mut perfect2, 99);
    let mut faulty2 = FaultyNetwork::new(&g2, FaultPlan::none());
    let (m_f2, it_f) = israeli_itai_matching(&mut faulty2, 99);
    assert_eq!(pairs_of(&m_p2), pairs_of(&m_f2));
    assert_eq!(it_p, it_f);
    assert_eq!(perfect2.metrics(), faulty2.metrics());
}

type SeqAlgo = Box<dyn Fn(&mut FaultyNetwork<'_>) -> Vec<(u32, u32)>>;
type ShardAlgo = Box<dyn Fn(&mut ShardedNetwork<'_>) -> Vec<(u32, u32)>>;

/// Every algorithm, under every standing fault plan, on the sharded
/// engine at t ∈ {2, 4}: the replay fingerprint — outputs, metrics, and
/// fault counters — must equal the sequential [`FaultyNetwork`] run.
#[test]
fn sharded_engine_replays_every_algorithm_under_every_standing_plan() {
    let g = test_graph(6);
    let target = (g.max_degree() as u64 + 1).max(2);
    let params = SparsifierParams::with_delta(1, 0.5, 4);

    for (name, plan) in standing_plans(41) {
        // Sequential references, one per algorithm.
        let seq = |f: &dyn Fn(&mut FaultyNetwork<'_>) -> Vec<(u32, u32)>| {
            let mut net = FaultyNetwork::new(&g, plan.clone());
            let out = f(&mut net);
            (out, net.metrics(), net.fault_stats())
        };
        let shard = |threads: usize, f: &dyn Fn(&mut ShardedNetwork<'_>) -> Vec<(u32, u32)>| {
            let mut net =
                ShardedNetwork::with_faults(&g, threads, plan.clone(), ResilienceParams::off());
            let out = f(&mut net);
            (out, net.metrics(), net.fault_stats())
        };

        let algorithms: Vec<(&str, SeqAlgo, ShardAlgo)> = vec![
            (
                "israeli-itai",
                Box::new(|net: &mut FaultyNetwork<'_>| pairs_of(&israeli_itai_matching(net, 7).0)),
                Box::new(|net: &mut ShardedNetwork<'_>| pairs_of(&israeli_itai_matching(net, 7).0)),
            ),
            (
                "linial-coloring",
                Box::new(move |net: &mut FaultyNetwork<'_>| {
                    let c = linial_coloring(net, target);
                    c.colors.iter().map(|&x| (x as u32, 0)).collect()
                }),
                Box::new(move |net: &mut ShardedNetwork<'_>| {
                    let c = linial_coloring(net, target);
                    c.colors.iter().map(|&x| (x as u32, 0)).collect()
                }),
            ),
            (
                "color-scheduled-mm",
                Box::new(move |net: &mut FaultyNetwork<'_>| {
                    let c = linial_coloring(net, target);
                    pairs_of(&color_scheduled_mm(net, &c))
                }),
                Box::new(move |net: &mut ShardedNetwork<'_>| {
                    let c = linial_coloring(net, target);
                    pairs_of(&color_scheduled_mm(net, &c))
                }),
            ),
            (
                "sparsifier+solomon",
                Box::new(move |net: &mut FaultyNetwork<'_>| {
                    let mut out = edge_list(&distributed_sparsifier(net, &params, 9));
                    out.extend(edge_list(&distributed_solomon(net, 5)));
                    out
                }),
                Box::new(move |net: &mut ShardedNetwork<'_>| {
                    let mut out = edge_list(&distributed_sparsifier(net, &params, 9));
                    out.extend(edge_list(&distributed_solomon(net, 5)));
                    out
                }),
            ),
            (
                "bounded-degree-matching",
                Box::new(|net: &mut FaultyNetwork<'_>| {
                    pairs_of(&bounded_degree_matching(net, 0.34).0)
                }),
                Box::new(|net: &mut ShardedNetwork<'_>| {
                    pairs_of(&bounded_degree_matching(net, 0.34).0)
                }),
            ),
        ];

        for (alg, seq_f, shard_f) in &algorithms {
            let reference = seq(seq_f.as_ref());
            for threads in [2usize, 4] {
                let got = shard(threads, shard_f.as_ref());
                assert_eq!(
                    got, reference,
                    "{name}/{alg}: sharded t={threads} fingerprint diverged from sequential"
                );
            }
        }
    }
}

#[test]
fn validate_coloring_accepts_faulty_net_reference() {
    // validate_coloring is generic over the transport; a lossless faulty
    // net validates the same coloring the perfect net produced.
    let g = cycle(30);
    let mut perfect = Network::new(&g);
    let c = linial_coloring(&mut perfect, 3);
    let faulty = FaultyNetwork::new(&g, FaultPlan::none());
    assert!(validate_coloring(&faulty, &c));
}
