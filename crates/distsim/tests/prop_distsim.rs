//! Property-based tests for the distributed simulator and algorithms.

use proptest::prelude::*;
use sparsimatch_distsim::algorithms::coloring::{linial_coloring, validate_coloring};
use sparsimatch_distsim::algorithms::israeli_itai::israeli_itai_matching;
use sparsimatch_distsim::algorithms::matching::bounded_degree_matching;
use sparsimatch_distsim::{FaultPlan, FaultRates, FaultyNetwork, Network, ShardedNetwork};
use sparsimatch_graph::csr::from_edges;
use sparsimatch_matching::blossom::maximum_matching;

const N: usize = 20;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..70)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coloring_is_always_proper(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let mut net = Network::new(&g);
        let target = g.max_degree() as u64 + 1;
        let c = linial_coloring(&mut net, target.max(2));
        prop_assert!(validate_coloring(&net, &c));
        prop_assert!(c.num_colors <= target.max(2));
    }

    #[test]
    fn israeli_itai_is_always_maximal(edges in arb_edges(), seed in any::<u64>()) {
        let g = from_edges(N, edges);
        let mut net = Network::new(&g);
        let (m, _) = israeli_itai_matching(&mut net, seed);
        prop_assert!(m.is_valid_for(&g));
        prop_assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn bounded_degree_matching_meets_guarantee(edges in arb_edges(), k in 1usize..4) {
        let g = from_edges(N, edges);
        let mut net = Network::new(&g);
        let eps = 1.0 / k as f64;
        let (m, _) = bounded_degree_matching(&mut net, eps);
        prop_assert!(m.is_valid_for(&g));
        let exact = maximum_matching(&g).len();
        prop_assert!(
            m.len() * (k + 1) >= exact * k,
            "k={} got {} vs exact {}", k, m.len(), exact
        );
    }

    /// The shard count is an execution detail: any thread count, on any
    /// graph, fault-free or under a random fault plan, yields the exact
    /// sequential fingerprint (matching, rounds, messages, bits).
    #[test]
    fn shard_count_never_changes_the_fingerprint(
        edges in arb_edges(),
        seed in any::<u64>(),
        threads in 1usize..12,
        drop_pct in 0u32..40,
        reorder_pct in 0u32..50,
    ) {
        let (drop, reorder) = (f64::from(drop_pct) / 100.0, f64::from(reorder_pct) / 100.0);
        let g = from_edges(N, edges);

        let mut seq = Network::new(&g);
        let (m_seq, it_seq) = israeli_itai_matching(&mut seq, seed);
        let mut sharded = ShardedNetwork::new(&g, threads);
        let (m_sh, it_sh) = israeli_itai_matching(&mut sharded, seed);
        prop_assert_eq!(
            m_sh.pairs().collect::<Vec<_>>(),
            m_seq.pairs().collect::<Vec<_>>()
        );
        prop_assert_eq!(it_sh, it_seq);
        prop_assert_eq!(sharded.metrics(), seq.metrics());

        let plan = FaultPlan::new(seed ^ 0xFA17, FaultRates {
            drop,
            reorder,
            ..Default::default()
        }).with_horizon(30);
        let mut seq_f = FaultyNetwork::new(&g, plan.clone());
        let (mf_seq, itf_seq) = israeli_itai_matching(&mut seq_f, seed);
        let mut sharded_f = ShardedNetwork::with_faults(
            &g, threads, plan, sparsimatch_distsim::ResilienceParams::off());
        let (mf_sh, itf_sh) = israeli_itai_matching(&mut sharded_f, seed);
        prop_assert_eq!(
            mf_sh.pairs().collect::<Vec<_>>(),
            mf_seq.pairs().collect::<Vec<_>>()
        );
        prop_assert_eq!(itf_sh, itf_seq);
        prop_assert_eq!(sharded_f.metrics(), seq_f.metrics());
        prop_assert_eq!(sharded_f.fault_stats(), seq_f.fault_stats());
    }

    #[test]
    fn exchange_is_lossless_and_counted(edges in arb_edges(), payloads in proptest::collection::vec(any::<u32>(), N)) {
        let g = from_edges(N, edges);
        let mut net = Network::new(&g);
        // Every node broadcasts its payload; every half-edge must deliver
        // exactly once with the right value.
        let outs: Vec<(u32, u64)> = payloads.iter().map(|&p| (p, 32u64)).collect();
        let inboxes = net.broadcast_exchange(outs);
        let mut delivered = 0u64;
        for (v, inbox) in inboxes.iter().enumerate() {
            for &(port, value) in inbox {
                let sender = net.peer(sparsimatch_graph::ids::VertexId::new(v), port);
                prop_assert_eq!(value, payloads[sender.index()]);
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, 2 * g.num_edges() as u64);
        prop_assert_eq!(net.metrics().messages, delivered);
        prop_assert_eq!(net.metrics().bits, 32 * delivered);
    }
}
