#![warn(missing_docs)]

//! Synchronous distributed network simulator (LOCAL / CONGEST) with round,
//! message, and bit accounting — plus the distributed algorithms of the
//! SPAA'20 sparsifier paper.
//!
//! The LOCAL and CONGEST models are *defined* as synchronous round/message
//! abstractions, so a round-faithful simulator measures exactly the
//! quantities Theorems 3.2 and 3.3 bound: the number of communication
//! rounds, the number of (unicast) messages, and the bits on the wire.
//!
//! Design: algorithms are written as straight-line Rust against a
//! [`network::Network`]; **all** inter-vertex information flow goes through
//! [`network::Network::exchange`] (one synchronous round, fully accounted)
//! or through [`network::Network::charge_gather`] (the standard
//! "collect your radius-r ball" LOCAL primitive, charged r rounds and
//! r·2m messages; the ball content is then read off the master graph —
//! an accounting-faithful simulation shortcut, see DESIGN.md §4.5).
//!
//! Algorithms:
//!
//! * [`algorithms::sparsify`] — the one-round random sparsifier `G_Δ` with
//!   1-bit unicast messages (Section 3.2 / Theorem 3.3's message bound);
//! * [`algorithms::solomon`] — the one-round bounded-degree sparsifier;
//! * [`algorithms::coloring`] — Linial-style iterated color reduction:
//!   `O(log* n)` rounds to `O(D²·polylog D)` colors, then one class per
//!   round down to `D+1`;
//! * [`algorithms::matching`] — color-scheduled greedy maximal matching
//!   and bounded-length augmentation on bounded-degree graphs (the
//!   Even–Medina–Ron substitute), with power-graph coloring schedules;
//! * [`algorithms::pipeline`] — Theorem 3.2/3.3 end to end.

pub mod algorithms;
pub mod dynamic_net;
pub mod faults;
pub mod metrics;
pub mod mpc;
pub mod network;
pub mod shard;

pub use faults::{FaultPlan, FaultRates, FaultStats, FaultyNetwork, ResilienceParams};
pub use metrics::Metrics;
pub use network::{Net, Network};
pub use shard::ShardedNetwork;
