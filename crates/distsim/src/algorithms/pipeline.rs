//! Theorems 3.2 and 3.3 end to end.
//!
//! The protocol stack: (round 1) random sparsifier `G_Δ` on the physical
//! network; (round 2) Solomon's bounded-degree sparsifier on `G_Δ`; then
//! the bounded-degree `(1+ε)` matching (coloring + MM + augmentation) on
//! the composed sparsifier `G̃_Δ`. Later phases run over sparsifier edges
//! only — each sparsifier edge is a physical edge, so their rounds and
//! messages are physical rounds and messages, and the totals below are the
//! Theorem 3.3 quantities.

use crate::algorithms::matching::{bounded_degree_matching, maximal_matching_only};
use crate::algorithms::solomon::distributed_solomon;
use crate::algorithms::sparsify::distributed_sparsifier;
use crate::faults::{FaultPlan, FaultStats, FaultyNetwork, ResilienceParams};
use crate::metrics::Metrics;
use crate::network::{Incoming, Net, Network, Outgoing};
use crate::shard::ShardedNetwork;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::solomon::degree_cap_for;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::Matching;

/// Outcome of the full distributed pipeline.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The matching (valid for the original graph).
    pub matching: Matching,
    /// Communication totals across all phases.
    pub metrics: Metrics,
    /// Per-phase round counts: (sparsify, solomon, matching).
    pub phase_rounds: (u64, u64, u64),
    /// Maximum degree of the composed sparsifier the matcher ran on.
    pub composed_max_degree: usize,
    /// Fault counters across all phases (all zero on a perfect network).
    pub faults: FaultStats,
}

/// Fault configuration threaded through a pipeline run: the plan is
/// re-instantiated for each phase network (each phase restarts its round
/// counter, so one plan describes each phase's disruption window).
pub type FaultCfg<'a> = Option<(&'a FaultPlan, ResilienceParams)>;

/// Per-phase transport: a perfect [`Network`], a [`FaultyNetwork`], or
/// the sharded engine, chosen at runtime so `run_pipeline` stays
/// monomorphic. One thread means the historical sequential transports;
/// two or more means [`ShardedNetwork`] (which folds the fault plan in).
enum PhaseNet<'g> {
    Plain(Network<'g>),
    Faulty(FaultyNetwork<'g>),
    Sharded(ShardedNetwork<'g>),
}

impl<'g> PhaseNet<'g> {
    fn build(g: &'g CsrGraph, cfg: FaultCfg<'_>, threads: usize) -> Self {
        match (threads, cfg) {
            (2.., None) => PhaseNet::Sharded(ShardedNetwork::new(g, threads)),
            (2.., Some((plan, res))) => {
                PhaseNet::Sharded(ShardedNetwork::with_faults(g, threads, plan.clone(), res))
            }
            (_, None) => PhaseNet::Plain(Network::new(g)),
            (_, Some((plan, res))) => {
                PhaseNet::Faulty(FaultyNetwork::with_resilience(g, plan.clone(), res))
            }
        }
    }

    fn fault_stats(&self) -> FaultStats {
        match self {
            PhaseNet::Plain(_) => FaultStats::default(),
            PhaseNet::Faulty(n) => n.fault_stats(),
            PhaseNet::Sharded(n) => n.fault_stats(),
        }
    }
}

impl<'g> Net<'g> for PhaseNet<'g> {
    fn graph(&self) -> &'g CsrGraph {
        match self {
            PhaseNet::Plain(n) => n.graph(),
            PhaseNet::Faulty(n) => Net::graph(n),
            PhaseNet::Sharded(n) => Net::graph(n),
        }
    }

    fn metrics(&self) -> Metrics {
        match self {
            PhaseNet::Plain(n) => n.metrics(),
            PhaseNet::Faulty(n) => Net::metrics(n),
            PhaseNet::Sharded(n) => n.metrics(),
        }
    }

    fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        match self {
            PhaseNet::Plain(n) => n.exchange(outboxes),
            PhaseNet::Faulty(n) => Net::exchange(n, outboxes),
            PhaseNet::Sharded(n) => Net::exchange(n, outboxes),
        }
    }

    fn charge_gather(&mut self, radius: usize, bits_per_message: u64) {
        match self {
            PhaseNet::Plain(n) => n.charge_gather(radius, bits_per_message),
            PhaseNet::Faulty(n) => Net::charge_gather(n, radius, bits_per_message),
            PhaseNet::Sharded(n) => Net::charge_gather(n, radius, bits_per_message),
        }
    }

    fn record_clones(&mut self, count: u64) {
        match self {
            PhaseNet::Plain(n) => Net::record_clones(n, count),
            PhaseNet::Faulty(n) => Net::record_clones(n, count),
            PhaseNet::Sharded(n) => Net::record_clones(n, count),
        }
    }

    fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId> {
        match self {
            PhaseNet::Plain(n) => n.ball(v, radius),
            PhaseNet::Faulty(n) => Net::ball(n, v, radius),
            PhaseNet::Sharded(n) => Net::ball(n, v, radius),
        }
    }

    fn lossless(&self) -> bool {
        match self {
            PhaseNet::Plain(_) => true,
            PhaseNet::Faulty(n) => Net::lossless(n),
            PhaseNet::Sharded(n) => Net::lossless(n),
        }
    }
}

/// Theorem 3.2/3.3: distributed `(1+ε)`-approximate MCM on a graph of
/// neighborhood independence `params.beta`.
pub fn distributed_approx_mcm(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, true, None, 1)
}

/// [`distributed_approx_mcm`] on the sharded engine: every phase runs on
/// a [`ShardedNetwork`] with `threads` round workers (1 falls back to the
/// historical sequential transports). Outcomes are byte-identical to the
/// sequential run at every thread count, fault configuration included.
pub fn distributed_approx_mcm_sharded(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    cfg: FaultCfg<'_>,
    threads: usize,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, true, cfg, threads)
}

/// [`distributed_approx_mcm`] under fault injection: every phase runs on
/// a [`FaultyNetwork`] instantiated from `plan` and `resilience`. The
/// returned matching is valid for `g` under *any* plan; its size degrades
/// gracefully with the fault rates (experiment `exp_fault_sweep`). With
/// [`FaultPlan::none`] and [`ResilienceParams::off`] the outcome is
/// identical to the perfect-network pipeline, fault counters included.
pub fn distributed_approx_mcm_faulty(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    plan: &FaultPlan,
    resilience: ResilienceParams,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, true, Some((plan, resilience)), 1)
}

/// The `(2+ε)`-style comparator (Barenboim–Oren shape): identical
/// sparsification and maximal matching, no augmentation phase.
pub fn distributed_maximal_baseline(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, false, None, 1)
}

/// [`distributed_maximal_baseline`] on the sharded engine (see
/// [`distributed_approx_mcm_sharded`]).
pub fn distributed_maximal_baseline_sharded(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    cfg: FaultCfg<'_>,
    threads: usize,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, false, cfg, threads)
}

/// [`distributed_maximal_baseline`] under fault injection (see
/// [`distributed_approx_mcm_faulty`] for the guarantees).
pub fn distributed_maximal_baseline_faulty(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    plan: &FaultPlan,
    resilience: ResilienceParams,
) -> DistributedOutcome {
    run_pipeline(g, params, seed, false, Some((plan, resilience)), 1)
}

/// Randomized variant: sparsifiers as usual, then Israeli–Itai randomized
/// maximal matching on the composed sparsifier (O(log n) rounds, no
/// coloring) — trades the deterministic `f(Δ) + log* n` round bound for
/// simplicity; 2-approximate modulo sparsification loss.
pub fn distributed_randomized_maximal(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
) -> DistributedOutcome {
    run_randomized(g, params, seed, None, 1)
}

/// [`distributed_randomized_maximal`] on the sharded engine (see
/// [`distributed_approx_mcm_sharded`]).
pub fn distributed_randomized_maximal_sharded(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    cfg: FaultCfg<'_>,
    threads: usize,
) -> DistributedOutcome {
    run_randomized(g, params, seed, cfg, threads)
}

/// [`distributed_randomized_maximal`] under fault injection (see
/// [`distributed_approx_mcm_faulty`] for the guarantees).
pub fn distributed_randomized_maximal_faulty(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    plan: &FaultPlan,
    resilience: ResilienceParams,
) -> DistributedOutcome {
    run_randomized(g, params, seed, Some((plan, resilience)), 1)
}

fn run_randomized(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    cfg: FaultCfg<'_>,
    threads: usize,
) -> DistributedOutcome {
    let mut totals = Metrics::new();
    let mut faults = FaultStats::default();

    let mut net1 = PhaseNet::build(g, cfg, threads);
    let g_delta = distributed_sparsifier(&mut net1, params, seed);
    let sparsify_rounds = net1.metrics().rounds;
    totals.absorb(net1.metrics());
    faults.absorb(net1.fault_stats());

    let mut net2 = PhaseNet::build(&g_delta, cfg, threads);
    let cap = degree_cap_for(params.arboricity_bound(), params.eps);
    let composed = distributed_solomon(&mut net2, cap);
    let solomon_rounds = net2.metrics().rounds;
    totals.absorb(net2.metrics());
    faults.absorb(net2.fault_stats());

    let mut net3 = PhaseNet::build(&composed, cfg, threads);
    let (matching, _) = crate::algorithms::israeli_itai::israeli_itai_matching(&mut net3, seed);
    let matching_rounds = net3.metrics().rounds;
    totals.absorb(net3.metrics());
    faults.absorb(net3.fault_stats());

    debug_assert!(matching.is_valid_for(g));
    DistributedOutcome {
        matching,
        metrics: totals,
        phase_rounds: (sparsify_rounds, solomon_rounds, matching_rounds),
        composed_max_degree: composed.max_degree(),
        faults,
    }
}

fn run_pipeline(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    augment: bool,
    cfg: FaultCfg<'_>,
    threads: usize,
) -> DistributedOutcome {
    let mut totals = Metrics::new();
    let mut faults = FaultStats::default();

    // Phase 1: one-round random sparsifier on the physical network.
    let mut net1 = PhaseNet::build(g, cfg, threads);
    let g_delta = distributed_sparsifier(&mut net1, params, seed);
    let sparsify_rounds = net1.metrics().rounds;
    totals.absorb(net1.metrics());
    faults.absorb(net1.fault_stats());

    // Phase 2: one-round bounded-degree sparsifier on G_Δ.
    let mut net2 = PhaseNet::build(&g_delta, cfg, threads);
    let cap = degree_cap_for(params.arboricity_bound(), params.eps);
    let composed = distributed_solomon(&mut net2, cap);
    let solomon_rounds = net2.metrics().rounds;
    totals.absorb(net2.metrics());
    faults.absorb(net2.fault_stats());

    // Phase 3: bounded-degree matching on the composed sparsifier.
    let mut net3 = PhaseNet::build(&composed, cfg, threads);
    let matching = if augment {
        bounded_degree_matching(&mut net3, params.eps).0
    } else {
        maximal_matching_only(&mut net3)
    };
    let matching_rounds = net3.metrics().rounds;
    totals.absorb(net3.metrics());
    faults.absorb(net3.fault_stats());

    debug_assert!(matching.is_valid_for(g), "composed sparsifier ⊆ G");
    DistributedOutcome {
        matching,
        metrics: totals,
        phase_rounds: (sparsify_rounds, solomon_rounds, matching_rounds),
        composed_max_degree: composed.max_degree(),
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        clique_union, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn pipeline_accuracy_on_clique_union() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = clique_union(
            CliqueUnionConfig {
                n: 200,
                diversity: 2,
                clique_size: 40,
            },
            &mut rng,
        );
        // Small explicit delta keeps the composed degree low so the test
        // runs fast; accuracy is audited against exact.
        let p = SparsifierParams::with_delta(2, 0.5, 8);
        let out = distributed_approx_mcm(&g, &p, 77);
        let exact = maximum_matching(&g).len();
        assert!(
            out.matching.len() as f64 * 1.6 >= exact as f64,
            "{} vs {exact}",
            out.matching.len()
        );
        assert!(out.matching.is_valid_for(&g));
        assert_eq!(out.phase_rounds.0, 1);
        assert_eq!(out.phase_rounds.1, 1);
    }

    #[test]
    fn sublinear_messages_on_dense_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 300,
                diversity: 1,
                clique_size: 150,
            },
            &mut rng,
        );
        let p = SparsifierParams::with_delta(1, 0.5, 4);
        let out = distributed_approx_mcm(&g, &p, 5);
        // Dense input: m ≈ 150·149 ≈ 22k edges; phase-1 messages = n·Δ.
        // The later phases run on the tiny sparsifier, so totals stay well
        // below m (the Theorem 3.3 story). Round-heavy phases dominate, so
        // compare against a generous multiple.
        let m = g.num_edges() as u64;
        assert!(
            out.metrics.messages < 40 * m,
            "messages {} vs m {m}",
            out.metrics.messages
        );
    }

    #[test]
    fn randomized_variant_is_congest_compliant_and_maximalish() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = clique_union(
            CliqueUnionConfig {
                n: 150,
                diversity: 2,
                clique_size: 30,
            },
            &mut rng,
        );
        let p = SparsifierParams::with_delta(2, 0.5, 6);
        let out = distributed_randomized_maximal(&g, &p, 21);
        assert!(out.matching.is_valid_for(&g));
        // Every message in this variant is 1 bit: far inside CONGEST.
        assert!(out.metrics.congest_compliant(g.num_vertices(), 1));
        assert_eq!(out.metrics.max_message_bits, 1);
        let exact = maximum_matching(&g).len();
        assert!(
            out.matching.len() * 3 >= exact,
            "{} vs {exact}",
            out.matching.len()
        );
    }

    #[test]
    fn deterministic_pipeline_messages_fit_congest_outside_gathers() {
        // The sparsify + solomon + coloring phases use ≤ O(log n)-bit
        // messages; only the augmentation's LOCAL ball gathers exceed
        // CONGEST. The maximal-only pipeline must therefore be compliant.
        let mut rng = StdRng::seed_from_u64(6);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(200, 1.0, 10.0),
            &mut rng,
        );
        let p = SparsifierParams::with_delta(5, 0.5, 5);
        let out = distributed_maximal_baseline(&g, &p, 4);
        assert!(
            out.metrics.congest_compliant(g.num_vertices(), 8),
            "max message bits = {}",
            out.metrics.max_message_bits
        );
        // The augmented pipeline gathers balls: LOCAL-sized messages.
        let full = distributed_approx_mcm(&g, &p, 4);
        assert!(full.metrics.max_message_bits >= out.metrics.max_message_bits);
    }

    #[test]
    fn baseline_is_weaker_but_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(300, 1.0, 15.0),
            &mut rng,
        );
        let p = SparsifierParams::with_delta(5, 0.5, 10);
        let base = distributed_maximal_baseline(&g, &p, 9);
        let full = distributed_approx_mcm(&g, &p, 9);
        let exact = maximum_matching(&g).len();
        assert!(base.matching.is_valid_for(&g));
        // Maximal matching: at least half of optimum (of the sparsifier,
        // roughly half of exact modulo sparsification loss).
        assert!(base.matching.len() * 2 + 5 >= exact / 2);
        assert!(full.matching.len() >= base.matching.len());
    }
}
