//! Israeli–Itai-style randomized distributed maximal matching.
//!
//! The classic O(log n)-round randomized baseline: in each iteration every
//! free vertex proposes to a uniformly random free neighbor (1-bit
//! message), every free vertex accepts one incoming proposal uniformly at
//! random, and accepted pairs match. A constant fraction of the "live"
//! edges disappears per iteration in expectation, giving O(log n) rounds
//! w.h.p. — contrast with the deterministic color-scheduled matcher of
//! [`crate::algorithms::matching`], whose round count is `f(Δ) + log* n`.

use crate::network::{Net, Outgoing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::Matching;

/// Run randomized maximal matching; returns the matching and the number
/// of proposal iterations (3 communication rounds each).
///
/// Generic over the transport: on a faulty network the result is still a
/// valid matching (pairs commit only when an accept is delivered), but
/// maximality holds only under lossless delivery.
pub fn israeli_itai_matching<'g>(net: &mut impl Net<'g>, seed: u64) -> (Matching, u64) {
    let g = net.graph();
    let n = g.num_vertices();
    let mut matching = Matching::new(n);
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15)))
        .collect();
    let mut iterations = 0u64;
    loop {
        iterations += 1;
        // (a) status broadcast.
        let payloads = (0..n)
            .map(|v| (matching.is_matched(VertexId::new(v)), 1u64))
            .collect();
        let statuses = net.broadcast_exchange(payloads);

        // (b) proposals to a random free neighbor.
        let mut proposals: Vec<Vec<Outgoing<()>>> = vec![Vec::new(); n];
        let mut any_proposal = false;
        for v in 0..n {
            let vid = VertexId::new(v);
            if matching.is_matched(vid) {
                continue;
            }
            let free_ports: Vec<usize> = statuses[v]
                .iter()
                .filter(|&&(_, matched)| !matched)
                .map(|&(p, _)| p)
                .collect();
            if free_ports.is_empty() {
                continue;
            }
            let p = free_ports[rngs[v].random_range(0..free_ports.len())];
            proposals[v].push((p, (), 1));
            any_proposal = true;
        }
        if !any_proposal {
            iterations -= 1; // the last iteration did no work
                             // One status round was still spent discovering quiescence.
            break;
        }
        let incoming = net.exchange(proposals);

        // (c) accepts: a free proposee accepts one proposal at random.
        let mut accepts: Vec<Vec<Outgoing<()>>> = vec![Vec::new(); n];
        for v in 0..n {
            let vid = VertexId::new(v);
            if matching.is_matched(vid) || incoming[v].is_empty() {
                continue;
            }
            let &(p, ()) = &incoming[v][rngs[v].random_range(0..incoming[v].len())];
            accepts[v].push((p, (), 1));
        }
        let accepted = net.exchange(accepts);
        // A vertex can simultaneously accept one proposal and have its own
        // proposal accepted; ties resolve in favor of whichever pairing is
        // committed first (add_pair refuses the second). The losing side
        // simply retries next iteration — maximality is unaffected.
        for (v, acc) in accepted.iter().enumerate() {
            let vid = VertexId::new(v);
            for &(p, ()) in acc {
                let u = net.peer(vid, p);
                matching.add_pair(vid, u);
            }
        }
    }
    debug_assert!(matching.is_valid_for(net.graph()));
    debug_assert!(!net.lossless() || matching.is_maximal_in(net.graph()));
    (matching, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use sparsimatch_graph::generators::{clique, cycle, gnp, path};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn maximal_on_paths_and_cycles() {
        for g in [path(41), cycle(40)] {
            let mut net = Network::new(&g);
            let (m, iters) = israeli_itai_matching(&mut net, 7);
            assert!(m.is_valid_for(&g));
            assert!(m.is_maximal_in(&g));
            assert!(iters >= 1);
        }
    }

    #[test]
    fn maximal_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for seed in 0..5 {
            let g = gnp(120, 0.05, &mut rng);
            let mut net = Network::new(&g);
            let (m, _) = israeli_itai_matching(&mut net, seed);
            assert!(m.is_maximal_in(&g));
            let exact = maximum_matching(&g).len();
            assert!(2 * m.len() >= exact);
        }
    }

    #[test]
    fn iterations_logarithmic_on_clique() {
        // On K_n a constant fraction of vertices matches per iteration:
        // iterations should be ~log n, far below n.
        let g = clique(256);
        let mut net = Network::new(&g);
        let (m, iters) = israeli_itai_matching(&mut net, 3);
        assert_eq!(m.len(), 128);
        assert!(iters <= 40, "iterations {iters} not logarithmic-ish");
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = sparsimatch_graph::csr::from_edges(5, []);
        let mut net = Network::new(&g);
        let (m, iters) = israeli_itai_matching(&mut net, 1);
        assert_eq!(m.len(), 0);
        assert_eq!(iters, 0);
    }
}
