//! Deterministic distributed vertex coloring in `O(log* n)` rounds.
//!
//! Linial's iterated color reduction: vertices start with their ids as
//! colors (`n` colors) and repeatedly map color `c` — read as a degree-`d`
//! polynomial over `F_q`, with `q > d·Δ` prime and `q^{d+1} ≥ k` — to a
//! point `(x, p_c(x))` that no neighbor's polynomial passes through. Two
//! distinct degree-`d` polynomials agree on at most `d` points, so the at
//! most `Δ` neighbors rule out at most `d·Δ < q` of the `q` candidate
//! points, and a free point always exists; properness is preserved because
//! the new color of `v` is explicitly avoided by construction in each
//! neighbor's point set. Each step takes one round and squashes `k` colors
//! to `q² = O((dΔ)²)`; iterating is the classic `log* n`-round schedule.
//! A final greedy phase retires one color class per round down to `Δ+1`.

use crate::network::Net;

/// A proper vertex coloring computed by the protocol.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Color of each vertex, in `0..num_colors`.
    pub colors: Vec<u64>,
    /// Number of colors.
    pub num_colors: u64,
}

/// Smallest prime ≥ `x` (trial division; inputs are small).
fn next_prime(x: u64) -> u64 {
    let mut c = x.max(2);
    'outer: loop {
        let mut d = 2;
        while d * d <= c {
            if c.is_multiple_of(d) {
                c += 1;
                continue 'outer;
            }
            d += 1;
        }
        return c;
    }
}

/// Pick the polynomial parameters for one Linial step: smallest degree `d`
/// with `q = next_prime(d·Δ + 2)` satisfying `q^{d+1} ≥ k`.
fn step_params(k: u64, max_deg: u64) -> Option<(u32, u64)> {
    for d in 1u32..=64 {
        let q = next_prime(d as u64 * max_deg + 2);
        if (q as u128).checked_pow(d + 1)? >= k as u128 {
            return Some((d, q));
        }
    }
    None
}

/// Evaluate color `c`'s polynomial (base-`q` digits as coefficients) at `x`.
fn poly_eval(c: u64, d: u32, q: u64, x: u64) -> u64 {
    let mut c = c;
    let mut val = 0u64;
    let mut xp = 1u64;
    for _ in 0..=d {
        val = (val + (c % q) * xp) % q;
        c /= q;
        xp = (xp * x) % q;
    }
    val
}

/// The iterated logarithm `log* n` (number of `log2` applications until
/// ≤ 1) — reported alongside round counts in experiment E8.
pub fn log_star(n: usize) -> u32 {
    let mut x = n as f64;
    let mut it = 0;
    while x > 1.0 {
        x = x.log2();
        it += 1;
        if it > 64 {
            break;
        }
    }
    it
}

/// Compute a proper coloring with at most `target` colors, where
/// `target ≥ max_degree + 1`. Returns the coloring; rounds/messages are
/// charged to `net`.
///
/// On a faulty transport the round budget is unchanged (every loop is
/// bounded by palette arithmetic, not by convergence), the palette bound
/// `num_colors ≤ max(target, n)` still holds, but properness can be lost:
/// a dropped color broadcast removes a constraint, so two neighbors may
/// pick the same color. Properness is guaranteed only when
/// [`Net::lossless`] holds; validate with [`validate_coloring`].
pub fn linial_coloring<'g>(net: &mut impl Net<'g>, target: u64) -> Coloring {
    let g = net.graph();
    let n = g.num_vertices();
    let max_deg = g.max_degree() as u64;
    assert!(
        target > max_deg,
        "target {target} below max degree + 1 = {}",
        max_deg + 1
    );
    let mut colors: Vec<u64> = (0..n as u64).collect();
    let mut k = n as u64;

    // Phase 1: Linial squashing, one round per step, O(log* n) steps.
    while k > target {
        let Some((d, q)) = step_params(k, max_deg) else {
            break;
        };
        if q * q >= k {
            break; // no further progress from this step
        }
        let bits = 64 - k.leading_zeros() as u64; // ⌈log k⌉-bit color messages
        let payloads = colors.iter().map(|&c| (c, bits)).collect();
        let inboxes = net.broadcast_exchange(payloads);
        let mut new_colors = vec![0u64; n];
        for v in 0..n {
            let c = colors[v];
            // Find x with (x, p_c(x)) missed by every neighbor polynomial.
            let mut chosen = None;
            'x: for x in 0..q {
                let val = poly_eval(c, d, q, x);
                for &(_, cu) in &inboxes[v] {
                    if poly_eval(cu, d, q, x) == val {
                        continue 'x;
                    }
                }
                chosen = Some(x * q + val);
                break;
            }
            new_colors[v] = chosen.expect("q > d·Δ guarantees a free evaluation point");
        }
        colors = new_colors;
        k = q * q;
    }

    // Phase 2: Kuhn–Wattenhofer parallel color-class elimination. Split
    // the palette into groups of 2·target colors; in each round, *every*
    // group simultaneously retires one designated overflow class (a color
    // class is an independent set, and distinct groups recolor into
    // disjoint palettes, so all moves commute). One halving costs `target`
    // rounds, so reaching `target` takes `O(target · log(k/target))`
    // rounds — n-independent beyond the `log* n` of phase 1.
    let t = target;
    while k > t {
        let two_t = 2 * t;
        let bits = 64 - k.leading_zeros() as u64;
        if k <= two_t {
            // Single group: retire the top class, one round each.
            while k > t {
                let payloads = colors.iter().map(|&c| (c, bits)).collect();
                let inboxes = net.broadcast_exchange(payloads);
                for v in 0..n {
                    if colors[v] == k - 1 {
                        let used: std::collections::HashSet<u64> =
                            inboxes[v].iter().map(|&(_, c)| c).collect();
                        colors[v] = (0..t).find(|c| !used.contains(c)).expect("≤ Δ neighbors");
                    }
                }
                k -= 1;
            }
            break;
        }
        // One halving: rounds step = 0..t retire overflow class
        // `g·2t + t + step` of every group g into the group's low half.
        for step in 0..t {
            let payloads = colors.iter().map(|&c| (c, bits)).collect();
            let inboxes = net.broadcast_exchange(payloads);
            for v in 0..n {
                let g = colors[v] / two_t;
                if colors[v] == g * two_t + t + step {
                    let used: std::collections::HashSet<u64> =
                        inboxes[v].iter().map(|&(_, c)| c).collect();
                    colors[v] = (g * two_t..g * two_t + t)
                        .find(|c| !used.contains(c))
                        .expect("low half has target > Δ slots");
                }
            }
        }
        // Renumber: every color now lies in its group's low half.
        for c in colors.iter_mut().take(n) {
            let g = *c / two_t;
            debug_assert!(*c - g * two_t < t);
            *c = g * t + (*c - g * two_t);
        }
        k = k.div_ceil(two_t) * t;
    }

    debug_assert!(!net.lossless() || is_proper(net, &colors));
    Coloring {
        colors,
        num_colors: k,
    }
}

fn is_proper<'g>(net: &impl Net<'g>, colors: &[u64]) -> bool {
    net.graph()
        .edges()
        .all(|(_, u, v)| colors[u.index()] != colors[v.index()])
}

/// Validate that a coloring is proper and within its declared palette
/// (exposed for tests and experiment audits).
pub fn validate_coloring<'g>(net: &impl Net<'g>, c: &Coloring) -> bool {
    c.colors.len() == net.num_nodes()
        && c.colors.iter().all(|&x| x < c.num_colors)
        && is_proper(net, &c.colors)
}

/// Degree of each vertex as a helper for palette sizing: `max_degree + 1`
/// is the canonical target.
pub fn canonical_target<'g>(net: &impl Net<'g>) -> u64 {
    net.graph().max_degree() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use sparsimatch_graph::generators::{cycle, gnp, path, star};

    #[test]
    fn primes() {
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(1), 2);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(100_000), 5);
    }

    #[test]
    fn poly_eval_matches_horner() {
        // c = 2 + 3q + 1q² with q=5, d=2: p(x) = 2 + 3x + x².
        let q = 5;
        let c = 2 + 3 * q + q * q;
        for x in 0..q {
            assert_eq!(poly_eval(c, 2, q, x), (2 + 3 * x + x * x) % q);
        }
    }

    #[test]
    fn colors_path() {
        let g = path(1000);
        let mut net = Network::new(&g);
        let c = linial_coloring(&mut net, 3);
        assert!(validate_coloring(&net, &c));
        assert_eq!(c.num_colors, 3);
    }

    #[test]
    fn colors_cycle() {
        let g = cycle(997);
        let mut net = Network::new(&g);
        let c = linial_coloring(&mut net, 3);
        assert!(validate_coloring(&net, &c));
    }

    #[test]
    fn colors_star() {
        let g = star(200);
        let mut net = Network::new(&g);
        let target = canonical_target(&net);
        let c = linial_coloring(&mut net, target);
        assert!(validate_coloring(&net, &c));
        assert_eq!(c.num_colors, 200, "star needs Δ+1 = 200 target");
    }

    #[test]
    fn colors_random_bounded_degree() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(300, 0.02, &mut rng);
        let mut net = Network::new(&g);
        let target = canonical_target(&net);
        let c = linial_coloring(&mut net, target);
        assert!(validate_coloring(&net, &c));
        assert!(c.num_colors <= target);
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        // Fixed degree (cycle): rounds should track log* n, i.e. stay tiny
        // while n grows 100x.
        let mut rounds = Vec::new();
        for n in [100usize, 1_000, 10_000] {
            let g = cycle(n);
            let mut net = Network::new(&g);
            let _ = linial_coloring(&mut net, 3);
            rounds.push(net.metrics().rounds);
        }
        assert!(
            rounds[2] <= rounds[0] + 6,
            "rounds {:?} should be log*-flat",
            rounds
        );
    }
}
