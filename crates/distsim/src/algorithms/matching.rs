//! Distributed matching on bounded-degree graphs: color-scheduled greedy
//! maximal matching, then bounded-length augmentation — the
//! Even–Medina–Ron substitute (DESIGN.md §4.2).
//!
//! **Maximal matching.** Given a proper `(D+1)`-coloring, sweep the color
//! classes: in class `c`'s turn, every free vertex of color `c` proposes
//! (1 bit) to its lowest-port free neighbor; a proposee accepts exactly
//! one proposal. Each sweep retires, for every still-free vertex, at least
//! one of its free neighbors, so `≤ D+1` sweeps reach maximality —
//! `O(D²)` rounds total, independent of `n` beyond the coloring's
//! `O(log* n)`.
//!
//! **Bounded augmentation.** To reach `(1+ε)` the matching must admit no
//! augmenting path of length ≤ `2⌈1/ε⌉−1`. Each block, every free vertex
//! gathers its radius-`(L+1)` ball (a LOCAL gather, `O(L)` rounds),
//! locally computes a capped blossom augmentation, and candidates are
//! conflict-resolved by smallest leader id among intersecting candidates —
//! winners are pairwise disjoint and at least the globally smallest
//! candidate always wins, so blocks terminate. (The paper's citation \[34\]
//! schedules by a `D^{O(1/ε)}`-coloring of the power graph instead; the
//! id-priority schedule preserves the `f(D, ε) + O(log* n)` round shape
//! while keeping simulated round counts readable — see DESIGN.md §4.2.)

use crate::algorithms::coloring::Coloring;
use crate::network::{Net, Outgoing};
use sparsimatch_graph::csr::GraphBuilder;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::blossom::BlossomSearcher;
use sparsimatch_matching::bounded_aug::max_path_len_for_eps;
use sparsimatch_matching::Matching;

/// Greedy maximal matching scheduled by a proper coloring. Every round of
/// communication goes through the network (status broadcast, proposal,
/// accept: 3 rounds per color class per sweep).
///
/// On a faulty transport (possibly with an improper coloring from a faulty
/// [`linial_coloring`](crate::algorithms::coloring::linial_coloring) run)
/// the result is still a valid matching — `add_pair` refuses conflicting
/// commits — but maximality requires lossless delivery.
pub fn color_scheduled_mm<'g>(net: &mut impl Net<'g>, coloring: &Coloring) -> Matching {
    let g = net.graph();
    let n = g.num_vertices();
    let mut matching = Matching::new(n);
    let max_sweeps = g.max_degree() + 2;
    for _sweep in 0..max_sweeps {
        let mut matched_this_sweep = false;
        for c in 0..coloring.num_colors {
            // (a) status broadcast: 1-bit matched flags.
            let payloads = (0..n)
                .map(|v| (matching.is_matched(VertexId::new(v)), 1u64))
                .collect();
            let statuses = net.broadcast_exchange(payloads);

            // (b) proposals: free class-c vertices propose to the lowest
            // free port.
            let mut proposals: Vec<Vec<Outgoing<()>>> = vec![Vec::new(); n];
            for v in 0..n {
                let vid = VertexId::new(v);
                if coloring.colors[v] != c || matching.is_matched(vid) {
                    continue;
                }
                // statuses[v] lists (port, matched?) for every neighbor.
                let mut free_port = None;
                let mut port_status: Vec<(usize, bool)> = statuses[v].clone();
                port_status.sort_unstable_by_key(|&(p, _)| p);
                for (p, matched) in port_status {
                    if !matched {
                        free_port = Some(p);
                        break;
                    }
                }
                if let Some(p) = free_port {
                    proposals[v].push((p, (), 1));
                }
            }
            let incoming = net.exchange(proposals);

            // (c) accepts: a free proposee accepts its lowest-port
            // proposal.
            let mut accepts: Vec<Vec<Outgoing<()>>> = vec![Vec::new(); n];
            for v in 0..n {
                let vid = VertexId::new(v);
                if matching.is_matched(vid) || incoming[v].is_empty() {
                    continue;
                }
                let p = incoming[v].iter().map(|&(p, ())| p).min().unwrap();
                accepts[v].push((p, (), 1));
            }
            let accepted = net.exchange(accepts);

            // Proposers that hear an accept are matched; the accept came
            // back on the proposal port, identifying the pair for both
            // sides.
            for (v, acc) in accepted.iter().enumerate() {
                let vid = VertexId::new(v);
                for &(p, ()) in acc {
                    let u = net.peer(vid, p);
                    if matching.add_pair(vid, u) {
                        matched_this_sweep = true;
                    }
                }
            }
        }
        if !matched_this_sweep {
            break;
        }
    }
    debug_assert!(matching.is_valid_for(net.graph()));
    debug_assert!(!net.lossless() || matching.is_maximal_in(net.graph()));
    matching
}

/// Statistics from the distributed augmentation phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct AugmentationStats {
    /// Gather-compute-flip blocks executed.
    pub blocks: u64,
    /// Augmenting paths flipped in total.
    pub flips: u64,
}

/// Eliminate augmenting paths of length ≤ `2⌈1/ε⌉−1` from `matching`
/// using local ball computations with id-priority conflict resolution.
pub fn distributed_augmentation<'g>(
    net: &mut impl Net<'g>,
    matching: &mut Matching,
    eps: f64,
) -> AugmentationStats {
    let max_len = max_path_len_for_eps(eps);
    let radius = max_len + 1;
    let g = net.graph();
    let n = g.num_vertices();
    let mut stats = AugmentationStats::default();

    loop {
        stats.blocks += 1;
        // One LOCAL gather: every vertex learns its radius-(L+1) ball with
        // matching state. Ball payloads are edge lists: charge ~64 bits
        // per edge entry per hop.
        net.charge_gather(radius, 64);

        // Candidates: each free vertex searches its ball for a capped
        // augmenting path. The searches are independent (they read the
        // shared matching snapshot and their own ball), so fan them out
        // over threads — in the simulated world each node computes its
        // candidate locally anyway, so parallelism here mirrors the model.
        let free: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let vid = VertexId(v);
                !matching.is_matched(vid) && g.degree(vid) > 0
            })
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .clamp(1, 8);
        let chunk = free.len().div_ceil(threads).max(1);
        let candidates: Vec<Candidate> = if free.len() < 64 {
            // Not worth the spawn overhead.
            free.iter()
                .filter_map(|&v| local_augment(net, matching, VertexId(v), max_len as u32, radius))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = free
                    .chunks(chunk)
                    .map(|ch| {
                        let matching = &*matching;
                        let net = &*net;
                        s.spawn(move || {
                            ch.iter()
                                .filter_map(|&v| {
                                    local_augment(
                                        net,
                                        matching,
                                        VertexId(v),
                                        max_len as u32,
                                        radius,
                                    )
                                })
                                .collect::<Vec<Candidate>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("augmentation worker panicked"))
                    .collect()
            })
        };
        if candidates.is_empty() {
            break;
        }
        // Conflict resolution: a candidate wins iff its leader id is the
        // smallest among all candidates it shares a vertex with. Winners
        // are pairwise disjoint and the globally smallest candidate always
        // wins, so progress is guaranteed. (Locally checkable: conflicting
        // leaders lie within distance 2(L+1), inside the gathered ball.)
        let winners = resolve_conflicts(&candidates, n);
        // Flip winners and notify their path vertices: one more bounded-
        // radius communication block.
        net.charge_gather(radius, 64);
        for idx in winners {
            let cand = &candidates[idx];
            for &(u, w) in &cand.removed {
                let got = matching.remove_pair(u);
                debug_assert_eq!(got, Some(w));
            }
            for &(u, w) in &cand.added {
                let ok = matching.add_pair(u, w);
                debug_assert!(ok, "winner paths must be disjoint");
            }
            stats.flips += 1;
        }
        debug_assert!(matching.is_valid_for(net.graph()));
    }
    stats
}

/// Full distributed `(1+ε)`-approximate matching on a bounded-degree
/// graph: coloring + color-scheduled MM + bounded augmentation.
pub fn bounded_degree_matching<'g>(
    net: &mut impl Net<'g>,
    eps: f64,
) -> (Matching, AugmentationStats) {
    let target = net.graph().max_degree() as u64 + 1;
    let coloring = crate::algorithms::coloring::linial_coloring(net, target.max(2));
    let mut m = color_scheduled_mm(net, &coloring);
    let stats = distributed_augmentation(net, &mut m, eps);
    (m, stats)
}

struct Candidate {
    leader: u32,
    touched: Vec<u32>,
    removed: Vec<(VertexId, VertexId)>,
    added: Vec<(VertexId, VertexId)>,
}

/// Search `leader`'s radius ball for an augmenting path of length ≤ cap;
/// return the flip as add/remove pair lists without applying it.
fn local_augment<'g>(
    net: &impl Net<'g>,
    matching: &Matching,
    leader: VertexId,
    cap: u32,
    radius: usize,
) -> Option<Candidate> {
    let g = net.graph();
    let ball = net.ball(leader, radius);
    // Local subgraph with dense ids. Ball-boundary vertices whose mate
    // lies outside the ball must NOT look free locally (a fake augmenting
    // path ending there would corrupt the global matching), so each gets
    // an edgeless dummy mate appended after the real ball vertices.
    let mut local_of = std::collections::HashMap::with_capacity(ball.len());
    for (i, &v) in ball.iter().enumerate() {
        local_of.insert(v, i);
    }
    let mut boundary_mated: Vec<usize> = Vec::new();
    for (i, &v) in ball.iter().enumerate() {
        if let Some(u) = matching.mate(v) {
            if !local_of.contains_key(&u) {
                boundary_mated.push(i);
            }
        }
    }
    let total = ball.len() + boundary_mated.len();
    let mut b = GraphBuilder::new(total);
    for (i, &v) in ball.iter().enumerate() {
        for u in g.neighbors(v) {
            if let Some(&j) = local_of.get(&u) {
                if i < j {
                    b.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
    }
    let local_g = b.build();
    let mut local_m = Matching::new(total);
    for (i, &v) in ball.iter().enumerate() {
        if let Some(u) = matching.mate(v) {
            if let Some(&j) = local_of.get(&u) {
                if i < j {
                    local_m.add_pair(VertexId::new(i), VertexId::new(j));
                }
            }
        }
    }
    for (d, &i) in boundary_mated.iter().enumerate() {
        let ok = local_m.add_pair(VertexId::new(i), VertexId::new(ball.len() + d));
        debug_assert!(ok);
    }
    let before = local_m.clone();
    let mut searcher = BlossomSearcher::new(&local_m);
    let leader_local = VertexId::new(local_of[&leader]);
    if !searcher.try_augment(&local_g, leader_local, cap) {
        return None;
    }
    let after = searcher.into_matching();
    // Diff local matchings to obtain the flip.
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let mut touched = Vec::new();
    for (u, v) in before.pairs() {
        if v.index() >= ball.len() {
            continue; // dummy pair: invariant under augmentation
        }
        if after.mate(u) != Some(v) {
            removed.push((ball[u.index()], ball[v.index()]));
        }
    }
    for (u, v) in after.pairs() {
        if v.index() >= ball.len() {
            continue;
        }
        if before.mate(u) != Some(v) {
            added.push((ball[u.index()], ball[v.index()]));
            touched.push(ball[u.index()].0);
            touched.push(ball[v.index()].0);
        }
    }
    for &(u, v) in &removed {
        touched.push(u.0);
        touched.push(v.0);
    }
    touched.sort_unstable();
    touched.dedup();
    Some(Candidate {
        leader: leader.0,
        touched,
        removed,
        added,
    })
}

/// Winners = candidates whose leader id is minimal among every candidate
/// sharing a touched vertex.
fn resolve_conflicts(candidates: &[Candidate], n: usize) -> Vec<usize> {
    // min leader id touching each vertex.
    let mut min_leader = vec![u32::MAX; n];
    for cand in candidates {
        for &v in &cand.touched {
            min_leader[v as usize] = min_leader[v as usize].min(cand.leader);
        }
    }
    candidates
        .iter()
        .enumerate()
        .filter(|(_, cand)| {
            cand.touched
                .iter()
                .all(|&v| min_leader[v as usize] == cand.leader)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Convenience: run MM only (the `(2+ε)`-style baseline of [Barenboim–
/// Oren]: same sparsifier rounds, no augmentation).
pub fn maximal_matching_only<'g>(net: &mut impl Net<'g>) -> Matching {
    let target = net.graph().max_degree() as u64 + 1;
    let coloring = crate::algorithms::coloring::linial_coloring(net, target.max(2));
    color_scheduled_mm(net, &coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::coloring::linial_coloring;
    use crate::network::Network;
    use sparsimatch_graph::csr::CsrGraph;
    use sparsimatch_graph::generators::{cycle, gnp, path};
    use sparsimatch_matching::blossom::maximum_matching;

    fn mm_on(g: &CsrGraph) -> Matching {
        let mut net = Network::new(g);
        let target = g.max_degree() as u64 + 1;
        let coloring = linial_coloring(&mut net, target.max(2));
        color_scheduled_mm(&mut net, &coloring)
    }

    #[test]
    fn mm_is_maximal_on_path() {
        let g = path(50);
        let m = mm_on(&g);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn mm_is_maximal_on_random_bounded_degree() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let g = gnp(150, 0.03, &mut rng);
            let m = mm_on(&g);
            assert!(m.is_valid_for(&g));
            assert!(m.is_maximal_in(&g));
        }
    }

    #[test]
    fn augmentation_reaches_exact_on_paths() {
        // On a path, MM can be a factor-2 off; augmentation with small eps
        // must close the gap entirely.
        let g = path(41);
        let mut net = Network::new(&g);
        let coloring = linial_coloring(&mut net, 3);
        let mut m = color_scheduled_mm(&mut net, &coloring);
        let stats = distributed_augmentation(&mut net, &mut m, 0.05);
        assert_eq!(m.len(), maximum_matching(&g).len());
        assert!(stats.blocks >= 1);
    }

    #[test]
    fn full_bounded_degree_matching_guarantee() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5 {
            let g = gnp(120, 0.04, &mut rng);
            let mut net = Network::new(&g);
            let (m, _) = bounded_degree_matching(&mut net, 0.34);
            let exact = maximum_matching(&g).len();
            // eps = 0.34 => k = 3 => guarantee 3/4.
            assert!(m.len() * 4 >= exact * 3, "{} vs {exact}", m.len());
            assert!(m.is_valid_for(&g));
        }
    }

    #[test]
    fn augmentation_on_even_cycle() {
        let g = cycle(30);
        let mut net = Network::new(&g);
        let (m, _) = bounded_degree_matching(&mut net, 0.1);
        assert_eq!(m.len(), 15, "C30 has a perfect matching");
    }

    #[test]
    fn conflict_resolution_disjoint_winners() {
        let candidates = vec![
            Candidate {
                leader: 5,
                touched: vec![1, 2],
                removed: vec![],
                added: vec![],
            },
            Candidate {
                leader: 3,
                touched: vec![2, 4],
                removed: vec![],
                added: vec![],
            },
            Candidate {
                leader: 9,
                touched: vec![7, 8],
                removed: vec![],
                added: vec![],
            },
        ];
        let winners = resolve_conflicts(&candidates, 10);
        // Candidate with leader 3 beats leader 5 (share vertex 2); leader 9
        // is untouched.
        assert_eq!(winners, vec![1, 2]);
    }

    #[test]
    fn rounds_independent_of_n_for_fixed_degree() {
        let mut rounds = Vec::new();
        for n in [64usize, 512, 4096] {
            let g = cycle(n);
            let mut net = Network::new(&g);
            let _ = bounded_degree_matching(&mut net, 0.5);
            rounds.push(net.metrics().rounds);
        }
        // log* growth only: tiny additive difference allowed.
        assert!(
            rounds[2] <= rounds[0] * 3 + 30,
            "rounds {rounds:?} grow too fast"
        );
    }
}
