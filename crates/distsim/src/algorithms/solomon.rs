//! The one-round distributed bounded-degree sparsifier (Solomon ITCS'18),
//! used as round 2 of the Section 3.2 composition.
//!
//! Each node marks its first `degree_cap` ports (any deterministic local
//! rule works on bounded-arboricity inputs) and sends a 1-bit message
//! along each; an edge survives iff **both** endpoints marked it, which a
//! node detects locally by intersecting its sent and received marks.

use crate::network::{Net, Outgoing};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Run the one-round mutual-marking protocol. The result has maximum
/// degree at most `degree_cap` — on any transport: faults can only lose
/// marks, and losing marks only removes edges, never adds them.
pub fn distributed_solomon<'g>(net: &mut impl Net<'g>, degree_cap: usize) -> CsrGraph {
    let g = net.graph();
    let n = g.num_vertices();
    let outboxes: Vec<Vec<Outgoing<()>>> = (0..n)
        .map(|v| {
            let deg = g.degree(VertexId::new(v));
            (0..deg.min(degree_cap)).map(|p| (p, (), 1u64)).collect()
        })
        .collect();
    let inboxes = net.exchange(outboxes);

    let graph = net.graph();
    let mut keep = Vec::new();
    for (v, inbox) in inboxes.iter().enumerate() {
        let vid = VertexId::new(v);
        let my_marks = graph.degree(vid).min(degree_cap);
        for &(p, ()) in inbox {
            if p < my_marks {
                // Marked by both sides; dedupe by taking it from the
                // smaller endpoint only.
                let u = graph.neighbor(vid, p);
                if vid.0 < u.0 {
                    keep.push(graph.incident_edge(vid, p));
                }
            }
        }
    }
    graph.edge_subgraph(keep.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use sparsimatch_core::solomon::solomon_sparsifier;
    use sparsimatch_graph::generators::{gnp, path};

    #[test]
    fn agrees_with_sequential_construction() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for cap in [2usize, 4, 8] {
            let g = gnp(60, 0.2, &mut rng);
            let mut net = Network::new(&g);
            let dist = distributed_solomon(&mut net, cap);
            let seq = solomon_sparsifier(&g, cap);
            let de: Vec<_> = dist.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            let se: Vec<_> = seq.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            assert_eq!(de, se, "cap {cap}");
        }
    }

    #[test]
    fn one_round_one_bit() {
        let g = path(50);
        let mut net = Network::new(&g);
        let s = distributed_solomon(&mut net, 3);
        let m = net.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, m.bits, "1-bit messages");
        assert_eq!(s.num_edges(), 49, "path survives any cap >= 2");
    }

    #[test]
    fn degree_capped() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(80, 0.3, &mut rng);
        let mut net = Network::new(&g);
        let s = distributed_solomon(&mut net, 5);
        assert!(s.max_degree() <= 5);
    }
}
