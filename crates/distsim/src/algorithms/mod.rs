//! Distributed algorithms on the simulator.

pub mod coloring;
pub mod israeli_itai;
pub mod matching;
pub mod pipeline;
pub mod solomon;
pub mod sparsify;
