//! The one-round distributed sparsifier (Section 3.2, first paragraph).
//!
//! Each node locally marks Δ random ports (all of them if its degree is at
//! most the low-degree threshold) and sends a **1-bit** message along each
//! marked port — the unicast mode that gives Theorem 3.3 its sublinear
//! message complexity. The sparsifier is the set of edges carrying a mark
//! in either direction. No ids are exchanged, so the construction runs in
//! the `KT_0` model.

use crate::network::{Net, Outgoing};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Run the one-round sparsifier protocol. Returns the sparsified graph
/// (same vertex set). Nodes draw their randomness from per-node seeds
/// derived from `seed` (independent across nodes, as the analysis needs).
///
/// On a faulty transport a dropped mark shrinks the sparsifier (the edge
/// survives only if the sender's own mark is kept) and a duplicated mark
/// is harmless — the keep-set is a union, so the result is always a
/// subgraph of `G` and downstream matchings stay valid.
pub fn distributed_sparsifier<'g>(
    net: &mut impl Net<'g>,
    params: &SparsifierParams,
    seed: u64,
) -> CsrGraph {
    let g = net.graph();
    let n = g.num_vertices();
    let mut outboxes: Vec<Vec<Outgoing<()>>> = Vec::with_capacity(n);
    let mut sent_marks: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let vid = VertexId::new(v);
        let deg = g.degree(vid);
        let marks: Vec<u32> = if deg <= params.mark_cap() {
            (0..deg as u32).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15));
            sample(&mut rng, deg, params.delta)
                .into_iter()
                .map(|i| i as u32)
                .collect()
        };
        outboxes.push(marks.iter().map(|&p| (p as usize, (), 1u64)).collect());
        sent_marks.push(marks);
    }
    let inboxes = net.exchange(outboxes);

    // An edge is in G_Δ iff marked by either endpoint: each node keeps the
    // ports it marked plus the ports it heard a mark on.
    let graph = net.graph();
    let mut keep = Vec::new();
    for v in 0..n {
        let vid = VertexId::new(v);
        for &p in &sent_marks[v] {
            keep.push(graph.incident_edge(vid, p as usize));
        }
        for &(p, ()) in &inboxes[v] {
            keep.push(graph.incident_edge(vid, p));
        }
    }
    graph.edge_subgraph(keep.into_iter())
}

/// The broadcast-transmission variant (Section 3.2's first paragraph):
/// when a node cannot unicast, it broadcasts the *list of marked port
/// numbers* to all neighbors — one message per half-edge, of
/// `Δ·⌈log₂ deg⌉` bits. Same sparsifier, very different communication
/// profile: `2m` messages instead of `n·Δ`, and `O(Δ·log n)`-bit payloads
/// instead of 1 bit. Experiment E9 contrasts the two.
pub fn distributed_sparsifier_broadcast<'g>(
    net: &mut impl Net<'g>,
    params: &SparsifierParams,
    seed: u64,
) -> CsrGraph {
    let g = net.graph();
    let n = g.num_vertices();
    let mut sent_marks: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let vid = VertexId::new(v);
        let deg = g.degree(vid);
        let marks: Vec<u32> = if deg <= params.mark_cap() {
            (0..deg as u32).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15));
            sample(&mut rng, deg, params.delta)
                .into_iter()
                .map(|i| i as u32)
                .collect()
        };
        sent_marks.push(marks);
    }
    // Broadcast: every node sends its marked-port list on every port.
    let payloads: Vec<(Vec<u32>, u64)> = (0..n)
        .map(|v| {
            let deg = g.degree(VertexId::new(v)).max(2) as u64;
            let bits = sent_marks[v].len() as u64 * (64 - (deg - 1).leading_zeros() as u64);
            (sent_marks[v].clone(), bits)
        })
        .collect();
    let inboxes = net.broadcast_exchange(payloads);

    let graph = net.graph();
    let mut keep = Vec::new();
    for v in 0..n {
        let vid = VertexId::new(v);
        for &p in &sent_marks[v] {
            keep.push(graph.incident_edge(vid, p as usize));
        }
        // A neighbor's broadcast marks this edge iff our in-port appears
        // in its marked-port list.
        for &(in_port, ref their_marks) in &inboxes[v] {
            // in_port is the port at *v*; the mark refers to the sender's
            // port, which is exactly the port the message arrived through
            // from the sender's perspective — i.e. the peer port. Since
            // the sender broadcast on all ports, the edge is marked iff
            // the sender's port for this edge is in their list; that port
            // is the one this message traveled, seen from their side.
            // The exchange tags messages with the receiving port, so we
            // recover the sender-side port via the peer mapping.
            let u = graph.neighbor(vid, in_port);
            // Find the sender's port index for this edge.
            let e = graph.incident_edge(vid, in_port);
            let sender_port = (0..graph.degree(u))
                .find(|&i| graph.incident_edge(u, i) == e)
                .expect("edge present from both sides");
            if their_marks.contains(&(sender_port as u32)) {
                keep.push(e);
            }
        }
    }
    graph.edge_subgraph(keep.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use sparsimatch_graph::generators::{clique, clique_union, star, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn single_round_and_message_bound() {
        let g = clique(100);
        let mut net = Network::new(&g);
        let p = SparsifierParams::with_delta(1, 0.5, 4);
        let s = distributed_sparsifier(&mut net, &p, 7);
        let m = net.metrics();
        assert_eq!(m.rounds, 1, "the sparsifier is a one-round protocol");
        assert_eq!(m.messages, 400, "n·Δ one-bit messages");
        assert_eq!(m.bits, 400, "1 bit each");
        assert!(s.num_edges() <= 400);
        assert!(s.num_edges() >= 200);
    }

    #[test]
    fn low_degree_nodes_keep_their_whole_neighborhood() {
        let g = star(40);
        let mut net = Network::new(&g);
        let p = SparsifierParams::with_delta(1, 0.5, 3);
        let s = distributed_sparsifier(&mut net, &p, 1);
        assert_eq!(s.num_edges(), 39, "leaves mark their only edge");
    }

    #[test]
    fn sublinear_messages_on_dense_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 300,
                diversity: 2,
                clique_size: 100,
            },
            &mut rng,
        );
        let mut net = Network::new(&g);
        let p = SparsifierParams::with_delta(2, 0.5, 8);
        let _s = distributed_sparsifier(&mut net, &p, 3);
        let m = net.metrics();
        assert!(
            m.messages < g.num_edges() as u64,
            "{} messages vs m = {}",
            m.messages,
            g.num_edges()
        );
    }

    #[test]
    fn preserves_matching_approximately() {
        let g = clique(150);
        let mut net = Network::new(&g);
        let p = SparsifierParams::practical(1, 0.4);
        let s = distributed_sparsifier(&mut net, &p, 11);
        let exact = maximum_matching(&g).len();
        let sparse = maximum_matching(&s).len();
        assert!(sparse as f64 * 1.4 >= exact as f64, "{sparse} vs {exact}");
    }

    #[test]
    fn broadcast_variant_builds_same_sparsifier() {
        // Same seed => same marks => identical edge sets, despite the very
        // different wire format.
        let g = clique(80);
        let p = SparsifierParams::with_delta(1, 0.5, 4);
        let mut net_u = Network::new(&g);
        let uni = distributed_sparsifier(&mut net_u, &p, 99);
        let mut net_b = Network::new(&g);
        let bro = distributed_sparsifier_broadcast(&mut net_b, &p, 99);
        let eu: Vec<_> = uni.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let eb: Vec<_> = bro.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(eu, eb);
        // Communication profiles differ exactly as Section 3.2 says:
        // unicast n·Δ one-bit messages vs broadcast 2m fat messages.
        assert_eq!(net_u.metrics().messages, 80 * 4);
        assert_eq!(net_b.metrics().messages, 2 * g.num_edges() as u64);
        assert!(net_b.metrics().bits > net_u.metrics().bits);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = clique(60);
        let p = SparsifierParams::with_delta(1, 0.5, 3);
        let mut net1 = Network::new(&g);
        let s1 = distributed_sparsifier(&mut net1, &p, 42);
        let mut net2 = Network::new(&g);
        let s2 = distributed_sparsifier(&mut net2, &p, 42);
        let e1: Vec<_> = s1.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let e2: Vec<_> = s2.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(e1, e2);
    }
}
