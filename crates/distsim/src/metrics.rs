//! Round / message / bit accounting for the simulator.

use sparsimatch_obs::{keys, WorkMeter};

/// Communication metrics accumulated over a simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Synchronous communication rounds executed.
    pub rounds: u64,
    /// Unicast messages delivered (one per (edge, direction) with a
    /// non-empty payload in a round).
    pub messages: u64,
    /// Total payload bits delivered.
    pub bits: u64,
    /// Largest single-message payload observed, in bits — the CONGEST
    /// model demands this stays `O(log n)`.
    pub max_message_bits: u64,
    /// Payload clones the transport performed on the host (broadcast
    /// fan-out copies, duplicate deliveries, retained retransmit
    /// buffers). Pure host-side cost accounting — a unicast message on
    /// a perfect transport moves its payload and clones nothing.
    pub messages_cloned: u64,
}

impl Metrics {
    /// CONGEST compliance: every message fit in `c·⌈log₂ n⌉` bits.
    pub fn congest_compliant(&self, n: usize, c: u64) -> bool {
        let logn = (usize::BITS - n.max(2).leading_zeros()) as u64;
        self.max_message_bits <= c * logn
    }
}

impl Metrics {
    /// Zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Merge another metrics record into this one (rounds add too:
    /// sequential composition of protocol phases).
    pub fn absorb(&mut self, other: Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.messages_cloned += other.messages_cloned;
    }

    /// Mirror into the unified [`WorkMeter`] accounting: rounds, messages
    /// and bits accumulate; the largest message is a high-water maximum.
    pub fn mirror_into(&self, meter: &mut WorkMeter) {
        meter.add(keys::ROUNDS, self.rounds);
        meter.add(keys::MESSAGES, self.messages);
        meter.add(keys::MESSAGE_BITS, self.bits);
        meter.record_max(keys::MAX_MESSAGE_BITS, self.max_message_bits);
        meter.add(keys::MESSAGES_CLONED, self.messages_cloned);
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits",
            self.rounds, self.messages, self.bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fields() {
        let mut a = Metrics {
            rounds: 1,
            messages: 10,
            bits: 100,
            max_message_bits: 8,
            messages_cloned: 2,
        };
        a.absorb(Metrics {
            rounds: 2,
            messages: 5,
            bits: 7,
            max_message_bits: 32,
            messages_cloned: 3,
        });
        assert_eq!(
            a,
            Metrics {
                rounds: 3,
                messages: 15,
                bits: 107,
                max_message_bits: 32,
                messages_cloned: 5,
            }
        );
    }

    #[test]
    fn mirror_into_meter() {
        let m = Metrics {
            rounds: 2,
            messages: 30,
            bits: 240,
            max_message_bits: 16,
            messages_cloned: 7,
        };
        let mut meter = WorkMeter::new();
        m.mirror_into(&mut meter);
        m.mirror_into(&mut meter);
        assert_eq!(meter.get(keys::ROUNDS), 4);
        assert_eq!(meter.get(keys::MESSAGES), 60);
        assert_eq!(meter.get(keys::MESSAGE_BITS), 480);
        assert_eq!(meter.get_max(keys::MAX_MESSAGE_BITS), 16);
        assert_eq!(meter.get(keys::MESSAGES_CLONED), 14);
    }

    #[test]
    fn display_is_readable() {
        let m = Metrics {
            rounds: 2,
            messages: 3,
            bits: 4,
            max_message_bits: 4,
            messages_cloned: 0,
        };
        assert_eq!(m.to_string(), "2 rounds, 3 messages, 4 bits");
    }
}
