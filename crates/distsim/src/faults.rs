//! Deterministic fault injection for the simulated network.
//!
//! The paper's protocols make purely local, per-vertex decisions, which
//! should make them naturally tolerant to partial communication — this
//! module exists to *test* that claim instead of assuming it. A
//! [`FaultPlan`] is a pure function from a `u64` seed and a set of rates
//! to per-round fault decisions: message drops, duplications, within-round
//! inbox reorderings, and node crash/recover windows. A
//! [`FaultyNetwork`] wraps a topology with a plan and implements the same
//! [`Net`] interface as the perfect [`Network`], so every algorithm in
//! [`crate::algorithms`] runs unmodified over it.
//!
//! Design rules:
//!
//! * **Determinism.** Every fault decision is a hash of
//!   `(plan seed, kind, round, slot-or-node)` — two runs with the same
//!   `(algorithm seed, plan)` pair produce identical outputs, metrics,
//!   and fault counters. No global RNG, no iteration-order dependence.
//! * **Zero-fault transparency.** A [`FaultPlan::none`] plan with the
//!   default (disabled) [`ResilienceParams`] makes [`FaultyNetwork`]
//!   byte-identical to [`Network`]: same inboxes in the same order, same
//!   [`Metrics`], zero fault counters. Pinned by tests.
//! * **Honest accounting.** Sends are counted when the sender is up,
//!   whether or not delivery succeeds; ack/retry traffic from the
//!   resilience layer is charged as real rounds, messages, and bits.
//!
//! What the fault model does and does not promise is documented in
//! DESIGN.md §7 ("Fault model").

use crate::metrics::Metrics;
use crate::network::{Incoming, Net, Network, Outgoing};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_obs::{keys, WorkMeter};

/// Per-kind fault probabilities, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability that a message in transit is dropped.
    pub drop: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate: f64,
    /// Probability that a node's inbox is shuffled within a round.
    pub reorder: f64,
    /// Probability that a node is down for a given crash window.
    pub crash: f64,
}

impl FaultRates {
    fn validate(&self) {
        for (name, r) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("crash", self.crash),
        ] {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "fault rate {name} = {r} must be a probability in [0, 1]"
            );
        }
    }
}

/// Configuration of the per-edge ack + bounded-retry resilience layer.
///
/// With `max_retries == 0` (the default) the layer is off: one physical
/// round per logical [`Net::exchange`], losses are final. With
/// `max_retries == k > 0`, each logical exchange runs up to `1 + k`
/// send attempts, every attempt followed by an explicit ack round:
/// receivers ack each delivery along the reverse edge, senders retransmit
/// messages whose ack never arrived. Acks travel the same faulty links,
/// so a lost ack causes a (counted) duplicate delivery — the classic
/// at-least-once tradeoff. The round budget is therefore bounded by
/// `2·(1 + max_retries)` physical rounds per logical round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceParams {
    /// Retransmission attempts after the first send (0 disables the layer).
    pub max_retries: u32,
    /// Payload bits charged per ack message.
    pub ack_bits: u64,
}

impl ResilienceParams {
    /// Resilience disabled: one send, losses are final.
    pub fn off() -> Self {
        ResilienceParams {
            max_retries: 0,
            ack_bits: 1,
        }
    }

    /// Ack + retry with the given retransmission budget and 1-bit acks.
    pub fn retry(max_retries: u32) -> Self {
        ResilienceParams {
            max_retries,
            ack_bits: 1,
        }
    }

    /// Is the ack/retry protocol active?
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

impl Default for ResilienceParams {
    fn default() -> Self {
        ResilienceParams::off()
    }
}

/// Fault counters accumulated by a [`FaultyNetwork`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost: link drops plus messages suppressed or discarded
    /// because an endpoint was crashed (acks included).
    pub dropped: u64,
    /// Extra deliveries: injected duplications plus ack-loss retransmits
    /// that re-delivered an already-delivered message.
    pub duplicated: u64,
    /// Retransmissions performed by the resilience layer.
    pub retries: u64,
    /// Node-rounds spent crashed, summed over nodes and physical rounds.
    pub crashed_rounds: u64,
}

impl FaultStats {
    /// Merge another record into this one (all fields add).
    pub fn absorb(&mut self, other: FaultStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.retries += other.retries;
        self.crashed_rounds += other.crashed_rounds;
    }

    /// Mirror into the unified [`WorkMeter`] accounting.
    pub fn mirror_into(&self, meter: &mut WorkMeter) {
        meter.add(keys::FAULTS_DROPPED, self.dropped);
        meter.add(keys::FAULTS_DUPLICATED, self.duplicated);
        meter.add(keys::FAULTS_RETRIES, self.retries);
        meter.add(keys::FAULTS_CRASHED_ROUNDS, self.crashed_rounds);
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} dropped, {} duplicated, {} retries, {} crashed node-rounds",
            self.dropped, self.duplicated, self.retries, self.crashed_rounds
        )
    }
}

// splitmix64 finalizer: the workhorse behind every fault decision.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn hash3(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    mix(mix(mix(seed ^ salt) ^ a) ^ b)
}

/// Convert a probability to a 65-bit threshold so that `hash < threshold`
/// holds with probability exactly 0 at `p = 0` and exactly 1 at `p = 1`.
fn threshold(p: f64) -> u128 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        1u128 << 64
    } else {
        (p * (1u128 << 64) as f64) as u128
    }
}

const DROP_SALT: u64 = 0xD20F;
const DUP_SALT: u64 = 0xD0B1;
const REORDER_SALT: u64 = 0x5EED;
const CRASH_SALT: u64 = 0xC5A5;

/// A deterministic schedule of faults, built from a seed and rates.
///
/// All decisions are exposed as pure queries so tests (and the sweep
/// experiment) can inspect the schedule without running a network.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    drop: u128,
    duplicate: u128,
    reorder: u128,
    crash: u128,
    /// Length of one crash window in rounds: a node is down or up for a
    /// whole window, redrawing at every window boundary (crash/recover).
    crash_period: u64,
    /// Faults are injected only in physical rounds `1..=horizon`; later
    /// rounds deliver perfectly. A finite horizon models a bounded
    /// disruption and guarantees the retry layer eventually wins.
    horizon: u64,
    /// Nodes that are down in every round, horizon or not (sorted).
    perm_crashed: Vec<u32>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. [`FaultyNetwork`] under this plan
    /// is byte-identical to [`Network`].
    pub fn none() -> Self {
        FaultPlan::new(0, FaultRates::default())
    }

    /// Build a plan from a seed and rates. Faults apply at every round
    /// (`horizon = u64::MAX`) until bounded via [`FaultPlan::with_horizon`].
    ///
    /// # Panics
    /// Panics if any rate is not a probability in `[0, 1]` — plans are
    /// constructed programmatically; the CLI validates rates into typed
    /// errors before reaching this point.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        rates.validate();
        FaultPlan {
            seed,
            drop: threshold(rates.drop),
            duplicate: threshold(rates.duplicate),
            reorder: threshold(rates.reorder),
            crash: threshold(rates.crash),
            crash_period: 8,
            horizon: u64::MAX,
            perm_crashed: Vec::new(),
        }
    }

    /// Restrict fault injection to physical rounds `1..=horizon`.
    /// Permanently crashed nodes stay down regardless.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Set the crash window length (default 8 rounds; must be nonzero).
    pub fn with_crash_period(mut self, period: u64) -> Self {
        assert!(period > 0, "crash period must be nonzero");
        self.crash_period = period;
        self
    }

    /// Mark nodes as crashed for the whole run (never recover).
    pub fn with_crashed_nodes(mut self, nodes: impl IntoIterator<Item = u32>) -> Self {
        self.perm_crashed.extend(nodes);
        self.perm_crashed.sort_unstable();
        self.perm_crashed.dedup();
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does this plan inject no faults at all?
    pub fn is_zero_fault(&self) -> bool {
        self.drop == 0
            && self.duplicate == 0
            && self.reorder == 0
            && self.crash == 0
            && self.perm_crashed.is_empty()
    }

    /// Can this plan ever take a node down?
    pub fn has_crashes(&self) -> bool {
        self.crash != 0 || !self.perm_crashed.is_empty()
    }

    /// Nodes that never come up under this plan.
    pub fn permanently_crashed(&self) -> &[u32] {
        &self.perm_crashed
    }

    #[inline]
    fn chance(&self, salt: u64, a: u64, b: u64, threshold: u128) -> bool {
        threshold != 0 && (hash3(self.seed, salt, a, b) as u128) < threshold
    }

    /// Is `node` down during physical round `round` (1-based)?
    pub fn is_down(&self, node: u32, round: u64) -> bool {
        if self.perm_crashed.binary_search(&node).is_ok() {
            return true;
        }
        round <= self.horizon
            && self.chance(
                CRASH_SALT,
                node as u64,
                (round - 1) / self.crash_period,
                self.crash,
            )
    }

    /// Is the message on half-edge `slot` dropped in `round`?
    pub fn message_dropped(&self, round: u64, slot: u64) -> bool {
        round <= self.horizon && self.chance(DROP_SALT, round, slot, self.drop)
    }

    /// Is the message on half-edge `slot` duplicated in `round`?
    pub fn message_duplicated(&self, round: u64, slot: u64) -> bool {
        round <= self.horizon && self.chance(DUP_SALT, round, slot, self.duplicate)
    }

    /// Shuffle `node`'s inbox for the logical round starting at physical
    /// round `round`, if the plan says so (deterministic Fisher–Yates).
    pub fn maybe_shuffle<T>(&self, round: u64, node: u32, items: &mut [T]) {
        if items.len() < 2
            || round > self.horizon
            || !self.chance(REORDER_SALT, round, node as u64, self.reorder)
        {
            return;
        }
        let mut state = hash3(self.seed, REORDER_SALT ^ 0xFF, round, node as u64);
        for i in (1..items.len()).rev() {
            state = mix(state);
            let j = (state % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// A [`Net`] transport that injects the faults of a [`FaultPlan`] and
/// optionally runs the ack/retry resilience protocol of
/// [`ResilienceParams`] under every logical exchange.
pub struct FaultyNetwork<'g> {
    inner: Network<'g>,
    plan: FaultPlan,
    resilience: ResilienceParams,
    metrics: Metrics,
    faults: FaultStats,
}

pub(crate) struct Pending<M> {
    pub(crate) sender: VertexId,
    pub(crate) dest: VertexId,
    pub(crate) in_port: usize,
    pub(crate) slot: u64,
    pub(crate) back_slot: u64,
    /// `Some` until the payload is moved to its receiver. The resilience
    /// layer retains the payload (cloning per delivery) so it can
    /// retransmit; without resilience the single delivery takes it.
    pub(crate) payload: Option<M>,
    pub(crate) bits: u64,
    pub(crate) deliveries: u32,
    pub(crate) acked: bool,
}

impl<M: Clone> Pending<M> {
    /// Hand out the payload for one delivery. Retaining transports clone
    /// (and say so via the returned flag); the final delivery moves.
    pub(crate) fn payload_for_delivery(&mut self, retain: bool) -> (M, bool) {
        if retain {
            (self.payload.clone().expect("payload retained"), true)
        } else {
            (self.payload.take().expect("payload delivered once"), false)
        }
    }
}

impl<'g> FaultyNetwork<'g> {
    /// Wrap a topology with a fault plan; resilience off.
    pub fn new(graph: &'g CsrGraph, plan: FaultPlan) -> Self {
        FaultyNetwork::with_resilience(graph, plan, ResilienceParams::off())
    }

    /// Wrap a topology with a fault plan and a resilience configuration.
    pub fn with_resilience(
        graph: &'g CsrGraph,
        plan: FaultPlan,
        resilience: ResilienceParams,
    ) -> Self {
        FaultyNetwork {
            inner: Network::new(graph),
            plan,
            resilience,
            metrics: Metrics::new(),
            faults: FaultStats::default(),
        }
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The resilience configuration in force.
    pub fn resilience(&self) -> ResilienceParams {
        self.resilience
    }

    /// Fault counters accumulated so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Communication metrics accumulated so far (inherent mirror of the
    /// trait method, so concrete holders need no trait import).
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    fn account_crashes(&mut self, round: u64) {
        if !self.plan.has_crashes() {
            return;
        }
        let n = self.inner.num_nodes() as u32;
        self.faults.crashed_rounds +=
            (0..n).filter(|&v| self.plan.is_down(v, round)).count() as u64;
    }
}

impl<'g> Net<'g> for FaultyNetwork<'g> {
    fn graph(&self) -> &'g CsrGraph {
        self.inner.graph()
    }

    fn metrics(&self) -> Metrics {
        self.metrics
    }

    fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        let graph = self.inner.graph();
        let n = graph.num_vertices();
        assert_eq!(outboxes.len(), n);
        // Flatten in (sender, outbox-order) — the order Network delivers
        // in, so the zero-fault path is byte-identical.
        let mut pending: Vec<Pending<M>> = Vec::new();
        for (v, outbox) in outboxes.into_iter().enumerate() {
            let v = VertexId::new(v);
            for (port, payload, bits) in outbox {
                assert!(port < graph.degree(v), "port out of range");
                let dest = graph.neighbor(v, port);
                let in_port = self.inner.in_port(v, port);
                pending.push(Pending {
                    sender: v,
                    dest,
                    in_port,
                    slot: self.inner.slot_of(v, port) as u64,
                    back_slot: self.inner.slot_of(dest, in_port) as u64,
                    payload: Some(payload),
                    bits,
                    deliveries: 0,
                    acked: false,
                });
            }
        }

        let logical_round = self.metrics.rounds + 1;
        let mut inboxes: Vec<Vec<Incoming<M>>> = vec![Vec::new(); n];
        let attempts = 1 + if self.resilience.enabled() {
            self.resilience.max_retries
        } else {
            0
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                let outstanding = pending.iter().filter(|m| !m.acked).count() as u64;
                if outstanding == 0 {
                    break;
                }
                self.faults.retries += outstanding;
            }
            // Send round.
            self.metrics.rounds += 1;
            let round = self.metrics.rounds;
            self.account_crashes(round);
            let mut delivered_now: Vec<usize> = Vec::new();
            for (i, msg) in pending.iter_mut().enumerate() {
                if msg.acked {
                    continue;
                }
                if self.plan.is_down(msg.sender.0, round) {
                    // A crashed node sends nothing; the message is lost
                    // unless a later retry finds the node back up.
                    self.faults.dropped += 1;
                    continue;
                }
                self.metrics.messages += 1;
                self.metrics.bits += msg.bits;
                self.metrics.max_message_bits = self.metrics.max_message_bits.max(msg.bits);
                if self.plan.is_down(msg.dest.0, round)
                    || self.plan.message_dropped(round, msg.slot)
                {
                    self.faults.dropped += 1;
                    continue;
                }
                let dup = self.plan.message_duplicated(round, msg.slot);
                // Retain the payload whenever another delivery may still
                // need it: a retransmit (resilience) or the dup below.
                let (payload, cloned) = msg.payload_for_delivery(self.resilience.enabled() || dup);
                self.metrics.messages_cloned += cloned as u64;
                inboxes[msg.dest.index()].push((msg.in_port, payload));
                if msg.deliveries > 0 {
                    // Ack-loss retransmit: the receiver sees it twice.
                    self.faults.duplicated += 1;
                }
                msg.deliveries += 1;
                if dup {
                    let (payload, cloned) = msg.payload_for_delivery(self.resilience.enabled());
                    self.metrics.messages_cloned += cloned as u64;
                    inboxes[msg.dest.index()].push((msg.in_port, payload));
                    msg.deliveries += 1;
                    self.faults.duplicated += 1;
                }
                delivered_now.push(i);
            }
            if !self.resilience.enabled() {
                break;
            }
            // Ack round: each delivery is acked along the reverse edge;
            // acks travel the same faulty links.
            self.metrics.rounds += 1;
            let ack_round = self.metrics.rounds;
            self.account_crashes(ack_round);
            for i in delivered_now {
                let msg = &mut pending[i];
                if self.plan.is_down(msg.dest.0, ack_round) {
                    continue; // acker is down: no ack was sent at all
                }
                self.metrics.messages += 1;
                self.metrics.bits += self.resilience.ack_bits;
                self.metrics.max_message_bits =
                    self.metrics.max_message_bits.max(self.resilience.ack_bits);
                if self.plan.is_down(msg.sender.0, ack_round)
                    || self.plan.message_dropped(ack_round, msg.back_slot)
                {
                    self.faults.dropped += 1;
                    continue;
                }
                msg.acked = true;
            }
            if pending.iter().all(|m| m.acked) {
                break;
            }
        }
        // Within-round reordering, keyed by the logical round so retries
        // do not change which inboxes get shuffled.
        for (v, inbox) in inboxes.iter_mut().enumerate() {
            self.plan.maybe_shuffle(logical_round, v as u32, inbox);
        }
        inboxes
    }

    fn charge_gather(&mut self, radius: usize, bits_per_message: u64) {
        // Same totals as Network::charge_gather, with per-round crash
        // accounting. Gathers are bulk transfers read off the master
        // graph; the fault model reflects crashes by shrinking the balls
        // (see `ball`), not by corrupting their content.
        let m2 = 2 * self.inner.graph().num_edges() as u64;
        for _ in 0..radius {
            self.metrics.rounds += 1;
            let round = self.metrics.rounds;
            self.account_crashes(round);
        }
        self.metrics.messages += radius as u64 * m2;
        self.metrics.bits += radius as u64 * m2 * bits_per_message;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits_per_message);
    }

    fn record_clones(&mut self, count: u64) {
        self.metrics.messages_cloned += count;
    }

    fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId> {
        if !self.plan.has_crashes() {
            return self.inner.ball(v, radius);
        }
        // Evaluated at the current round (the last charged gather round).
        crash_aware_ball(
            self.inner.graph(),
            &self.plan,
            self.metrics.rounds.max(1),
            v,
            radius,
        )
    }

    fn lossless(&self) -> bool {
        self.plan.is_zero_fault()
    }
}

/// The radius-`r` ball around `v` as a crash-afflicted gather delivers it:
/// crashed nodes neither forward nor reply, so they (and everything
/// reachable only through them) are absent. A down origin knows only
/// itself. Shared by [`FaultyNetwork`] and the sharded transport so the
/// two report identical balls at identical rounds.
pub(crate) fn crash_aware_ball(
    g: &CsrGraph,
    plan: &FaultPlan,
    round: u64,
    v: VertexId,
    radius: usize,
) -> Vec<VertexId> {
    let mut out = vec![v];
    if plan.is_down(v.0, round) {
        return out; // a down node knows only itself
    }
    let mut dist = std::collections::HashMap::new();
    dist.insert(v, 0usize);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du == radius {
            continue;
        }
        for w in g.neighbors(u) {
            if plan.is_down(w.0, round) {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(du + 1);
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{clique, path, star};

    fn all_broadcast(n: usize, g: &CsrGraph) -> Vec<Vec<Outgoing<u32>>> {
        (0..n)
            .map(|v| {
                let vid = VertexId::new(v);
                (0..g.degree(vid)).map(|p| (p, v as u32, 8u64)).collect()
            })
            .collect()
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_network() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let mut perfect = Network::new(&g);
        let mut faulty = FaultyNetwork::new(&g, FaultPlan::none());
        for round in 0..4 {
            let out = all_broadcast(6, &g);
            let a = perfect.exchange(out.clone());
            let b = Net::exchange(&mut faulty, out);
            assert_eq!(a, b, "round {round}: inboxes must match exactly");
            assert_eq!(perfect.metrics(), Net::metrics(&faulty));
        }
        perfect.charge_gather(3, 16);
        Net::charge_gather(&mut faulty, 3, 16);
        assert_eq!(perfect.metrics(), Net::metrics(&faulty));
        assert_eq!(faulty.fault_stats(), FaultStats::default());
        assert!(Net::lossless(&faulty));
    }

    #[test]
    fn drop_rate_one_loses_everything_without_resilience() {
        let g = star(5);
        let rates = FaultRates {
            drop: 1.0,
            ..Default::default()
        };
        let mut net = FaultyNetwork::new(&g, FaultPlan::new(3, rates));
        let inboxes = Net::exchange(&mut net, all_broadcast(5, &g));
        assert!(inboxes.iter().all(|i| i.is_empty()));
        // Sends are still counted: the work happened, delivery failed.
        assert_eq!(Net::metrics(&net).messages, 8);
        assert_eq!(net.fault_stats().dropped, 8);
        assert!(!Net::lossless(&net));
    }

    #[test]
    fn retry_past_the_horizon_recovers_every_message() {
        // drop = 1 inside the horizon, perfect after: attempt 1 (round 1)
        // loses all 8 messages, attempt 2 (round 3) delivers and acks all.
        let g = star(5);
        let rates = FaultRates {
            drop: 1.0,
            ..Default::default()
        };
        let plan = FaultPlan::new(7, rates).with_horizon(1);
        let mut net = FaultyNetwork::with_resilience(&g, plan, ResilienceParams::retry(2));
        let inboxes = Net::exchange(&mut net, all_broadcast(5, &g));
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 8, "all messages recovered by the retry");
        let stats = net.fault_stats();
        assert_eq!(stats.dropped, 8, "first attempt lost all 8");
        assert_eq!(stats.retries, 8, "all 8 retransmitted once");
        assert_eq!(stats.duplicated, 0);
        // Rounds: send + ack, retry send + ack.
        assert_eq!(Net::metrics(&net).rounds, 4);
    }

    #[test]
    fn duplication_rate_one_doubles_every_delivery() {
        let g = path(3);
        let rates = FaultRates {
            duplicate: 1.0,
            ..Default::default()
        };
        let mut net = FaultyNetwork::new(&g, FaultPlan::new(1, rates));
        let inboxes = Net::exchange(&mut net, all_broadcast(3, &g));
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 8, "4 half-edge messages, each doubled");
        assert_eq!(net.fault_stats().duplicated, 4);
        // Duplicates carry the same in-port and payload.
        assert_eq!(inboxes[0].len(), 2);
        assert_eq!(inboxes[0][0], inboxes[0][1]);
    }

    #[test]
    fn permanently_crashed_nodes_neither_send_nor_receive() {
        let g = star(4); // center 0, leaves 1..=3
        let plan = FaultPlan::none().with_crashed_nodes([1]);
        let mut net = FaultyNetwork::new(&g, plan);
        let inboxes = Net::exchange(&mut net, all_broadcast(4, &g));
        // Leaf 1's message to the center is suppressed; the center's
        // message to leaf 1 is lost in transit.
        assert_eq!(inboxes[0].len(), 2, "center hears leaves 2 and 3 only");
        assert!(inboxes[1].is_empty(), "crashed leaf receives nothing");
        assert_eq!(inboxes[2].len(), 1);
        assert_eq!(net.fault_stats().dropped, 2);
        assert_eq!(net.fault_stats().crashed_rounds, 1);
        assert!(net.plan().is_down(1, 999), "permanent means permanent");
    }

    #[test]
    fn crashed_nodes_vanish_from_gathered_balls() {
        let g = path(5); // 0-1-2-3-4
        let plan = FaultPlan::none().with_crashed_nodes([2]);
        let mut net = FaultyNetwork::new(&g, plan);
        Net::charge_gather(&mut net, 4, 8);
        let ball: Vec<u32> = Net::ball(&net, VertexId(0), 4)
            .into_iter()
            .map(|v| v.0)
            .collect();
        // Vertex 2 is down, so 3 and 4 are unreachable too.
        assert_eq!(ball, vec![0, 1]);
        let own: Vec<u32> = Net::ball(&net, VertexId(2), 4)
            .into_iter()
            .map(|v| v.0)
            .collect();
        assert_eq!(own, vec![2], "a down node knows only itself");
    }

    #[test]
    fn reorder_shuffles_deterministically_and_preserves_content() {
        let g = clique(6);
        let rates = FaultRates {
            reorder: 1.0,
            ..Default::default()
        };
        let run = || {
            let mut net = FaultyNetwork::new(&g, FaultPlan::new(11, rates));
            Net::exchange(&mut net, all_broadcast(6, &g))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same (seed, plan) => same shuffles");
        // Same multiset as the perfect network, different order somewhere.
        let mut perfect = Network::new(&g);
        let p = perfect.exchange(all_broadcast(6, &g));
        let mut any_reordered = false;
        for v in 0..6 {
            let mut sa = a[v].clone();
            let mut sp = p[v].clone();
            if sa != sp {
                any_reordered = true;
            }
            sa.sort_unstable();
            sp.sort_unstable();
            assert_eq!(sa, sp, "reordering must not lose or invent messages");
        }
        assert!(any_reordered, "rate-1 reorder should shuffle something");
    }

    #[test]
    fn crash_windows_recover() {
        // With a moderate crash rate and 1-round windows, some node must
        // be observed both down and up across a long schedule.
        let plan = FaultPlan::new(5, {
            FaultRates {
                crash: 0.3,
                ..Default::default()
            }
        })
        .with_crash_period(1);
        let mut saw_down = false;
        let mut saw_flip = false;
        for node in 0..8u32 {
            let mut prev = None;
            for round in 1..=64u64 {
                let down = plan.is_down(node, round);
                saw_down |= down;
                if let Some(p) = prev {
                    saw_flip |= p != down;
                }
                prev = Some(down);
            }
        }
        assert!(saw_down, "crash rate 0.3 over 8x64 node-rounds hits");
        assert!(saw_flip, "windows must recover, not stick");
    }

    #[test]
    fn fault_decisions_respect_the_horizon() {
        let rates = FaultRates {
            drop: 1.0,
            duplicate: 1.0,
            reorder: 1.0,
            crash: 1.0,
        };
        let plan = FaultPlan::new(9, rates).with_horizon(5);
        assert!(plan.message_dropped(5, 0));
        assert!(!plan.message_dropped(6, 0));
        assert!(plan.message_duplicated(5, 3));
        assert!(!plan.message_duplicated(6, 3));
        assert!(plan.is_down(5, 5));
        assert!(!plan.is_down(5, 6));
        let mut items = vec![1, 2, 3];
        plan.maybe_shuffle(6, 0, &mut items);
        assert_eq!(items, vec![1, 2, 3], "no reordering past the horizon");
    }

    #[test]
    fn stats_absorb_and_mirror() {
        let mut a = FaultStats {
            dropped: 1,
            duplicated: 2,
            retries: 3,
            crashed_rounds: 4,
        };
        a.absorb(FaultStats {
            dropped: 10,
            duplicated: 20,
            retries: 30,
            crashed_rounds: 40,
        });
        let mut meter = WorkMeter::new();
        a.mirror_into(&mut meter);
        assert_eq!(meter.get(keys::FAULTS_DROPPED), 11);
        assert_eq!(meter.get(keys::FAULTS_DUPLICATED), 22);
        assert_eq!(meter.get(keys::FAULTS_RETRIES), 33);
        assert_eq!(meter.get(keys::FAULTS_CRASHED_ROUNDS), 44);
        assert_eq!(
            a.to_string(),
            "11 dropped, 22 duplicated, 33 retries, 44 crashed node-rounds"
        );
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn non_probability_rates_are_rejected() {
        let _ = FaultPlan::new(0, {
            FaultRates {
                drop: f64::NAN,
                ..Default::default()
            }
        });
    }
}
