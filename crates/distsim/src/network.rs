//! The simulated network: a graph of nodes exchanging port-addressed
//! messages in synchronous rounds.
//!
//! Ports follow the standard distributed-computing convention: vertex `v`
//! talks through ports `0..deg(v)`, port `i` being its `i`-th incident
//! edge. Nodes address neighbors by port, never by id (the `KT_0`
//! assumption the paper's sparsifier needs); ids exist only as symmetry-
//! breaking input to the coloring algorithms, as in the LOCAL model.

use crate::metrics::Metrics;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// A message emitted by a node in one round: (out-port, payload, bits).
pub type Outgoing<M> = (usize, M, u64);

/// A message received by a node: (in-port, payload).
pub type Incoming<M> = (usize, M);

/// The common interface of the perfect [`Network`] and the fault-injecting
/// [`crate::faults::FaultyNetwork`].
///
/// Algorithms written against this trait run unmodified over either
/// transport: a perfect network delivers every message exactly once per
/// round, a faulty one may drop, duplicate, or reorder messages and take
/// extra (accounted) rounds for ack/retry resilience. The `'g` parameter
/// is the lifetime of the underlying topology, so `graph()` borrows the
/// graph rather than the network and callers can hold topology references
/// across accounted rounds.
///
/// `Sync` is a supertrait because the LOCAL augmentation phase fans its
/// per-node ball computations out over threads holding `&N`.
pub trait Net<'g>: Sync {
    /// The underlying topology.
    fn graph(&self) -> &'g CsrGraph;

    /// Communication metrics accumulated so far.
    fn metrics(&self) -> Metrics;

    /// One logical synchronous round: every node's outbox is handed to the
    /// transport for delivery. `outboxes[v]` lists `(port, payload, bits)`.
    ///
    /// # Panics
    /// Panics if `outboxes.len() != num_nodes()` or any entry names a port
    /// `>= deg(v)` — a malformed outbox is an algorithm bug, not a network
    /// fault, so every transport rejects it identically.
    fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>>;

    /// Charge the canonical LOCAL "gather your radius-`r` ball" primitive
    /// (see [`Network::charge_gather`]).
    fn charge_gather(&mut self, radius: usize, bits_per_message: u64);

    /// Account `count` host-side payload clones against this transport's
    /// [`Metrics::messages_cloned`]. Unicast delivery moves payloads and
    /// never calls this; broadcast fan-out, duplicate deliveries, and
    /// retained retransmit buffers do.
    fn record_clones(&mut self, count: u64);

    /// Collect the radius-`r` ball around `v` as the transport would
    /// deliver it (a faulty transport omits crashed nodes).
    fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId>;

    /// Number of nodes.
    fn num_nodes(&self) -> usize {
        self.graph().num_vertices()
    }

    /// The neighbor reached through `(v, port)`.
    fn peer(&self, v: VertexId, port: usize) -> VertexId {
        self.graph().neighbor(v, port)
    }

    /// Broadcast convenience: every node sends the same payload on all its
    /// ports (the broadcast transmission mode of Section 3.2). The fan-out
    /// performs `deg(v) - 1` payload clones per speaking node (the last
    /// port takes the original by value), accounted via
    /// [`Net::record_clones`].
    fn broadcast_exchange<M: Clone + Send>(
        &mut self,
        payloads: Vec<(M, u64)>,
    ) -> Vec<Vec<Incoming<M>>> {
        let graph = self.graph();
        let (outboxes, clones) = broadcast_outboxes(graph, payloads);
        self.record_clones(clones);
        self.exchange(outboxes)
    }

    /// Whether this transport guarantees exactly-once, in-order delivery
    /// to every node. Algorithms use it to gate *optional* self-checks
    /// (maximality, properness) that only hold under perfect delivery;
    /// their safety invariants (matching validity) never depend on it.
    fn lossless(&self) -> bool {
        true
    }
}

/// Expand per-node broadcast payloads into per-port outboxes, cloning the
/// payload for all ports but the last (which takes it by value). Returns
/// the outboxes and the number of clones performed, so every transport's
/// broadcast costs the same host-side copies.
pub(crate) fn broadcast_outboxes<M: Clone>(
    graph: &CsrGraph,
    payloads: Vec<(M, u64)>,
) -> (Vec<Vec<Outgoing<M>>>, u64) {
    let mut clones = 0u64;
    let outboxes = payloads
        .into_iter()
        .enumerate()
        .map(|(v, (payload, bits))| {
            let deg = graph.degree(VertexId::new(v));
            let mut out: Vec<Outgoing<M>> = Vec::with_capacity(deg);
            for p in 0..deg.saturating_sub(1) {
                out.push((p, payload.clone(), bits));
                clones += 1;
            }
            if deg > 0 {
                out.push((deg - 1, payload, bits));
            }
            out
        })
        .collect();
    (outboxes, clones)
}

/// The simulated network over a fixed topology.
///
/// ```
/// use sparsimatch_distsim::Network;
/// use sparsimatch_graph::generators::path;
///
/// let g = path(3); // 0 - 1 - 2
/// let mut net = Network::new(&g);
/// // Vertex 0 sends one 8-bit message to its only neighbor.
/// let mut out: Vec<Vec<(usize, u32, u64)>> = vec![vec![]; 3];
/// out[0].push((0, 42, 8));
/// let inboxes = net.exchange(out);
/// assert_eq!(inboxes[1].iter().map(|&(_, m)| m).collect::<Vec<_>>(), vec![42]);
/// assert_eq!(net.metrics().rounds, 1);
/// assert_eq!(net.metrics().bits, 8);
/// ```
pub struct Network<'g> {
    graph: &'g CsrGraph,
    /// For the half-edge at global CSR slot `s` (vertex `u`, port `i`),
    /// `peer_port[s]` is the port index of the same edge at the other
    /// endpoint.
    peer_port: Vec<u32>,
    /// Global slot offset of each vertex (mirror of CSR offsets).
    offsets: Vec<usize>,
    metrics: Metrics,
}

impl<'g> Network<'g> {
    /// Wrap a topology.
    pub fn new(graph: &'g CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + graph.degree(VertexId::new(v)));
        }
        // slot_of_edge[e] = (slot at smaller endpoint, slot at larger endpoint)
        let mut slot_small = vec![u32::MAX; graph.num_edges()];
        let mut slot_large = vec![u32::MAX; graph.num_edges()];
        for v in 0..n {
            let v = VertexId::new(v);
            for (i, (u, e)) in graph.incident(v).enumerate() {
                if v.0 < u.0 {
                    slot_small[e.index()] = i as u32;
                } else {
                    slot_large[e.index()] = i as u32;
                }
            }
        }
        let mut peer_port = vec![0u32; 2 * graph.num_edges()];
        for v in 0..n {
            let v = VertexId::new(v);
            for (i, (u, e)) in graph.incident(v).enumerate() {
                peer_port[offsets[v.index()] + i] = if v.0 < u.0 {
                    slot_large[e.index()]
                } else {
                    slot_small[e.index()]
                };
            }
        }
        Network {
            graph,
            peer_port,
            offsets,
            metrics: Metrics::new(),
        }
    }

    /// The underlying topology. The returned reference borrows the graph
    /// itself (lifetime `'g`), not the network, so callers can hold it
    /// across accounted rounds.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// The neighbor reached through `(v, port)`.
    pub fn peer(&self, v: VertexId, port: usize) -> VertexId {
        self.graph.neighbor(v, port)
    }

    /// The port index of the edge `(v, port)` at the *other* endpoint:
    /// a message sent on `(v, port)` arrives tagged with this in-port.
    ///
    /// # Panics
    /// Panics if `port >= deg(v)`.
    pub fn in_port(&self, v: VertexId, port: usize) -> usize {
        assert!(port < self.graph.degree(v), "port out of range");
        self.peer_port[self.offsets[v.index()] + port] as usize
    }

    /// Global half-edge slot of `(v, port)` — a dense id in `0..2m`, used
    /// by the fault layer to key deterministic per-message decisions.
    pub(crate) fn slot_of(&self, v: VertexId, port: usize) -> usize {
        self.offsets[v.index()] + port
    }

    /// The routing tables shared with the sharded transport:
    /// (per-vertex slot offsets, peer-port per half-edge slot).
    pub(crate) fn tables(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.peer_port)
    }

    /// One synchronous round: every node's outbox is delivered to the
    /// corresponding peer's inbox (tagged with the receiving port).
    /// `outboxes[v]` lists `(port, payload, payload_bits)`.
    ///
    /// # Panics
    /// Panics if `outboxes.len() != num_nodes()` or an entry names a port
    /// `>= deg(v)`: outboxes are produced by the simulated algorithm, not
    /// by the (possibly adversarial) environment, so a bad port is a
    /// protocol bug and fails loudly instead of being dropped.
    pub fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        assert_eq!(outboxes.len(), self.num_nodes());
        self.metrics.rounds += 1;
        let mut inboxes: Vec<Vec<Incoming<M>>> = vec![Vec::new(); self.num_nodes()];
        for (v, outbox) in outboxes.into_iter().enumerate() {
            let v = VertexId::new(v);
            for (port, payload, bits) in outbox {
                assert!(port < self.graph.degree(v), "port out of range");
                let u = self.graph.neighbor(v, port);
                let in_port = self.peer_port[self.offsets[v.index()] + port] as usize;
                self.metrics.messages += 1;
                self.metrics.bits += bits;
                self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
                inboxes[u.index()].push((in_port, payload));
            }
        }
        inboxes
    }

    /// Broadcast convenience: every node sends the same payload on all its
    /// ports (the broadcast transmission mode of Section 3.2). Performs
    /// `deg(v) - 1` payload clones per speaking node, counted in
    /// [`Metrics::messages_cloned`].
    pub fn broadcast_exchange<M: Clone + Send>(
        &mut self,
        payloads: Vec<(M, u64)>,
    ) -> Vec<Vec<Incoming<M>>> {
        let (outboxes, clones) = broadcast_outboxes(self.graph, payloads);
        self.metrics.messages_cloned += clones;
        self.exchange(outboxes)
    }

    /// Charge the canonical LOCAL "gather your radius-`r` ball" primitive:
    /// `r` rounds in which every vertex forwards everything it knows on
    /// every port. Messages: `r · 2m`; bits: caller-supplied estimate of
    /// the per-message payload (e.g. the ball's edge count × bits/edge).
    ///
    /// The ball content itself is then read off the master graph by the
    /// caller — an accounting-faithful shortcut (the protocol would deliver
    /// exactly that information in `r` rounds).
    pub fn charge_gather(&mut self, radius: usize, bits_per_message: u64) {
        let m2 = 2 * self.graph.num_edges() as u64;
        self.metrics.rounds += radius as u64;
        self.metrics.messages += radius as u64 * m2;
        self.metrics.bits += radius as u64 * m2 * bits_per_message;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits_per_message);
    }

    /// Collect the radius-`r` ball around `v`: vertices at distance ≤ r.
    /// Pure topology helper (pair with [`Network::charge_gather`] for
    /// accounting).
    pub fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId> {
        let mut dist = std::collections::HashMap::new();
        dist.insert(v, 0usize);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(v);
        let mut out = vec![v];
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == radius {
                continue;
            }
            for w in self.graph.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(du + 1);
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out
    }
}

impl<'g> Net<'g> for Network<'g> {
    fn graph(&self) -> &'g CsrGraph {
        Network::graph(self)
    }

    fn metrics(&self) -> Metrics {
        Network::metrics(self)
    }

    fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        Network::exchange(self, outboxes)
    }

    fn charge_gather(&mut self, radius: usize, bits_per_message: u64) {
        Network::charge_gather(self, radius, bits_per_message)
    }

    fn record_clones(&mut self, count: u64) {
        self.metrics.messages_cloned += count;
    }

    fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId> {
        Network::ball(self, v, radius)
    }

    fn num_nodes(&self) -> usize {
        Network::num_nodes(self)
    }

    fn peer(&self, v: VertexId, port: usize) -> VertexId {
        Network::peer(self, v, port)
    }

    fn broadcast_exchange<M: Clone + Send>(
        &mut self,
        payloads: Vec<(M, u64)>,
    ) -> Vec<Vec<Incoming<M>>> {
        Network::broadcast_exchange(self, payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{cycle, path, star};

    #[test]
    fn peer_ports_are_inverse() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let net = Network::new(&g);
        for v in 0..5 {
            let v = VertexId::new(v);
            for port in 0..g.degree(v) {
                let u = net.peer(v, port);
                let back = net.peer_port[net.offsets[v.index()] + port] as usize;
                assert_eq!(net.peer(u, back), v, "peer port must point back");
            }
        }
    }

    #[test]
    fn exchange_delivers_and_counts() {
        let g = path(3); // 0-1-2
        let mut net = Network::new(&g);
        // Vertex 0 sends "7" to its only neighbor (1).
        let mut out: Vec<Vec<Outgoing<u32>>> = vec![vec![]; 3];
        out[0].push((0, 7u32, 32));
        let inboxes = net.exchange(out);
        let received: Vec<u32> = inboxes[1].iter().map(|&(_, m)| m).collect();
        assert_eq!(received, vec![7]);
        assert!(inboxes[0].is_empty() && inboxes[2].is_empty());
        let m = net.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.messages, 1);
        assert_eq!(m.bits, 32);
        assert_eq!(m.messages_cloned, 0, "unicast moves its payload");
    }

    #[test]
    fn unicast_exchange_never_clones_payloads() {
        // A payload whose Clone panics: delivery must move it instead.
        struct Fragile(u32);
        impl Clone for Fragile {
            fn clone(&self) -> Self {
                panic!("unicast exchange must not clone");
            }
        }
        let g = cycle(4);
        let mut net = Network::new(&g);
        let mut out: Vec<Vec<Outgoing<Fragile>>> = vec![vec![], vec![], vec![], vec![]];
        out[0].push((0, Fragile(9), 8));
        out[2].push((1, Fragile(11), 8));
        let inboxes = net.exchange(out);
        let delivered: u32 = inboxes.iter().flatten().map(|(_, m)| m.0).sum();
        assert_eq!(delivered, 20);
        assert_eq!(net.metrics().messages_cloned, 0);
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let g = star(5);
        let mut net = Network::new(&g);
        let payloads = (0..5).map(|v| (v as u32, 8u64)).collect();
        let inboxes = net.broadcast_exchange(payloads);
        // Center (0) hears from all 4 leaves.
        assert_eq!(inboxes[0].len(), 4);
        let mut heard: Vec<u32> = inboxes[0].iter().map(|&(_, m)| m).collect();
        heard.sort_unstable();
        assert_eq!(heard, vec![1, 2, 3, 4]);
        // Each leaf hears only the center's value 0.
        for inbox in &inboxes[1..5] {
            assert_eq!(*inbox, vec![(0usize, 0u32)]);
        }
        assert_eq!(
            net.metrics().messages,
            8,
            "2m messages on a star of 4 edges"
        );
        // Center (degree 4) clones 3 times; each leaf (degree 1) moves.
        assert_eq!(net.metrics().messages_cloned, 3);
    }

    #[test]
    fn gather_charging() {
        let g = cycle(6);
        let mut net = Network::new(&g);
        net.charge_gather(3, 10);
        let m = net.metrics();
        assert_eq!(m.rounds, 3);
        assert_eq!(m.messages, 3 * 12);
        assert_eq!(m.bits, 3 * 12 * 10);
    }

    #[test]
    fn ball_radii() {
        let g = path(7); // 0-1-2-3-4-5-6
        let net = Network::new(&g);
        let b0 = net.ball(VertexId(3), 0);
        assert_eq!(b0.len(), 1);
        let b2: std::collections::HashSet<u32> =
            net.ball(VertexId(3), 2).into_iter().map(|v| v.0).collect();
        assert_eq!(b2, [1u32, 2, 3, 4, 5].into_iter().collect());
        let ball_all = net.ball(VertexId(0), 10);
        assert_eq!(ball_all.len(), 7);
    }

    #[test]
    fn empty_outboxes_still_advance_rounds() {
        // A round in which nobody speaks is still a round: synchronous
        // models charge for the barrier, not the traffic.
        let g = path(4);
        let mut net = Network::new(&g);
        for expected in 1..=3u64 {
            let inboxes = net.exchange(vec![Vec::<Outgoing<u8>>::new(); 4]);
            assert!(inboxes.iter().all(|i| i.is_empty()));
            assert_eq!(net.metrics().rounds, expected);
        }
        assert_eq!(net.metrics().messages, 0);
        assert_eq!(net.metrics().bits, 0);
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn port_out_of_range_is_a_documented_panic() {
        let g = path(3); // vertex 0 has degree 1
        let mut net = Network::new(&g);
        let mut out: Vec<Vec<Outgoing<u8>>> = vec![vec![]; 3];
        out[0].push((1, 0u8, 8));
        let _ = net.exchange(out);
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn in_port_rejects_out_of_range() {
        let g = path(3);
        let net = Network::new(&g);
        let _ = net.in_port(VertexId(0), 1);
    }

    #[test]
    fn in_port_matches_delivery_tag() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut net = Network::new(&g);
        for v in 0..5 {
            let v = VertexId::new(v);
            for port in 0..g.degree(v) {
                let mut out: Vec<Vec<Outgoing<u8>>> = vec![vec![]; 5];
                out[v.index()].push((port, 1u8, 1));
                let inboxes = net.exchange(out);
                let u = net.peer(v, port);
                assert_eq!(inboxes[u.index()], vec![(net.in_port(v, port), 1u8)]);
            }
        }
    }

    #[test]
    fn port_addressing_round_trip_message() {
        // Reply on the in-port must reach the original sender.
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let mut net = Network::new(&g);
        let mut out: Vec<Vec<Outgoing<&'static str>>> = vec![vec![]; 4];
        out[2].push((0, "ping", 8));
        let inboxes = net.exchange(out);
        let (in_port, msg) = inboxes[0][0];
        assert_eq!(msg, "ping");
        let mut reply: Vec<Vec<Outgoing<&'static str>>> = vec![vec![]; 4];
        reply[0].push((in_port, "pong", 8));
        let inboxes2 = net.exchange(reply);
        assert_eq!(inboxes2[2], vec![(0usize, "pong")]);
    }
}
