//! Massively parallel computation (MPC) via the sparsifier — the
//! MapReduce-style setting named at the top of the paper's Section 3.
//!
//! Model: `p` machines, each with local memory for `s` words; the input
//! is vertex-partitioned (each machine holds some vertices together with
//! their adjacency lists, the standard distribution for MPC matching).
//! A round is: unlimited local computation, then an all-to-all exchange
//! in which no machine may *receive* more than `s` words.
//!
//! The sparsifier gives a two-communication-round algorithm with
//! `s = O(n·Δ) = O(n·(β/ε)·log(1/ε))` — **sublinear in `m`** on dense
//! inputs, which is the whole point:
//!
//! 1. *(local)* every machine marks Δ random edges per owned vertex;
//! 2. *(round 1)* marked edges are sent to a coordinator — total load
//!    `|E(G_Δ)| ≤ 4·|MCM|·Δ ≤ s`;
//! 3. *(local)* the coordinator computes a `(1+ε)`-approximate matching
//!    on the sparsifier;
//! 4. *(round 2)* each vertex's mate is sent back to its owner — load
//!    `O(n/p)` per machine.
//!
//! The simulator enforces the memory cap on every round and reports the
//! realized loads, so the memory claim is measured, not assumed.

use crate::metrics::Metrics;
use crate::shard::{balanced_bounds, csr_offsets, run_jobs};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::{approx_mcm_on_sparsifier, stage_eps};
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::Matching;

/// MPC cluster shape.
#[derive(Clone, Copy, Debug)]
pub struct MpcConfig {
    /// Number of machines `p`.
    pub machines: usize,
    /// Per-machine memory `s`, in words (one edge = 2 words, one mate
    /// record = 2 words).
    pub memory_words: usize,
}

/// Outcome of an MPC execution.
#[derive(Clone, Debug)]
pub struct MpcOutcome {
    /// The matching (valid for the input graph).
    pub matching: Matching,
    /// Communication rounds used.
    pub rounds: u64,
    /// The largest per-machine receive load observed in any round (words).
    pub max_round_load: usize,
    /// Total words shuffled across all rounds.
    pub total_words: u64,
}

/// Errors from the MPC run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// A machine would have received more than its memory in one round.
    MemoryExceeded {
        /// The round in which the cap broke.
        round: u64,
        /// The offending load in words.
        load: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::MemoryExceeded { round, load, cap } => {
                write!(f, "round {round}: load {load} words exceeds memory {cap}")
            }
        }
    }
}

impl std::error::Error for MpcError {}

/// Which machine owns vertex `v` (contiguous ranges).
fn owner(v: usize, n: usize, machines: usize) -> usize {
    (v * machines / n).min(machines - 1)
}

/// Run the two-round MPC matching. The input graph is only used through
/// each owner's local adjacency lists, mirroring the vertex-partitioned
/// input distribution.
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_distsim::mpc::{mpc_approx_mcm, MpcConfig};
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(100);
/// let params = SparsifierParams::practical(1, 0.4);
/// let cfg = MpcConfig { machines: 4, memory_words: 50_000 };
/// let out = mpc_approx_mcm(&g, &params, &cfg, 7).unwrap();
/// assert_eq!(out.rounds, 2);
/// assert!(out.matching.is_valid_for(&g));
/// ```
pub fn mpc_approx_mcm(
    g: &CsrGraph,
    params: &SparsifierParams,
    cfg: &MpcConfig,
    seed: u64,
) -> Result<MpcOutcome, MpcError> {
    mpc_approx_mcm_sharded(g, params, cfg, seed, 1)
}

/// Mark edges for the contiguous vertex range `lo..hi`. Marking is a pure
/// per-vertex function of `(seed, v)`, so any contiguous partition of the
/// vertex space, marked independently and concatenated in range order,
/// yields the exact byte sequence the single-range scan produces.
fn mark_range(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    lo: usize,
    hi: usize,
) -> Vec<(u32, u32)> {
    let mut marked: Vec<(u32, u32)> = Vec::new();
    for v in lo..hi {
        let vid = VertexId::new(v);
        let deg = g.degree(vid);
        if deg == 0 {
            continue;
        }
        if deg <= params.mark_cap() {
            for u in g.neighbors(vid) {
                marked.push((vid.0, u.0));
            }
        } else {
            let mut rng = StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15));
            for i in sample(&mut rng, deg, params.delta) {
                marked.push((vid.0, g.neighbor(vid, i).0));
            }
        }
    }
    marked
}

/// [`mpc_approx_mcm`] with the machine-local marking phase executed by
/// `threads` shard workers over half-edge-balanced contiguous vertex
/// ranges (the same partitioner as [`crate::ShardedNetwork`]). The
/// outcome — marked-edge list, matching, loads — is byte-identical to
/// the sequential run at every thread count because marking is a pure
/// per-vertex function and shards are concatenated in range order.
pub fn mpc_approx_mcm_sharded(
    g: &CsrGraph,
    params: &SparsifierParams,
    cfg: &MpcConfig,
    seed: u64,
    threads: usize,
) -> Result<MpcOutcome, MpcError> {
    assert!(cfg.machines >= 1);
    assert!(threads >= 1, "thread count must be at least 1");
    let n = g.num_vertices();
    let mut rounds = 0u64;
    let mut max_round_load = 0usize;
    let mut total_words = 0u64;

    // Local step: per-owner marking. Each machine only touches the
    // adjacency lists of vertices it owns; `owner` assigns contiguous
    // ranges, so shard workers respect machine locality.
    let bounds = balanced_bounds(&csr_offsets(g), threads);
    let jobs: Vec<_> = (0..threads)
        .map(|k| {
            let (lo, hi) = (bounds[k], bounds[k + 1]);
            move || mark_range(g, params, seed, lo, hi)
        })
        .collect();
    let mut marked: Vec<(u32, u32)> = Vec::new();
    for chunk in run_jobs(jobs) {
        marked.extend(chunk);
    }

    // Round 1: ship marked edges to the coordinator (machine 0).
    rounds += 1;
    let load1 = 2 * marked.len(); // words
    total_words += load1 as u64;
    max_round_load = max_round_load.max(load1);
    if load1 > cfg.memory_words {
        return Err(MpcError::MemoryExceeded {
            round: rounds,
            load: load1,
            cap: cfg.memory_words,
        });
    }

    // Coordinator-local: materialize the sparsifier, match.
    let mut b = GraphBuilder::with_capacity(n, marked.len());
    for &(u, v) in &marked {
        b.add_edge(VertexId(u), VertexId(v));
    }
    let sparse = b.build();
    let (matching, _) = approx_mcm_on_sparsifier(&sparse, stage_eps(params.eps));
    debug_assert!(matching.is_valid_for(g));

    // Round 2: return each vertex's mate to its owner; per-machine load is
    // the mate records of the vertices it owns.
    rounds += 1;
    let mut per_machine = vec![0usize; cfg.machines];
    for (u, v) in matching.pairs() {
        per_machine[owner(u.index(), n, cfg.machines)] += 2;
        per_machine[owner(v.index(), n, cfg.machines)] += 2;
    }
    let load2 = per_machine.iter().copied().max().unwrap_or(0);
    total_words += per_machine.iter().map(|&x| x as u64).sum::<u64>();
    max_round_load = max_round_load.max(load2);
    if load2 > cfg.memory_words {
        return Err(MpcError::MemoryExceeded {
            round: rounds,
            load: load2,
            cap: cfg.memory_words,
        });
    }

    Ok(MpcOutcome {
        matching,
        rounds,
        max_round_load,
        total_words,
    })
}

/// The metrics view of an MPC outcome, for harness reuse.
pub fn outcome_metrics(o: &MpcOutcome) -> Metrics {
    Metrics {
        rounds: o.rounds,
        messages: o.total_words / 2,
        bits: o.total_words * 64,
        max_message_bits: 128, // one edge record per message
        messages_cloned: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn owner_partition_is_total_and_monotone() {
        let n = 100;
        for machines in [1usize, 3, 7, 100] {
            let mut prev = 0;
            for v in 0..n {
                let o = owner(v, n, machines);
                assert!(o < machines);
                assert!(o >= prev);
                prev = o;
            }
        }
    }

    #[test]
    fn two_rounds_and_accuracy_on_clique() {
        let g = clique(300);
        let params = SparsifierParams::practical(1, 0.3);
        let cfg = MpcConfig {
            machines: 10,
            memory_words: 200_000,
        };
        let out = mpc_approx_mcm(&g, &params, &cfg, 7).unwrap();
        assert_eq!(out.rounds, 2);
        assert!(out.matching.is_valid_for(&g));
        let exact = maximum_matching(&g).len();
        assert!(
            out.matching.len() as f64 * 1.3 >= exact as f64,
            "{} vs {exact}",
            out.matching.len()
        );
    }

    #[test]
    fn memory_sublinear_in_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = clique_union(
            CliqueUnionConfig {
                n: 400,
                diversity: 2,
                clique_size: 100,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.4);
        let cfg = MpcConfig {
            machines: 8,
            memory_words: 2 * g.num_edges(), // generous; we check realized load
        };
        let out = mpc_approx_mcm(&g, &params, &cfg, 3).unwrap();
        assert!(
            out.max_round_load < g.num_edges(),
            "load {} words vs m = {} edges",
            out.max_round_load,
            g.num_edges()
        );
    }

    #[test]
    fn memory_cap_is_enforced() {
        let g = clique(200);
        let params = SparsifierParams::practical(1, 0.3);
        let cfg = MpcConfig {
            machines: 4,
            memory_words: 10, // absurdly small
        };
        let err = mpc_approx_mcm(&g, &params, &cfg, 1).unwrap_err();
        assert!(matches!(err, MpcError::MemoryExceeded { round: 1, .. }));
    }

    #[test]
    fn sharded_marking_is_byte_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = clique_union(
            CliqueUnionConfig {
                n: 350,
                diversity: 3,
                clique_size: 60,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(3, 0.35);
        let cfg = MpcConfig {
            machines: 6,
            memory_words: 400_000,
        };
        let base = mpc_approx_mcm(&g, &params, &cfg, 11).unwrap();
        for threads in [2usize, 4, 13] {
            let sharded = mpc_approx_mcm_sharded(&g, &params, &cfg, 11, threads).unwrap();
            assert_eq!(
                sharded.matching.pairs().collect::<Vec<_>>(),
                base.matching.pairs().collect::<Vec<_>>(),
                "t={threads}"
            );
            assert_eq!(sharded.rounds, base.rounds);
            assert_eq!(sharded.max_round_load, base.max_round_load);
            assert_eq!(sharded.total_words, base.total_words);
        }
    }

    #[test]
    fn single_machine_degenerate_case() {
        let g = clique(80);
        let params = SparsifierParams::practical(1, 0.5);
        let cfg = MpcConfig {
            machines: 1,
            memory_words: 1_000_000,
        };
        let out = mpc_approx_mcm(&g, &params, &cfg, 2).unwrap();
        assert_eq!(out.matching.len(), 40);
    }
}
