//! The dynamic distributed model (the last of the Section 3 intro's
//! "broader applicability" settings): a distributed network whose
//! topology changes by single-edge updates, where some structure must be
//! maintained with low per-update communication and memory.
//!
//! The sparsifier is ideal here because marking is local: when edge
//! `{u, v}` appears or disappears, only `u` and `v` resample their marks —
//! **one communication round and `O(Δ)` one-bit messages per update**,
//! touching nobody else. Each node stores only its own ≤ `2Δ` marks and
//! the ≤ `deg` marks it has heard (`O(Δ + deg)` words). The maintained
//! edge set is `G_Δ`-distributed at all times against an oblivious
//! update sequence, so a `(1+ε)`-approximate matching can be re-extracted
//! from it at any moment.

use crate::metrics::Metrics;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::ids::VertexId;
use std::collections::HashSet;

/// A topology update in the dynamic network.
#[derive(Clone, Copy, Debug)]
pub enum TopologyUpdate {
    /// A new link comes up.
    LinkUp(VertexId, VertexId),
    /// A link goes down.
    LinkDown(VertexId, VertexId),
}

/// Maintains the distributed sparsifier across topology updates.
pub struct DynamicNetwork {
    graph: AdjListGraph,
    params: SparsifierParams,
    /// Each node's own current marks (neighbor ids), as it would store
    /// them locally.
    marks: Vec<HashSet<u32>>,
    metrics: Metrics,
    update_seed: u64,
    updates_applied: u64,
}

impl DynamicNetwork {
    /// An initially link-less network of `n` nodes.
    pub fn new(n: usize, params: SparsifierParams, seed: u64) -> Self {
        DynamicNetwork {
            graph: AdjListGraph::new(n),
            params,
            marks: vec![HashSet::new(); n],
            metrics: Metrics::new(),
            update_seed: seed,
            updates_applied: 0,
        }
    }

    /// The current topology.
    pub fn graph(&self) -> &AdjListGraph {
        &self.graph
    }

    /// Communication spent so far across all updates.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Apply one topology update: the two endpoints resample and announce
    /// their new marks along marked links — one round, `O(Δ)` messages.
    pub fn apply(&mut self, update: TopologyUpdate) {
        self.updates_applied += 1;
        let (u, v, ok) = match update {
            TopologyUpdate::LinkUp(u, v) => (u, v, self.graph.insert_edge(u, v)),
            TopologyUpdate::LinkDown(u, v) => (u, v, self.graph.delete_edge(u, v)),
        };
        if !ok {
            return; // duplicate/phantom update: nothing changes
        }
        self.metrics.rounds += 1; // both endpoints act in the same round
        self.resample(u);
        self.resample(v);
    }

    fn resample(&mut self, v: VertexId) {
        let deg = self.graph.degree(v);
        let mut rng = StdRng::seed_from_u64(
            self.update_seed
                ^ (v.0 as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ self.updates_applied.wrapping_mul(0xD1B54A32D192ED03),
        );
        let fresh: HashSet<u32> = if deg <= self.params.mark_cap() {
            (0..deg).map(|i| self.graph.neighbor(v, i).0).collect()
        } else {
            sample(&mut rng, deg, self.params.delta)
                .into_iter()
                .map(|i| self.graph.neighbor(v, i).0)
                .collect()
        };
        // Communication: v tells each newly-marked neighbor (1 bit) and
        // each formerly-marked neighbor that the mark is retracted (1 bit).
        let old = std::mem::take(&mut self.marks[v.index()]);
        let changed = old.symmetric_difference(&fresh).count() as u64;
        self.metrics.messages += changed;
        self.metrics.bits += changed;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(1);
        self.marks[v.index()] = fresh;
    }

    /// The currently maintained sparsifier (union of surviving marks;
    /// marks referring to vanished links are dropped — their retraction
    /// was already accounted when the endpoint resampled).
    pub fn sparsifier(&self) -> CsrGraph {
        let n = self.graph.num_vertices();
        let mut b = GraphBuilder::new(n);
        for (v, marks) in self.marks.iter().enumerate() {
            for &w in marks {
                if self.graph.has_edge(VertexId::new(v), VertexId(w)) {
                    b.add_edge(VertexId::new(v), VertexId(w));
                }
            }
        }
        b.build()
    }

    /// Per-node memory high-water mark, in words (own marks + degree).
    pub fn max_node_memory(&self) -> usize {
        (0..self.graph.num_vertices())
            .map(|v| self.marks[v].len() + self.graph.degree(VertexId::new(v)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sparsimatch_graph::generators::{clique, clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn one_round_per_update_and_bounded_messages() {
        let params = SparsifierParams::with_delta(1, 0.5, 3);
        let mut net = DynamicNetwork::new(50, params, 7);
        let host = clique(50);
        let mut last_messages = 0;
        for (_, u, v) in host.edges() {
            net.apply(TopologyUpdate::LinkUp(u, v));
            let m = net.metrics();
            let per_update = m.messages - last_messages;
            last_messages = m.messages;
            // Each endpoint changes at most cap + delta marks.
            assert!(
                per_update <= 2 * (params.mark_cap() + params.delta) as u64,
                "per-update messages {per_update}"
            );
        }
        assert_eq!(
            net.metrics().rounds,
            host.num_edges() as u64,
            "one round per update"
        );
    }

    #[test]
    fn maintained_sparsifier_preserves_matching() {
        let mut rng = StdRng::seed_from_u64(2);
        let host = clique_union(
            CliqueUnionConfig {
                n: 120,
                diversity: 2,
                clique_size: 30,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.4);
        let mut net = DynamicNetwork::new(120, params, 3);
        for (_, u, v) in host.edges() {
            net.apply(TopologyUpdate::LinkUp(u, v));
        }
        let sparse = net.sparsifier();
        let snapshot = net.graph().to_csr();
        for (_, u, v) in sparse.edges() {
            assert!(snapshot.has_edge(u, v));
        }
        let exact = maximum_matching(&snapshot).len();
        let approx = maximum_matching(&sparse).len();
        assert!(approx as f64 * 1.4 >= exact as f64, "{approx} vs {exact}");
    }

    #[test]
    fn link_down_churn_keeps_structure_sound() {
        let mut rng = StdRng::seed_from_u64(3);
        let host = clique(40);
        let params = SparsifierParams::with_delta(1, 0.5, 4);
        let mut net = DynamicNetwork::new(40, params, 5);
        let edges: Vec<(VertexId, VertexId)> = host.edges().map(|(_, u, v)| (u, v)).collect();
        let mut present: Vec<(VertexId, VertexId)> = Vec::new();
        for &(u, v) in &edges {
            net.apply(TopologyUpdate::LinkUp(u, v));
            present.push((u, v));
            if rng.random_bool(0.3) {
                let k = rng.random_range(0..present.len());
                let (a, b) = present.swap_remove(k);
                net.apply(TopologyUpdate::LinkDown(a, b));
            }
        }
        let sparse = net.sparsifier();
        let snapshot = net.graph().to_csr();
        assert_eq!(snapshot.num_edges(), present.len());
        for (_, u, v) in sparse.edges() {
            assert!(snapshot.has_edge(u, v));
        }
        // Node memory stays O(deg + cap).
        assert!(net.max_node_memory() <= 40 + params.mark_cap());
    }

    #[test]
    fn phantom_updates_are_free() {
        let params = SparsifierParams::with_delta(1, 0.5, 2);
        let mut net = DynamicNetwork::new(4, params, 1);
        net.apply(TopologyUpdate::LinkDown(VertexId(0), VertexId(1)));
        assert_eq!(net.metrics().rounds, 0);
        net.apply(TopologyUpdate::LinkUp(VertexId(0), VertexId(1)));
        net.apply(TopologyUpdate::LinkUp(VertexId(0), VertexId(1)));
        assert_eq!(net.metrics().rounds, 1, "duplicate link-up is a no-op");
    }
}
