//! Sharded round execution: the same simulated network, spread over
//! `std::thread::scope` workers, byte-identical to the sequential one.
//!
//! The vertex set is partitioned into contiguous CSR ranges balanced by
//! half-edge count. Each [`Net::exchange`] runs in two barriers:
//!
//! 1. **Send.** Worker `k` walks its senders in ascending vertex order and
//!    routes each outgoing message into one buffer per destination shard.
//!    Within a buffer, messages are therefore already ordered by
//!    `(sender, outbox position)` — the exact order the sequential
//!    [`Network`] delivers in.
//! 2. **Deliver.** Worker `d` owns the inboxes of its vertex range and
//!    concatenates the buffers addressed to it in ascending *source-shard*
//!    order. Source shards are contiguous ascending vertex ranges, so the
//!    concatenation of per-shard `(sender, seq)` orders is the global
//!    `(sender, seq)` order: every inbox is byte-identical to the
//!    sequential transport's, at every shard count.
//!
//! The merge order is total — `(source shard, sender, outbox position)`
//! determines a unique position for every message, no ties — so no
//! scheduling of the workers can change an inbox. Per-worker [`Metrics`]
//! and [`FaultStats`] are merged in ascending shard order; every merged
//! field is a sum or a max, so the totals equal the sequential counters.
//!
//! Faults parallelize the same way because every [`FaultPlan`] decision is
//! a pure hash of `(seed, kind, round, slot-or-node)`: workers evaluate
//! drop/duplicate/crash decisions independently, per-message retry state
//! lives with the sender's shard, and the attempt loop of the resilience
//! layer becomes a sequence of send/ack barriers with the same round
//! numbering as [`FaultyNetwork`](crate::FaultyNetwork). Inbox
//! reordering is keyed by
//! `(logical round, destination node)` and applied by the destination
//! shard after the merge.

use crate::faults::{crash_aware_ball, FaultPlan, FaultStats, Pending, ResilienceParams};
use crate::metrics::Metrics;
use crate::network::{broadcast_outboxes, Incoming, Net, Network, Outgoing};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Run one job per shard on scoped worker threads and collect their
/// results in shard order. A single job runs inline (no thread). Worker
/// panics are re-raised with their original payload, so a protocol bug
/// (for example an out-of-range port) reports the same message it would
/// on the sequential transport.
pub(crate) fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs.into_iter().map(|job| s.spawn(job)).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Partition `0..n` (where `offsets` has `n + 1` entries, CSR-style) into
/// `shards` contiguous vertex ranges of roughly equal half-edge load.
/// Returns `shards + 1` nondecreasing boundaries starting at 0 and ending
/// at `n`; a shard may be empty when vertices are fewer than shards or a
/// hub vertex swallows several targets.
pub(crate) fn balanced_bounds(offsets: &[usize], shards: usize) -> Vec<usize> {
    assert!(shards >= 1, "shard count must be at least 1");
    let n = offsets.len() - 1;
    let total = offsets[n];
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0usize);
    for k in 1..shards {
        let target = total * k / shards;
        let v = offsets.partition_point(|&o| o < target).min(n);
        let prev = *bounds.last().unwrap();
        bounds.push(v.max(prev));
    }
    bounds.push(n);
    bounds
}

/// CSR-style slot offsets of a graph (`n + 1` entries), for callers that
/// shard by load without building a full [`Network`].
pub(crate) fn csr_offsets(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + g.degree(VertexId::new(v)));
    }
    offsets
}

/// The shard owning vertex `v` under `bounds` (empty shards skipped).
#[inline]
fn shard_of(bounds: &[usize], v: usize) -> usize {
    bounds.partition_point(|&b| b <= v) - 1
}

/// Split a per-vertex slice into per-shard mutable sub-slices.
fn split_ranges<'a, T>(items: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len() - 1);
    let mut rest = items;
    for k in 0..bounds.len() - 1 {
        let (head, tail) = rest.split_at_mut(bounds[k + 1] - bounds[k]);
        out.push(head);
        rest = tail;
    }
    out
}

/// Crashed node-rounds charged for one physical round (the sharded mirror
/// of the sequential transport's per-round crash accounting).
fn crashed_count(plan: &FaultPlan, n: u32, round: u64) -> u64 {
    if !plan.has_crashes() {
        return 0;
    }
    (0..n).filter(|&v| plan.is_down(v, round)).count() as u64
}

/// Append routed messages to their destination inboxes, one worker per
/// destination shard, source shards concatenated in ascending order.
/// `grouped[d]` lists, in source-shard order, the buffers addressed to
/// shard `d`; each buffer entry is `(destination vertex, in-port, payload)`.
fn deliver<M: Send>(
    inboxes: &mut [Vec<Incoming<M>>],
    grouped: Vec<Vec<Vec<(u32, u32, M)>>>,
    bounds: &[usize],
) {
    run_jobs(
        split_ranges(inboxes, bounds)
            .into_iter()
            .zip(grouped)
            .enumerate()
            .map(|(k, (slice, bufs))| {
                let base = bounds[k];
                move || {
                    for buf in bufs {
                        for (dst, in_port, payload) in buf {
                            slice[dst as usize - base].push((in_port as usize, payload));
                        }
                    }
                }
            })
            .collect(),
    );
}

/// The sharded transport: a drop-in [`Net`] whose rounds execute on
/// `threads` scoped workers, byte-identical to [`Network`] (and, under a
/// [`FaultPlan`], to [`FaultyNetwork`]) at every thread count.
///
/// ```
/// use sparsimatch_distsim::{Net, Network, ShardedNetwork};
/// use sparsimatch_graph::generators::cycle;
///
/// let g = cycle(64);
/// let mut seq = Network::new(&g);
/// let mut par = ShardedNetwork::new(&g, 4);
/// let payloads: Vec<(u32, u64)> = (0..64).map(|v| (v, 8)).collect();
/// let a = seq.broadcast_exchange(payloads.clone());
/// let b = par.broadcast_exchange(payloads);
/// assert_eq!(a, b);
/// assert_eq!(seq.metrics(), Net::metrics(&par));
/// ```
///
/// [`FaultyNetwork`]: crate::faults::FaultyNetwork
pub struct ShardedNetwork<'g> {
    inner: Network<'g>,
    plan: FaultPlan,
    resilience: ResilienceParams,
    threads: usize,
    bounds: Vec<usize>,
    metrics: Metrics,
    faults: FaultStats,
}

impl<'g> ShardedNetwork<'g> {
    /// Wrap a topology with `threads` round workers, perfect delivery.
    pub fn new(graph: &'g CsrGraph, threads: usize) -> Self {
        ShardedNetwork::with_faults(graph, threads, FaultPlan::none(), ResilienceParams::off())
    }

    /// Wrap a topology with `threads` round workers, a fault plan, and a
    /// resilience configuration.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_faults(
        graph: &'g CsrGraph,
        threads: usize,
        plan: FaultPlan,
        resilience: ResilienceParams,
    ) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        let inner = Network::new(graph);
        let bounds = balanced_bounds(inner.tables().0, threads);
        ShardedNetwork {
            inner,
            plan,
            resilience,
            threads,
            bounds,
            metrics: Metrics::new(),
            faults: FaultStats::default(),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard boundaries: `threads + 1` nondecreasing vertex indices;
    /// worker `k` owns vertices `bounds[k]..bounds[k + 1]`.
    pub fn shard_bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The resilience configuration in force.
    pub fn resilience(&self) -> ResilienceParams {
        self.resilience
    }

    /// Fault counters accumulated so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Communication metrics accumulated so far (inherent mirror of the
    /// trait method, so concrete holders need no trait import).
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Broadcast convenience mirroring [`Network::broadcast_exchange`].
    pub fn broadcast_exchange<M: Clone + Send>(
        &mut self,
        payloads: Vec<(M, u64)>,
    ) -> Vec<Vec<Incoming<M>>> {
        let (outboxes, clones) = broadcast_outboxes(self.inner.graph(), payloads);
        self.metrics.messages_cloned += clones;
        Net::exchange(self, outboxes)
    }

    /// Fault-free exchange: send barrier, deterministic merge, deliver
    /// barrier.
    fn exchange_perfect<M: Clone + Send>(
        &mut self,
        mut outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        let n = self.inner.num_nodes();
        assert_eq!(outboxes.len(), n);
        self.metrics.rounds += 1;
        let t = self.threads;
        let graph = self.inner.graph();
        let (offsets, peer_port) = self.inner.tables();
        let bounds: &[usize] = &self.bounds;

        struct SendOut<M> {
            buffers: Vec<Vec<(u32, u32, M)>>,
            metrics: Metrics,
        }
        let sends: Vec<SendOut<M>> = run_jobs(
            split_ranges(&mut outboxes, bounds)
                .into_iter()
                .enumerate()
                .map(|(k, slice)| {
                    let base = bounds[k];
                    move || {
                        let mut buffers: Vec<Vec<(u32, u32, M)>> =
                            (0..t).map(|_| Vec::new()).collect();
                        let mut m = Metrics::new();
                        for (i, outbox) in slice.iter_mut().enumerate() {
                            let v = VertexId::new(base + i);
                            for (port, payload, bits) in std::mem::take(outbox) {
                                assert!(port < graph.degree(v), "port out of range");
                                let u = graph.neighbor(v, port);
                                let in_port = peer_port[offsets[v.index()] + port];
                                m.messages += 1;
                                m.bits += bits;
                                m.max_message_bits = m.max_message_bits.max(bits);
                                buffers[shard_of(bounds, u.index())].push((u.0, in_port, payload));
                            }
                        }
                        SendOut {
                            buffers,
                            metrics: m,
                        }
                    }
                })
                .collect(),
        );

        let mut grouped: Vec<Vec<Vec<(u32, u32, M)>>> =
            (0..t).map(|_| Vec::with_capacity(t)).collect();
        for s in sends {
            self.metrics.absorb(s.metrics);
            for (d, buf) in s.buffers.into_iter().enumerate() {
                grouped[d].push(buf);
            }
        }

        let mut inboxes: Vec<Vec<Incoming<M>>> = Vec::with_capacity(n);
        inboxes.resize_with(n, Vec::new);
        deliver(&mut inboxes, grouped, &self.bounds);
        inboxes
    }

    /// Faulty exchange: the attempt loop of [`FaultyNetwork`] with each
    /// send and ack round run as a shard barrier. Retry state lives with
    /// the sender's shard; fault decisions are pure plan queries.
    ///
    /// [`FaultyNetwork`]: crate::faults::FaultyNetwork
    fn exchange_faulty<M: Clone + Send>(
        &mut self,
        mut outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        let n = self.inner.num_nodes();
        assert_eq!(outboxes.len(), n);
        let t = self.threads;
        let graph = self.inner.graph();
        let (offsets, peer_port) = self.inner.tables();
        let plan = self.plan.clone();
        let resilience = self.resilience;
        let bounds = self.bounds.clone();

        let mut pending_shards: Vec<Vec<Pending<M>>> = run_jobs(
            split_ranges(&mut outboxes, &bounds)
                .into_iter()
                .enumerate()
                .map(|(k, slice)| {
                    let base = bounds[k];
                    move || {
                        let mut pend = Vec::new();
                        for (i, outbox) in slice.iter_mut().enumerate() {
                            let v = VertexId::new(base + i);
                            for (port, payload, bits) in std::mem::take(outbox) {
                                assert!(port < graph.degree(v), "port out of range");
                                let dest = graph.neighbor(v, port);
                                let slot = offsets[v.index()] + port;
                                let in_port = peer_port[slot] as usize;
                                pend.push(Pending {
                                    sender: v,
                                    dest,
                                    in_port,
                                    slot: slot as u64,
                                    back_slot: (offsets[dest.index()] + in_port) as u64,
                                    payload: Some(payload),
                                    bits,
                                    deliveries: 0,
                                    acked: false,
                                });
                            }
                        }
                        pend
                    }
                })
                .collect(),
        );

        let logical_round = self.metrics.rounds + 1;
        let mut inboxes: Vec<Vec<Incoming<M>>> = Vec::with_capacity(n);
        inboxes.resize_with(n, Vec::new);
        let attempts = 1 + if resilience.enabled() {
            resilience.max_retries
        } else {
            0
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                let outstanding: u64 = pending_shards
                    .iter()
                    .map(|s| s.iter().filter(|m| !m.acked).count() as u64)
                    .sum();
                if outstanding == 0 {
                    break;
                }
                self.faults.retries += outstanding;
            }
            // Send round.
            self.metrics.rounds += 1;
            let round = self.metrics.rounds;
            self.faults.crashed_rounds += crashed_count(&plan, n as u32, round);
            struct SendRes<M> {
                buffers: Vec<Vec<(u32, u32, M)>>,
                metrics: Metrics,
                faults: FaultStats,
                delivered: Vec<usize>,
            }
            let bounds_ref: &[usize] = &bounds;
            let plan_ref = &plan;
            let results: Vec<SendRes<M>> = run_jobs(
                pending_shards
                    .iter_mut()
                    .map(|shard| {
                        move || {
                            let mut buffers: Vec<Vec<(u32, u32, M)>> =
                                (0..t).map(|_| Vec::new()).collect();
                            let mut m = Metrics::new();
                            let mut f = FaultStats::default();
                            let mut delivered = Vec::new();
                            for (i, msg) in shard.iter_mut().enumerate() {
                                if msg.acked {
                                    continue;
                                }
                                if plan_ref.is_down(msg.sender.0, round) {
                                    f.dropped += 1;
                                    continue;
                                }
                                m.messages += 1;
                                m.bits += msg.bits;
                                m.max_message_bits = m.max_message_bits.max(msg.bits);
                                if plan_ref.is_down(msg.dest.0, round)
                                    || plan_ref.message_dropped(round, msg.slot)
                                {
                                    f.dropped += 1;
                                    continue;
                                }
                                let dup = plan_ref.message_duplicated(round, msg.slot);
                                let d = shard_of(bounds_ref, msg.dest.index());
                                let (payload, cloned) =
                                    msg.payload_for_delivery(resilience.enabled() || dup);
                                m.messages_cloned += cloned as u64;
                                buffers[d].push((msg.dest.0, msg.in_port as u32, payload));
                                if msg.deliveries > 0 {
                                    f.duplicated += 1;
                                }
                                msg.deliveries += 1;
                                if dup {
                                    let (payload, cloned) =
                                        msg.payload_for_delivery(resilience.enabled());
                                    m.messages_cloned += cloned as u64;
                                    buffers[d].push((msg.dest.0, msg.in_port as u32, payload));
                                    msg.deliveries += 1;
                                    f.duplicated += 1;
                                }
                                delivered.push(i);
                            }
                            SendRes {
                                buffers,
                                metrics: m,
                                faults: f,
                                delivered,
                            }
                        }
                    })
                    .collect(),
            );
            let mut grouped: Vec<Vec<Vec<(u32, u32, M)>>> =
                (0..t).map(|_| Vec::with_capacity(t)).collect();
            let mut delivered_shards: Vec<Vec<usize>> = Vec::with_capacity(t);
            for r in results {
                self.metrics.absorb(r.metrics);
                self.faults.absorb(r.faults);
                delivered_shards.push(r.delivered);
                for (d, buf) in r.buffers.into_iter().enumerate() {
                    grouped[d].push(buf);
                }
            }
            deliver(&mut inboxes, grouped, &bounds);
            if !resilience.enabled() {
                break;
            }
            // Ack round: each delivery is acked along the reverse edge;
            // acks travel the same faulty links.
            self.metrics.rounds += 1;
            let ack_round = self.metrics.rounds;
            self.faults.crashed_rounds += crashed_count(&plan, n as u32, ack_round);
            let acks: Vec<(Metrics, FaultStats)> = run_jobs(
                pending_shards
                    .iter_mut()
                    .zip(delivered_shards)
                    .map(|(shard, delivered)| {
                        move || {
                            let mut m = Metrics::new();
                            let mut f = FaultStats::default();
                            for i in delivered {
                                let msg = &mut shard[i];
                                if plan_ref.is_down(msg.dest.0, ack_round) {
                                    continue; // acker is down: no ack sent at all
                                }
                                m.messages += 1;
                                m.bits += resilience.ack_bits;
                                m.max_message_bits = m.max_message_bits.max(resilience.ack_bits);
                                if plan_ref.is_down(msg.sender.0, ack_round)
                                    || plan_ref.message_dropped(ack_round, msg.back_slot)
                                {
                                    f.dropped += 1;
                                    continue;
                                }
                                msg.acked = true;
                            }
                            (m, f)
                        }
                    })
                    .collect(),
            );
            for (m, f) in acks {
                self.metrics.absorb(m);
                self.faults.absorb(f);
            }
            if pending_shards.iter().all(|s| s.iter().all(|p| p.acked)) {
                break;
            }
        }
        // Within-round reordering, keyed by the logical round so retries
        // do not change which inboxes get shuffled; applied by the
        // destination shard after the merge.
        let plan_ref = &plan;
        run_jobs(
            split_ranges(&mut inboxes, &bounds)
                .into_iter()
                .enumerate()
                .map(|(k, slice)| {
                    let base = bounds[k];
                    move || {
                        for (i, inbox) in slice.iter_mut().enumerate() {
                            plan_ref.maybe_shuffle(logical_round, (base + i) as u32, inbox);
                        }
                    }
                })
                .collect(),
        );
        inboxes
    }
}

impl<'g> Net<'g> for ShardedNetwork<'g> {
    fn graph(&self) -> &'g CsrGraph {
        self.inner.graph()
    }

    fn metrics(&self) -> Metrics {
        self.metrics
    }

    fn exchange<M: Clone + Send>(
        &mut self,
        outboxes: Vec<Vec<Outgoing<M>>>,
    ) -> Vec<Vec<Incoming<M>>> {
        if self.plan.is_zero_fault() && !self.resilience.enabled() {
            self.exchange_perfect(outboxes)
        } else {
            self.exchange_faulty(outboxes)
        }
    }

    fn charge_gather(&mut self, radius: usize, bits_per_message: u64) {
        // Same totals as the sequential transports; gathers are bulk
        // transfers read off the master graph (see Network::charge_gather).
        let m2 = 2 * self.inner.graph().num_edges() as u64;
        let n = self.inner.num_nodes() as u32;
        for _ in 0..radius {
            self.metrics.rounds += 1;
            let round = self.metrics.rounds;
            self.faults.crashed_rounds += crashed_count(&self.plan, n, round);
        }
        self.metrics.messages += radius as u64 * m2;
        self.metrics.bits += radius as u64 * m2 * bits_per_message;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits_per_message);
    }

    fn record_clones(&mut self, count: u64) {
        self.metrics.messages_cloned += count;
    }

    fn ball(&self, v: VertexId, radius: usize) -> Vec<VertexId> {
        if !self.plan.has_crashes() {
            return self.inner.ball(v, radius);
        }
        crash_aware_ball(
            self.inner.graph(),
            &self.plan,
            self.metrics.rounds.max(1),
            v,
            radius,
        )
    }

    fn lossless(&self) -> bool {
        self.plan.is_zero_fault()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultRates, FaultyNetwork};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{gnp, path, star};

    fn all_broadcast(g: &CsrGraph) -> Vec<Vec<Outgoing<u32>>> {
        (0..g.num_vertices())
            .map(|v| {
                let vid = VertexId::new(v);
                (0..g.degree(vid)).map(|p| (p, v as u32, 8u64)).collect()
            })
            .collect()
    }

    #[test]
    fn bounds_are_monotone_and_cover() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(60, 0.1, &mut rng);
        for t in [1usize, 2, 3, 7, 8, 59, 64, 200] {
            let net = ShardedNetwork::new(&g, t);
            let b = net.shard_bounds();
            assert_eq!(b.len(), t + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), 60);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            for v in 0..60 {
                let k = shard_of(b, v);
                assert!(b[k] <= v && v < b[k + 1]);
            }
        }
    }

    #[test]
    fn perfect_rounds_match_sequential_at_every_thread_count() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = gnp(80, 0.08, &mut rng);
        for t in [1usize, 2, 4, 8, 13] {
            let mut seq = Network::new(&g);
            let mut par = ShardedNetwork::new(&g, t);
            for round in 0..3 {
                let out = all_broadcast(&g);
                let a = seq.exchange(out.clone());
                let b = Net::exchange(&mut par, out);
                assert_eq!(a, b, "t = {t}, round {round}");
                assert_eq!(seq.metrics(), par.metrics(), "t = {t}, round {round}");
            }
            seq.charge_gather(2, 16);
            Net::charge_gather(&mut par, 2, 16);
            assert_eq!(seq.metrics(), par.metrics());
            assert_eq!(par.fault_stats(), FaultStats::default());
            assert!(Net::lossless(&par));
        }
    }

    #[test]
    fn faulty_rounds_match_sequential_transport_exactly() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gnp(70, 0.09, &mut rng);
        let rates = FaultRates {
            drop: 0.25,
            duplicate: 0.2,
            reorder: 0.4,
            crash: 0.1,
        };
        for t in [1usize, 2, 4, 8] {
            let plan = FaultPlan::new(42, rates)
                .with_crash_period(3)
                .with_horizon(50);
            let mut seq =
                FaultyNetwork::with_resilience(&g, plan.clone(), ResilienceParams::retry(2));
            let mut par = ShardedNetwork::with_faults(&g, t, plan, ResilienceParams::retry(2));
            for round in 0..4 {
                let out = all_broadcast(&g);
                let a = Net::exchange(&mut seq, out.clone());
                let b = Net::exchange(&mut par, out);
                assert_eq!(a, b, "t = {t}, logical round {round}");
                assert_eq!(Net::metrics(&seq), par.metrics(), "t = {t}");
                assert_eq!(seq.fault_stats(), par.fault_stats(), "t = {t}");
            }
            Net::charge_gather(&mut seq, 3, 8);
            Net::charge_gather(&mut par, 3, 8);
            assert_eq!(Net::metrics(&seq), par.metrics());
            assert_eq!(seq.fault_stats(), par.fault_stats());
        }
    }

    #[test]
    fn crashed_balls_match_sequential() {
        let g = path(6);
        let plan = FaultPlan::none().with_crashed_nodes([3]);
        let mut seq = FaultyNetwork::new(&g, plan.clone());
        let mut par = ShardedNetwork::with_faults(&g, 3, plan, ResilienceParams::off());
        Net::charge_gather(&mut seq, 5, 8);
        Net::charge_gather(&mut par, 5, 8);
        for v in 0..6 {
            assert_eq!(
                Net::ball(&seq, VertexId::new(v), 5),
                Net::ball(&par, VertexId::new(v), 5)
            );
        }
        assert!(!Net::lossless(&par));
    }

    #[test]
    fn broadcast_counts_clones_like_sequential() {
        let g = star(5);
        let mut seq = Network::new(&g);
        let mut par = ShardedNetwork::new(&g, 4);
        let payloads: Vec<(u32, u64)> = (0..5).map(|v| (v, 8)).collect();
        let a = seq.broadcast_exchange(payloads.clone());
        let b = par.broadcast_exchange(payloads);
        assert_eq!(a, b);
        assert_eq!(seq.metrics(), par.metrics());
        assert_eq!(par.metrics().messages_cloned, 3);
    }

    #[test]
    fn more_shards_than_vertices_still_deliver() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let mut seq = Network::new(&g);
        let mut par = ShardedNetwork::new(&g, 16);
        let out = all_broadcast(&g);
        assert_eq!(seq.exchange(out.clone()), Net::exchange(&mut par, out));
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn port_out_of_range_panics_with_the_documented_message() {
        let g = path(3); // vertex 0 has degree 1
        let mut net = ShardedNetwork::new(&g, 2);
        let mut out: Vec<Vec<Outgoing<u8>>> = vec![vec![]; 3];
        out[0].push((1, 0u8, 8));
        let _ = Net::exchange(&mut net, out);
    }

    #[test]
    #[should_panic(expected = "thread count must be at least 1")]
    fn zero_threads_is_rejected() {
        let g = path(3);
        let _ = ShardedNetwork::new(&g, 0);
    }
}
