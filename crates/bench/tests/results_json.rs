//! Runs a real experiment binary on the quick grid and consumes the
//! machine-readable `results/<exp>.json` document it writes, closing the
//! loop on the export path (acceptance: the JSON is valid and is read back
//! by a test, not just written).

use sparsimatch_obs::Json;
use std::process::Command;

#[test]
fn quick_run_writes_valid_results_json() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_exp_o210_size"))
        .env("SPARSIMATCH_RESULTS_DIR", &dir)
        .status()
        .expect("experiment binary runs");
    assert!(status.success(), "exp_o210_size exited nonzero");

    let path = dir.join("exp_o210_size.json");
    let text = std::fs::read_to_string(&path).expect("results JSON written");
    let doc = Json::parse(&text).expect("results JSON parses");

    assert_eq!(
        doc.get("experiment").unwrap().as_str(),
        Some("exp_o210_size")
    );
    assert_eq!(doc.get("label").unwrap().as_str(), Some("E2"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    // A quick run satisfies every bound, so the violation list is empty
    // and the flag is set.
    assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("violations")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    // The measured-vs-predicted table survives the roundtrip with at least
    // one data row, and its arity matches the headers.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    assert!(!tables.is_empty());
    let headers = tables[0].get("headers").unwrap().as_array().unwrap();
    let rows = tables[0].get("rows").unwrap().as_array().unwrap();
    assert!(!rows.is_empty());
    for row in rows {
        assert_eq!(row.as_array().unwrap().len(), headers.len());
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_sweep_writes_valid_monotone_schema() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-sweep-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_exp_fault_sweep"))
        .env("SPARSIMATCH_RESULTS_DIR", &dir)
        .status()
        .expect("sweep binary runs");
    assert!(status.success(), "exp_fault_sweep exited nonzero");

    let path = dir.join("fault_sweep.json");
    let text = std::fs::read_to_string(&path).expect("sweep JSON written");
    let doc = Json::parse(&text).expect("sweep JSON parses");

    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("fault_sweep"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("violations")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    assert!(
        doc.get("graph")
            .unwrap()
            .get("vertices")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(doc.get("seeds_per_rate").unwrap().as_u64().unwrap() >= 2);
    let baseline = doc.get("baseline_matching").unwrap().as_u64().unwrap() as f64;
    assert!(baseline > 0.0);

    let rows = doc.get("rows").unwrap().as_array().unwrap();
    assert!(
        rows.len() >= 3,
        "need a real sweep, got {} rows",
        rows.len()
    );
    let field = |row: &Json, key: &str| -> f64 {
        row.get(key)
            .unwrap_or_else(|| panic!("row missing {key}"))
            .as_f64()
            .unwrap()
    };
    // Rows are sorted by rate; the first is the exact fault-free anchor.
    assert_eq!(field(&rows[0], "drop"), 0.0);
    assert_eq!(
        field(&rows[0], "mean_size"),
        baseline,
        "p = 0 must equal the baseline exactly"
    );
    assert_eq!(field(&rows[0], "mean_dropped"), 0.0);
    let mut prev_drop = -1.0;
    let mut prev_size = f64::INFINITY;
    for row in rows {
        let drop = field(row, "drop");
        let size = field(row, "mean_size");
        assert!((0.0..=1.0).contains(&drop));
        assert!(drop > prev_drop, "rates not strictly increasing");
        assert!(
            size <= prev_size,
            "mean size rose: {size} after {prev_size}"
        );
        assert!(field(row, "min_size") <= field(row, "max_size"));
        // The hardened arm never does worse than the fragile one.
        assert!(field(row, "hardened_mean_size") >= size);
        prev_drop = drop;
        prev_size = size;
    }

    // The I/O arm: streamed builds under injected edge-stream faults
    // must recover byte-identically at every rate, with the zero-rate
    // anchor paying no retries and the top rate actually retrying.
    let io = doc.get("io").expect("io arm present");
    assert!(
        io.get("attempts").unwrap().as_u64().unwrap()
            > io.get("horizon").unwrap().as_u64().unwrap()
    );
    let io_rows = io.get("rows").unwrap().as_array().unwrap();
    assert!(io_rows.len() >= 3, "need a real io sweep");
    let matching = field(&io_rows[0], "matching");
    assert!(matching > 0.0);
    assert_eq!(field(&io_rows[0], "p"), 0.0);
    assert_eq!(field(&io_rows[0], "mean_retries"), 0.0);
    for row in io_rows {
        assert_eq!(row.get("identical").unwrap().as_bool(), Some(true));
        assert_eq!(field(row, "matching"), matching, "recovery must be exact");
        assert!(field(row, "mean_retries") <= field(row, "mean_faults") + 1e-9);
    }
    assert!(
        field(io_rows.last().unwrap(), "mean_retries") > 0.0,
        "the io arm never exercised the retry path"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_baseline_writes_valid_schema() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-bench-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_pipeline.json");

    let status = Command::new(env!("CARGO_BIN_EXE_bench_baseline"))
        .env("SPARSIMATCH_BENCH_OUT", &out)
        .env("SPARSIMATCH_METRICS_TIMINGS", "1")
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "bench_baseline exited nonzero");

    let text = std::fs::read_to_string(&out).expect("baseline JSON written");
    let doc = Json::parse(&text).expect("baseline JSON parses");

    assert_eq!(
        doc.get("benchmark").unwrap().as_str(),
        Some("bench_pipeline")
    );
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    assert!(doc.get("host_parallelism").unwrap().as_u64().unwrap() >= 1);

    // The benched thread list is strictly increasing.
    let threads: Vec<u64> = doc
        .get("threads")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|t| t.as_u64().unwrap())
        .collect();
    assert!(
        threads.windows(2).all(|w| w[0] < w[1]),
        "thread list not monotone: {threads:?}"
    );

    // The allocation-observability flag is always present; the per-run
    // columns are zero-filled when it is false.
    let alloc_counting = doc.get("alloc_counting").unwrap().as_bool().unwrap();

    // Every family carries one run per benched thread count, with non-zero
    // stage spans and thread-count-invariant outputs.
    let families = doc.get("families").unwrap().as_array().unwrap();
    let names: Vec<&str> = families
        .iter()
        .map(|f| f.get("family").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["clique", "clique-union", "bipartite"]);
    for f in families {
        let name = f.get("family").unwrap().as_str().unwrap();
        assert!(f.get("vertices").unwrap().as_u64().unwrap() > 0);
        assert!(f.get("edges").unwrap().as_u64().unwrap() > 0);
        let runs = f.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), threads.len(), "{name}");
        let mut sizes = Vec::new();
        for (run, &t) in runs.iter().zip(&threads) {
            assert_eq!(run.get("threads").unwrap().as_u64(), Some(t), "{name}");
            assert!(run.get("total_nanos").unwrap().as_u64().unwrap() > 0);
            let stages = run.get("stage_nanos").unwrap();
            for key in ["mark", "extract", "match"] {
                assert!(
                    stages.get(key).unwrap().as_u64().unwrap() > 0,
                    "{name}: zero {key} span at {t} threads"
                );
            }
            assert!(run.get("speedup_vs_t1").unwrap().as_f64().unwrap() > 0.0);
            let alloc_bytes = run.get("alloc_bytes").unwrap().as_u64().unwrap();
            let alloc_count = run.get("alloc_count").unwrap().as_u64().unwrap();
            if !alloc_counting {
                assert_eq!((alloc_bytes, alloc_count), (0, 0), "{name}: dead columns");
            }
            sizes.push((
                run.get("matching_size").unwrap().as_u64().unwrap(),
                run.get("sparsifier_edges").unwrap().as_u64().unwrap(),
            ));
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "{name}: outputs vary with the thread count: {sizes:?}"
        );
    }

    // The huge tier (out-of-core streamed build) carries its full memory
    // schema even at quick scale — this is the `huge-smoke` validation CI
    // runs per PR. The memory claim is analytic, so unlike the wall-clock
    // gates it must hold at every scale.
    assert_huge_tier_schema(&doc, 0);

    // The backend race (delta vs edcs) carries its conformance fields at
    // every scale — the claims are analytic, only the timings vary.
    assert_backends_schema(&doc);

    // One steady-state row per family, with internally consistent fields.
    // The ≥1.3× warm-speedup acceptance bound is asserted on the committed
    // full-scale baseline only — a quick run inside a busy CI worker is
    // too noisy to gate on a wall-clock ratio.
    let steady = doc.get("steady_state").unwrap().as_array().unwrap();
    let steady_names: Vec<&str> = steady
        .iter()
        .map(|s| s.get("family").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(steady_names, names);
    for s in steady {
        let name = s.get("family").unwrap().as_str().unwrap();
        assert_eq!(s.get("threads").unwrap().as_u64(), Some(1), "{name}");
        assert!(s.get("reps").unwrap().as_u64().unwrap() >= 1, "{name}");
        let cold = s.get("cold_nanos_per_solve").unwrap().as_u64().unwrap();
        let warm = s.get("warm_nanos_per_solve").unwrap().as_u64().unwrap();
        assert!(cold > 0 && warm > 0, "{name}: zero-length steady solve");
        let speedup = s.get("warm_speedup").unwrap().as_f64().unwrap();
        assert!(
            (speedup - cold as f64 / warm as f64).abs() < 1e-9,
            "{name}: warm_speedup inconsistent with its numerator/denominator"
        );
        let cold_alloc = s.get("cold_alloc_bytes").unwrap().as_u64().unwrap();
        let warm_alloc = s.get("warm_alloc_bytes").unwrap().as_u64().unwrap();
        if alloc_counting {
            assert!(cold_alloc > 0, "{name}: cold solves must allocate");
            assert_eq!(warm_alloc, 0, "{name}: warm solves must not allocate");
        } else {
            assert_eq!((cold_alloc, warm_alloc), (0, 0), "{name}: dead columns");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Shared checks for the `huge` tier section (see EXPERIMENTS.md
/// "Benchmark baseline · huge tier"): every streamed family reports the
/// full memory schema, and the Theorem 3.1 space story holds —
/// `peak_resident_bytes < graph_bytes` with a probe budget sublinear in
/// `m`. `min_edges` lets the committed-baseline gate demand real scale.
fn assert_huge_tier_schema(doc: &Json, min_edges: u64) {
    let huge = doc
        .get("huge")
        .expect("huge tier section missing")
        .as_array()
        .unwrap();
    let names: Vec<&str> = huge
        .iter()
        .map(|h| h.get("family").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["clique-union", "bipartite", "power-law"]);
    for h in huge {
        let name = h.get("family").unwrap().as_str().unwrap();
        let field = |key: &str| -> u64 {
            h.get(key)
                .unwrap_or_else(|| panic!("{name}: huge row missing {key}"))
                .as_u64()
                .unwrap_or_else(|| panic!("{name}: huge.{key} is not an unsigned integer"))
        };
        let edges = field("edges");
        assert!(field("vertices") > 0, "{name}");
        assert!(
            edges >= min_edges,
            "{name}: huge tier ran at {edges} edges, need >= {min_edges}"
        );
        assert!(field("beta") >= 1 && field("delta") >= 1, "{name}");
        assert!(h.get("eps").unwrap().as_f64().unwrap() > 0.0, "{name}");

        // The headline gate: building out of core must stay strictly
        // cheaper than materializing the parent adjacency.
        let peak = field("peak_resident_bytes");
        let graph_bytes = field("graph_bytes");
        let sparsifier_bytes = field("sparsifier_bytes");
        assert!(
            peak < graph_bytes,
            "{name}: streamed peak {peak} B >= materialized parent {graph_bytes} B"
        );
        assert!(
            sparsifier_bytes <= peak,
            "{name}: sparsifier {sparsifier_bytes} B exceeds the reported peak {peak} B"
        );
        assert!(
            field("sparsifier_edges") < edges,
            "{name}: sparsifier kept every edge — no shrink"
        );
        assert!(field("matching_size") > 0, "{name}");
        assert!(field("solve_nanos") > 0, "{name}");

        // Probe accounting: internally consistent, sublinear in m, and
        // the stream side did exactly two passes (4m half-edge visits).
        let probes = h.get("probes").unwrap();
        let degree = probes.get("degree").unwrap().as_u64().unwrap();
        let neighbor = probes.get("neighbor").unwrap().as_u64().unwrap();
        let total = probes.get("total").unwrap().as_u64().unwrap();
        assert_eq!(degree + neighbor, total, "{name}: probe totals disagree");
        assert!(
            total < edges,
            "{name}: probe budget {total} >= m = {edges} (sublinearity lost)"
        );
        assert_eq!(field("edges_scanned"), 4 * edges, "{name}");
        let shrink = h.get("resident_shrink").unwrap().as_f64().unwrap();
        assert!(
            (shrink - graph_bytes as f64 / peak as f64).abs() < 1e-9,
            "{name}: resident_shrink inconsistent with its numerator/denominator"
        );
    }
}

/// Shared checks for the `backends` section (see EXPERIMENTS.md
/// "Benchmark baseline · backend race"): both backends on every
/// in-memory family and every streamed huge family, with the
/// conformance claims — size bound honored, matching sizes mutually
/// consistent under the claimed ratios — re-checkable from the JSON
/// alone. `results/RESULTS.md` renders its table from this section.
fn assert_backends_schema(doc: &Json) {
    let backends = doc.get("backends").expect("backends section missing");
    assert_eq!(backends.get("threads").unwrap().as_u64(), Some(1));
    let edcs = backends.get("edcs").expect("EDCS operating point missing");
    let beta = edcs.get("beta").unwrap().as_u64().unwrap();
    let lambda = edcs.get("lambda").unwrap().as_f64().unwrap();
    assert!(beta >= 2, "EDCS needs beta >= 2, got {beta}");
    assert!(0.0 < lambda && lambda < 1.0 && lambda * beta as f64 >= 1.0);

    // Cross-backend conformance slack: two certified backends can
    // disagree by at most the other's claimed ratio (each matching
    // lower-bounds the optimum the other's ratio upper-bounds), plus a
    // couple of edges of integer-rounding room.
    const SLACK: f64 = 2.0;

    let families = backends.get("families").unwrap().as_array().unwrap();
    let names: Vec<&str> = families
        .iter()
        .map(|f| f.get("family").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["clique", "clique-union", "bipartite"]);
    for f in families {
        let name = f.get("family").unwrap().as_str().unwrap();
        let vertices = f.get("vertices").unwrap().as_u64().unwrap();
        let edges = f.get("edges").unwrap().as_u64().unwrap();
        assert!(vertices > 0 && edges > 0, "{name}");
        let runs = f.get("runs").unwrap().as_array().unwrap();
        let kinds: Vec<&str> = runs
            .iter()
            .map(|r| r.get("backend").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(kinds, ["delta", "edcs"], "{name}");
        for r in runs {
            let b = r.get("backend").unwrap().as_str().unwrap();
            assert!(!r.get("params").unwrap().as_str().unwrap().is_empty());
            let ratio = r.get("claimed_ratio").unwrap().as_f64().unwrap();
            assert!(ratio >= 1.0, "{name}/{b}: ratio claim below 1");
            let bound = r.get("claimed_size_bound").unwrap().as_u64().unwrap();
            let kept = r.get("sparsifier_edges").unwrap().as_u64().unwrap();
            assert!(
                kept <= bound,
                "{name}/{b}: kept {kept} edges over the claimed bound {bound}"
            );
            assert!(r.get("total_nanos").unwrap().as_u64().unwrap() > 0);
            assert!(r.get("matching_size").unwrap().as_u64().unwrap() > 0);
            let stages = r.get("stage_nanos").unwrap();
            for key in ["mark", "extract", "match"] {
                assert!(
                    stages.get(key).unwrap().as_u64().unwrap() > 0,
                    "{name}/{b}: zero {key} span"
                );
            }
            let probes = r.get("probes_total").unwrap().as_u64().unwrap();
            // EDCS reads every edge at least once per fixpoint pass
            // (2m half-edge visits). Delta's probe budget is only
            // sublinear at streaming scale, so it gets no bound here —
            // the `huge`/`streamed` sections gate that.
            if b == "edcs" {
                assert!(probes >= 2 * edges, "{name}: edcs probes below one pass");
            } else {
                assert!(probes > 0, "{name}/{b}: no probes recorded");
            }
        }
        let size = |i: usize| runs[i].get("matching_size").unwrap().as_u64().unwrap() as f64;
        let ratio = |i: usize| runs[i].get("claimed_ratio").unwrap().as_f64().unwrap();
        assert!(
            size(0) <= ratio(1) * size(1) + SLACK && size(1) <= ratio(0) * size(0) + SLACK,
            "{name}: backends disagree beyond their claimed ratios \
             ({} vs {})",
            size(0),
            size(1)
        );
        let speedup = f.get("edcs_speedup_vs_delta").unwrap().as_f64().unwrap();
        assert!(speedup > 0.0, "{name}");
    }

    let streamed = backends.get("streamed").unwrap().as_array().unwrap();
    let names: Vec<&str> = streamed
        .iter()
        .map(|f| f.get("family").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["clique-union", "bipartite", "power-law"]);
    for f in streamed {
        let name = f.get("family").unwrap().as_str().unwrap();
        let edges = f.get("edges").unwrap().as_u64().unwrap();
        let runs = f.get("runs").unwrap().as_array().unwrap();
        let kinds: Vec<&str> = runs
            .iter()
            .map(|r| r.get("backend").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(kinds, ["delta", "edcs"], "{name}");
        for r in runs {
            let b = r.get("backend").unwrap().as_str().unwrap();
            let peak = r.get("peak_resident_bytes").unwrap().as_u64().unwrap();
            let graph_bytes = r.get("graph_bytes").unwrap().as_u64().unwrap();
            assert!(
                peak < graph_bytes,
                "{name}/{b}: streamed peak {peak} B >= parent {graph_bytes} B"
            );
            assert!(r.get("solve_nanos").unwrap().as_u64().unwrap() > 0);
            assert!(r.get("matching_size").unwrap().as_u64().unwrap() > 0);
            assert!(r.get("sparsifier_edges").unwrap().as_u64().unwrap() < edges);
            let scanned = r.get("edges_scanned").unwrap().as_u64().unwrap();
            let passes = r.get("passes").unwrap().as_u64().unwrap();
            match b {
                // The delta stream build does exactly two passes (4m
                // half-edge visits); the EDCS fixpoint re-scans until
                // convergence, which needs at least two passes (the
                // final pass observes no change).
                "delta" => assert_eq!(scanned, 4 * edges, "{name}"),
                _ => {
                    assert!(passes >= 2, "{name}: EDCS converged in < 2 passes?");
                    assert_eq!(scanned, passes * 2 * edges, "{name}");
                }
            }
        }
    }
}

/// Schema + identity gates shared by the quick-run and committed-artifact
/// distsim-scale checks: rows cover every (family, thread count) cell,
/// the sequential anchor is present, and — the tentpole contract — every
/// row's fingerprint matches the sequential run.
fn assert_distsim_scale_schema(doc: &Json, min_nodes: u64) {
    assert_eq!(
        doc.get("experiment").unwrap().as_str(),
        Some("distsim_scale")
    );
    assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("violations")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    let nodes = doc.get("nodes").unwrap().as_u64().unwrap();
    assert!(nodes >= min_nodes, "need >= {min_nodes} nodes, got {nodes}");
    let host = doc.get("host_parallelism").unwrap().as_u64().unwrap();
    assert!(host >= 1);
    let thread_counts: Vec<u64> = doc
        .get("thread_counts")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|t| t.as_u64().unwrap())
        .collect();
    assert_eq!(thread_counts, vec![1, 2, 4, 8]);

    let rows = doc.get("rows").unwrap().as_array().unwrap();
    let mut families = std::collections::BTreeMap::<String, Vec<u64>>::new();
    for row in rows {
        let family = row.get("family").unwrap().as_str().unwrap().to_string();
        let threads = row.get("threads").unwrap().as_u64().unwrap();
        assert_eq!(row.get("n").unwrap().as_u64(), Some(nodes));
        assert!(row.get("m").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("rounds").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("messages").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("bits").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("matching").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("wall_ms").unwrap().as_f64().unwrap() > 0.0);
        let speedup = row.get("speedup").unwrap().as_f64().unwrap();
        assert!(speedup > 0.0, "speedup must be present and positive");
        if threads == 1 {
            assert_eq!(speedup, 1.0, "t=1 is the speedup anchor");
        }
        assert_eq!(
            row.get("fingerprint_match").unwrap().as_bool(),
            Some(true),
            "{family} t={threads}: sharded run diverged from the sequential fingerprint"
        );
        families.entry(family).or_default().push(threads);
    }
    assert_eq!(families.len(), 2, "two graph families expected");
    for (family, counts) in families {
        assert_eq!(counts, vec![1, 2, 4, 8], "{family}: thread grid incomplete");
    }
}

/// Run the distsim-scale experiment on a tiny node count (debug builds
/// are slow; CI's release quick run covers 100k nodes) and validate the
/// schema + the sharded-vs-sequential identity gate end to end.
#[test]
fn distsim_scale_quick_run_writes_valid_schema() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-dscale-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_exp_distsim_scale"))
        .args(["--nodes", "4000"])
        .env("SPARSIMATCH_RESULTS_DIR", &dir)
        .status()
        .expect("distsim scale binary runs");
    assert!(status.success(), "exp_distsim_scale exited nonzero");

    let path = dir.join("distsim_scale.json");
    let text = std::fs::read_to_string(&path).expect("distsim scale JSON written");
    let doc = Json::parse(&text).expect("distsim scale JSON parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    assert_distsim_scale_schema(&doc, 4000);

    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance gate on the *committed* full-scale scaling run
/// (`results/distsim_scale.json`): at least a million simulated nodes,
/// per-thread-count wall time, and fingerprint identity on every row.
#[test]
fn committed_distsim_scale_is_full_scale_and_byte_identical() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/distsim_scale.json");
    let text =
        std::fs::read_to_string(&path).expect("committed results/distsim_scale.json present");
    let doc = Json::parse(&text).expect("committed distsim scale parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("full"));
    assert_distsim_scale_schema(&doc, 1_000_000);
}

/// The *committed* baseline (repo-root `BENCH_pipeline.json`) must record
/// the bench host's hardware parallelism — speedup ratios are
/// uninterpretable without it (see EXPERIMENTS.md "Benchmark baseline").
#[test]
fn committed_baseline_records_positive_host_parallelism() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pipeline.json");
    let text = std::fs::read_to_string(&path).expect("committed BENCH_pipeline.json present");
    let doc = Json::parse(&text).expect("committed baseline parses");
    assert_eq!(
        doc.get("benchmark").unwrap().as_str(),
        Some("bench_pipeline")
    );
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("full"));
    let host = doc
        .get("host_parallelism")
        .expect("host_parallelism field missing from the committed baseline")
        .as_u64()
        .expect("host_parallelism is not an unsigned integer");
    assert!(host >= 1, "host_parallelism must be positive, got {host}");
}

/// Acceptance gates on the *committed* full-scale baseline. These are
/// wall-clock claims, but the file is a committed artifact, so checking
/// it here is deterministic: whoever regenerates the baseline must do so
/// on a host where both bounds hold, or the regression is visible in
/// review.
///
/// 1. Small-input parallel regression: no family may be slower at t ≥ 2
///    than at t = 1 beyond a 25 % noise allowance (adaptive dispatch must
///    fall back to sequential where parallelism cannot pay).
/// 2. Stage shares: no family's `match` stage may silently dominate the
///    pipeline again. The t = 1 clique-union anomaly (match at 90 %+ of
///    total, vs ~4 % on clique) was traced to the bounded-augmentation
///    bulk loop re-scanning retired vertices; the phase rewrite fixed it,
///    and this share cap keeps the regression visible if it returns.
///    (Full-scale clique-union legitimately spends ~55–60 % in `match`
///    — many augmentation rounds on large cliques — so the cap sits at
///    75 %: well above honest shares, well below the 90 %+ anomaly.)
/// 3. Steady state: the warm-scratch repeat-solve path must beat the
///    cold path by ≥ 1.3× on at least one family.
#[test]
fn committed_baseline_meets_dispatch_and_steady_state_gates() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pipeline.json");
    let text = std::fs::read_to_string(&path).expect("committed BENCH_pipeline.json present");
    let doc = Json::parse(&text).expect("committed baseline parses");

    const MATCH_SHARE_CAP: f64 = 0.75;
    for f in doc.get("families").unwrap().as_array().unwrap() {
        let name = f.get("family").unwrap().as_str().unwrap();
        let runs = f.get("runs").unwrap().as_array().unwrap();
        let t1 = runs
            .iter()
            .find(|r| r.get("threads").unwrap().as_u64() == Some(1))
            .expect("t = 1 run present")
            .get("total_nanos")
            .unwrap()
            .as_u64()
            .unwrap();
        for r in runs {
            let t = r.get("threads").unwrap().as_u64().unwrap();
            let total = r.get("total_nanos").unwrap().as_u64().unwrap();
            assert!(
                total as f64 <= t1 as f64 * 1.25,
                "{name}: t = {t} took {total} ns vs {t1} ns at t = 1 — \
                 parallel dispatch regressed on a small input"
            );
            let matched = r
                .get("stage_nanos")
                .unwrap()
                .get("match")
                .unwrap()
                .as_u64()
                .unwrap();
            assert!(
                (matched as f64) <= MATCH_SHARE_CAP * total as f64,
                "{name}: match stage consumed {matched} of {total} ns at t = {t} \
                 (> {:.0}% share — the bounded-augmentation re-scan \
                 regression is back?)",
                MATCH_SHARE_CAP * 100.0
            );
        }
    }

    let best_speedup = doc
        .get("steady_state")
        .expect("steady_state section missing from the committed baseline")
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("warm_speedup").unwrap().as_f64().unwrap())
        .fold(0.0f64, f64::max);
    assert!(
        best_speedup >= 1.3,
        "no family reaches the 1.3x warm-scratch steady-state speedup \
         (best {best_speedup:.3})"
    );
}

/// Acceptance gate on the *committed* full-scale `huge` tier: the
/// out-of-core streamed build must have completed every family at
/// ≥ 20M edges with `peak_resident_bytes < graph_bytes` — Theorem 3.1's
/// sublinear probe budget paired with a resident set strictly below
/// what materializing the parent adjacency would cost.
#[test]
fn committed_baseline_huge_tier_is_out_of_core_at_scale() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pipeline.json");
    let text = std::fs::read_to_string(&path).expect("committed BENCH_pipeline.json present");
    let doc = Json::parse(&text).expect("committed baseline parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("full"));
    assert_huge_tier_schema(&doc, 20_000_000);
}

/// Acceptance gate on the *committed* full-scale `backends` section:
/// the race in `results/RESULTS.md` is only publishable because both
/// backends passed conformance first — size bounds honored, matching
/// sizes mutually consistent under the claimed ratios, and the streamed
/// arms out-of-core on every huge family.
#[test]
fn committed_baseline_backends_race_is_conformant() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pipeline.json");
    let text = std::fs::read_to_string(&path).expect("committed BENCH_pipeline.json present");
    let doc = Json::parse(&text).expect("committed baseline parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("full"));
    assert_backends_schema(&doc);
}

/// Shared structural checks for a `serve_bench.json` document at either
/// scale: every request answered, no unexpected errors, all five
/// command types present with monotone percentiles.
fn assert_serve_bench_schema(doc: &Json) {
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("serve_bench"));
    assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("violations")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    let total = doc.get("total_requests").unwrap().as_u64().unwrap();
    let served = doc.get("served").unwrap().as_u64().unwrap();
    let overloaded = doc.get("overloaded").unwrap().as_u64().unwrap();
    assert_eq!(doc.get("errors").unwrap().as_u64(), Some(0));
    assert_eq!(
        served + overloaded,
        total,
        "every request is either served or explicitly shed"
    );
    assert!(doc.get("sessions").unwrap().as_u64().unwrap() >= 2);
    assert!(doc.get("worker_threads").unwrap().as_u64().unwrap() >= 1);
    assert!(doc.get("queue_cap").unwrap().as_u64().unwrap() >= 1);
    assert!(doc.get("rate_per_session").unwrap().as_f64().unwrap() > 0.0);

    let commands = doc.get("commands").unwrap().as_array().unwrap();
    let names: Vec<&str> = commands
        .iter()
        .map(|c| c.get("command").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        names,
        ["load_graph", "solve", "update", "query", "metrics"],
        "latency percentiles must cover every command type"
    );
    let mut counted = 0u64;
    for c in commands {
        let name = c.get("command").unwrap().as_str().unwrap();
        let count = c.get("count").unwrap().as_u64().unwrap();
        assert!(count > 0, "{name}: empty latency bucket");
        counted += count;
        let p50 = c.get("p50_us").unwrap().as_u64().unwrap();
        let p99 = c.get("p99_us").unwrap().as_u64().unwrap();
        let p999 = c.get("p999_us").unwrap().as_u64().unwrap();
        let max = c.get("max_us").unwrap().as_u64().unwrap();
        assert!(
            p50 <= p99 && p99 <= p999 && p999 <= max,
            "{name}: percentiles not monotone ({p50}/{p99}/{p999}/{max})"
        );
    }
    assert_eq!(counted, served, "per-command counts must sum to served");
}

#[test]
fn serve_bench_quick_run_writes_valid_schema() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_exp_serve_bench"))
        .env("SPARSIMATCH_RESULTS_DIR", &dir)
        .status()
        .expect("serve bench binary runs");
    assert!(status.success(), "exp_serve_bench exited nonzero");

    let text =
        std::fs::read_to_string(dir.join("serve_bench.json")).expect("serve bench JSON written");
    let doc = Json::parse(&text).expect("serve bench JSON parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    assert_serve_bench_schema(&doc);

    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance gate on the *committed* full-scale replay
/// (`results/serve_bench.json`): at least one million requests through
/// the daemon, percentiles per command type, nothing lost.
#[test]
fn committed_serve_bench_is_full_scale_with_a_million_requests() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/serve_bench.json");
    let text = std::fs::read_to_string(&path).expect("committed results/serve_bench.json present");
    let doc = Json::parse(&text).expect("committed serve bench parses");
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("full"));
    let total = doc.get("total_requests").unwrap().as_u64().unwrap();
    assert!(
        total >= 1_000_000,
        "committed replay must cover at least 1M requests, got {total}"
    );
    assert_serve_bench_schema(&doc);
}
