//! Runs a real experiment binary on the quick grid and consumes the
//! machine-readable `results/<exp>.json` document it writes, closing the
//! loop on the export path (acceptance: the JSON is valid and is read back
//! by a test, not just written).

use sparsimatch_obs::Json;
use std::process::Command;

#[test]
fn quick_run_writes_valid_results_json() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_exp_o210_size"))
        .env("SPARSIMATCH_RESULTS_DIR", &dir)
        .status()
        .expect("experiment binary runs");
    assert!(status.success(), "exp_o210_size exited nonzero");

    let path = dir.join("exp_o210_size.json");
    let text = std::fs::read_to_string(&path).expect("results JSON written");
    let doc = Json::parse(&text).expect("results JSON parses");

    assert_eq!(
        doc.get("experiment").unwrap().as_str(),
        Some("exp_o210_size")
    );
    assert_eq!(doc.get("label").unwrap().as_str(), Some("E2"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
    // A quick run satisfies every bound, so the violation list is empty
    // and the flag is set.
    assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("violations")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    // The measured-vs-predicted table survives the roundtrip with at least
    // one data row, and its arity matches the headers.
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    assert!(!tables.is_empty());
    let headers = tables[0].get("headers").unwrap().as_array().unwrap();
    let rows = tables[0].get("rows").unwrap().as_array().unwrap();
    assert!(!rows.is_empty());
    for row in rows {
        assert_eq!(row.as_array().unwrap().len(), headers.len());
    }

    std::fs::remove_dir_all(&dir).ok();
}
