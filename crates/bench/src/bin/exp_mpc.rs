//! E15 — the MPC application (Section 3, opening paragraph): two
//! communication rounds with per-machine memory `O(n·Δ)` — sublinear in
//! `m` on dense inputs, where a naive single-shuffle of the whole graph
//! would need `Ω(m)` memory on some machine.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::mpc::{mpc_approx_mcm, MpcConfig};
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[400, 800],
        Scale::Full => &[400, 800, 1600, 3200],
    };
    let eps = 0.3;
    let beta = 2;
    let mut rng = StdRng::seed_from_u64(0xE15);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "m",
        "machines",
        "rounds",
        "max load (words)",
        "load/m-words",
        "|M|",
        "ratio vs exact",
    ]);

    println!("E15 / MPC: two-round sparsifier matching with sublinear machine memory");
    println!("input: dense 2-layer clique union (beta <= 2), eps = {eps}\n");
    for &n in ns {
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 2,
            },
            &mut rng,
        );
        let m_words = 2 * g.num_edges();
        let exact = maximum_matching(&g).len();
        let params = SparsifierParams::practical(beta, eps);
        let cfg = MpcConfig {
            machines: 16,
            memory_words: m_words, // cap at the input size; we check realized load
        };
        let out = mpc_approx_mcm(&g, &params, &cfg, 0xE15 + n as u64).expect("memory fits");
        let ratio = exact as f64 / out.matching.len().max(1) as f64;
        violations.check(out.rounds == 2, || format!("n={n}: rounds != 2"));
        violations.check(ratio <= 1.0 + eps, || {
            format!("n={n}: MPC ratio {ratio:.3} above 1+eps")
        });
        if n >= 800 {
            violations.check(out.max_round_load * 2 < m_words, || {
                format!(
                    "n={n}: max load {} words not well below input {} words",
                    out.max_round_load, m_words
                )
            });
        }
        table.row(vec![
            n.to_string(),
            g.num_edges().to_string(),
            cfg.machines.to_string(),
            out.rounds.to_string(),
            out.max_round_load.to_string(),
            f3(out.max_round_load as f64 / m_words as f64),
            out.matching.len().to_string(),
            f3(ratio),
        ]);
    }
    table.print();
    violations.finish_json("E15", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
