//! E10 — Theorem 3.5: fully dynamic `(1+ε)` matching with flat worst-case
//! update work, against oblivious and **adaptive** adversaries.
//!
//! Three competitors over the same β-bounded host streams:
//!
//! * the window scheme (this paper) — per-update work `O(β/ε³·log(1/ε))`,
//!   flat in n;
//! * the Barenboim–Maimon-style threshold maximal matching — update work
//!   growing like `√(βn)`, 2-approximate;
//! * naive full recompute — per-update work `Θ(|MCM|·Δ)`.
//!
//! The table reports max / p99 / mean per-update work (machine-independent
//! units) and the worst audited ratio against exact recomputation.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::stats::quantile;
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_dynamic::adversary::{Adversary, Policy, StreamAdversary};
use sparsimatch_dynamic::baselines::{NaiveRecompute, ThresholdMaximalMatching};
use sparsimatch_dynamic::harness::run_dynamic;
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::Matching;

fn main() {
    let scale = scale_from_args();
    let (ns, steps): (&[usize], usize) = match scale {
        Scale::Quick => (&[100, 200], 4000),
        Scale::Full => (&[100, 200, 400, 800], 20000),
    };
    let eps = 0.5;
    let beta = 2;
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "adversary",
        "algo",
        "max work",
        "p99 work",
        "mean work",
        "worst ratio",
    ]);

    println!("E10 / Theorem 3.5: dynamic update work and adaptive robustness");
    println!("host: 2-layer clique union (beta <= 2), eps = {eps}\n");
    let mut scheme_max_by_n = Vec::new();
    let mut threshold_max_by_n = Vec::new();
    for &n in ns {
        let mut rng = StdRng::seed_from_u64(0xE10 + n as u64);
        let host = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 4,
            },
            &mut rng,
        );
        for (adv_name, policy) in [
            ("oblivious", Policy::Oblivious { p_insert: 0.7 }),
            ("adaptive", Policy::AdaptiveDeleteMatched { p_insert: 0.7 }),
        ] {
            // (1) The window scheme.
            let params = SparsifierParams::practical(beta, eps);
            let mut dm = DynamicMatcher::new(n, params, 0xD + n as u64);
            let mut adv = StreamAdversary::new(&host, policy);
            let s = run_dynamic(&mut dm, &mut adv, steps, steps / 8, &mut rng);
            violations.check(s.worst_ratio <= 2.0, || {
                format!(
                    "scheme n={n} {adv_name}: ratio {:.3} blew past 2",
                    s.worst_ratio
                )
            });
            if adv_name == "adaptive" {
                scheme_max_by_n.push(s.max_work);
            }
            table.row(vec![
                n.to_string(),
                adv_name.into(),
                "window scheme".into(),
                s.max_work.to_string(),
                s.p99_work.to_string(),
                f3(s.avg_work),
                f3(s.worst_ratio),
            ]);

            // (1b) The genuinely time-sliced worst-case variant.
            let params = SparsifierParams::practical(beta, eps);
            let mut wc = sparsimatch_dynamic::sliced::WorstCaseDynamicMatcher::new(
                n,
                params,
                0xCC + n as u64,
            );
            let mut adv = StreamAdversary::new(&host, policy);
            let mut works = Vec::with_capacity(steps);
            let mut worst_ratio = 1.0f64;
            for step in 0..steps {
                let upd = adv.next(wc.matching(), &mut rng);
                works.push(wc.apply(upd) as f64);
                if step % (steps / 8) == (steps / 8) - 1 {
                    let snap = wc.graph().to_csr();
                    let exact = maximum_matching(&snap).len();
                    if exact > 0 {
                        worst_ratio =
                            worst_ratio.max(exact as f64 / wc.matching().len().max(1) as f64);
                    }
                    assert!(wc.matching().is_valid_for(&snap));
                }
            }
            let max_w = works.iter().cloned().fold(0.0f64, f64::max);
            table.row(vec![
                n.to_string(),
                adv_name.into(),
                "sliced worst-case".into(),
                (max_w as u64).to_string(),
                (quantile(&works, 0.99) as u64).to_string(),
                f3(works.iter().sum::<f64>() / works.len() as f64),
                f3(worst_ratio),
            ]);
            violations.check(worst_ratio <= 2.0, || {
                format!("sliced n={n} {adv_name}: ratio {worst_ratio:.3} blew past 2")
            });

            // (2) Threshold maximal matching baseline.
            let mut tm = ThresholdMaximalMatching::new(n, beta);
            let mut adv = StreamAdversary::new(&host, policy);
            let mut works = Vec::with_capacity(steps);
            let mut worst_ratio = 1.0f64;
            for step in 0..steps {
                let upd = adv.next(tm.matching(), &mut rng);
                works.push(tm.apply(upd) as f64);
                if step % (steps / 8) == (steps / 8) - 1 {
                    let snap = graph_of(&tm);
                    let exact = maximum_matching(&snap).len();
                    if exact > 0 {
                        worst_ratio =
                            worst_ratio.max(exact as f64 / tm.matching().len().max(1) as f64);
                    }
                }
            }
            let max_w = works.iter().cloned().fold(0.0f64, f64::max);
            if adv_name == "adaptive" {
                threshold_max_by_n.push(max_w as u64);
            }
            table.row(vec![
                n.to_string(),
                adv_name.into(),
                "threshold MM (BM)".into(),
                (max_w as u64).to_string(),
                (quantile(&works, 0.99) as u64).to_string(),
                f3(works.iter().sum::<f64>() / works.len() as f64),
                f3(worst_ratio),
            ]);
        }

        // (3) Naive recompute, oblivious only (it is slow by design).
        let mut rng2 = StdRng::seed_from_u64(0xE10 + n as u64);
        let mut nr = NaiveRecompute::new(n, SparsifierParams::practical(beta, eps), 3);
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 0.7 });
        let naive_steps = steps / 10;
        let mut works = Vec::with_capacity(naive_steps);
        for _ in 0..naive_steps {
            let upd = adv.next(&Matching::new(n), &mut rng2);
            works.push(nr.apply(upd) as f64);
        }
        table.row(vec![
            n.to_string(),
            "oblivious".into(),
            "naive recompute".into(),
            (works.iter().cloned().fold(0.0f64, f64::max) as u64).to_string(),
            (quantile(&works, 0.99) as u64).to_string(),
            f3(works.iter().sum::<f64>() / works.len() as f64),
            "-".into(),
        ]);
    }
    table.print();

    // Shape check: the scheme's worst-case work must stay flat while the
    // threshold baseline grows with sqrt(n)-ish.
    if scheme_max_by_n.len() >= 2 {
        let first = scheme_max_by_n[0] as f64;
        let last = *scheme_max_by_n.last().unwrap() as f64;
        let n_growth = ns[ns.len() - 1] as f64 / ns[0] as f64;
        violations.check(last <= first * n_growth.sqrt() + 200.0, || {
            format!("scheme max work grew {first} -> {last}: not flat in n")
        });
        println!(
            "\nscheme max work by n: {:?} (flat in n); threshold baseline max work by n: {:?}.",
            scheme_max_by_n, threshold_max_by_n
        );
        println!(
            "note: the threshold baseline's √(βn) repair *budget* grows (T = {:?} across n),\n\
             but dense hosts rarely exhaust it — its cost shows in the approximation column\n\
             (drifting toward 2) rather than in realized work.",
            ns.iter()
                .map(|&n| ThresholdMaximalMatching::new(n, beta).threshold())
                .collect::<Vec<_>>()
        );
    }
    violations.finish_json("E10", env!("CARGO_BIN_NAME"), scale, &[&table]);
}

fn graph_of(tm: &ThresholdMaximalMatching) -> sparsimatch_graph::csr::CsrGraph {
    tm.graph_snapshot()
}
