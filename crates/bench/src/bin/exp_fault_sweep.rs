//! Fault-injection sweep: how matching quality degrades as the seeded
//! transport drop rate rises, and how much the ack/retry resilience
//! layer wins back (ISSUE 3 tentpole experiment).
//!
//! Sweeps a grid of per-message drop probabilities over the distributed
//! maximal-matching pipeline. For each rate, several independent fault
//! seeds run the identical workload; the report carries per-rate means.
//! Three properties are enforced as bounds:
//!
//! 1. The `drop = 0` rows are *byte-identical* to the fault-free
//!    pipeline — same pairs, same metrics, zero fault counters. The
//!    fault layer is free when idle.
//! 2. Mean matching size is non-increasing in the drop rate (monotone
//!    degradation in expectation).
//! 3. At every rate, the hardened arm (ack/retry) recovers at least the
//!    fragile arm's mean size.
//!
//! A second arm (ISSUE 8) turns the same chaos discipline on the
//! out-of-core streamed build: seeded [`IoFaultPlan`]s inject transient
//! EIO, short reads, torn lines, and header mutations into the edge
//! stream while [`RetryPolicy`] restarts failed passes. Its bound is
//! *full recovery*: every row — at any injection rate whose horizon the
//! retry budget covers — must be byte-identical to the fault-free
//! streamed run, with the aborted rescans visible only in `io.retries`
//! and the half-edge-visit counter.
//!
//! Writes `results/fault_sweep.json` (schema in EXPERIMENTS.md);
//! structurally validated by `crates/bench/tests/results_json.rs`.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{results_dir, scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::stream_build::{
    approx_mcm_streamed, approx_mcm_streamed_with_retry, RetryPolicy,
};
use sparsimatch_distsim::algorithms::pipeline::{
    distributed_maximal_baseline, distributed_maximal_baseline_faulty, DistributedOutcome,
};
use sparsimatch_distsim::{FaultPlan, FaultRates, ResilienceParams};
use sparsimatch_graph::edge_stream::{FaultyEdgeSource, IoFaultPlan, IoFaultRates};
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_obs::Json;

/// Faults strike only the first two rounds: exactly the two one-round
/// sparsifier phases, the part of the pipeline a drop hurts most.
const HORIZON: u64 = 2;
const ALGO_SEED: u64 = 7;
const RETRIES: u32 = 2;

/// Scan attempts an I/O plan may fault before going clean; a retry
/// budget of `IO_HORIZON + 1` attempts per pass then guarantees the
/// streamed build recovers (attempts burn globally across both passes).
const IO_HORIZON: u64 = 3;

struct RateSummary {
    drop: f64,
    mean_size: f64,
    min_size: u64,
    max_size: u64,
    mean_dropped: f64,
    mean_rounds: f64,
    hardened_mean_size: f64,
    hardened_mean_retries: f64,
}

fn mean(xs: &[u64]) -> f64 {
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

fn main() {
    let scale = scale_from_args();
    let (n, seeds_per_rate): (usize, u64) = match scale {
        Scale::Quick => (160, 6),
        Scale::Full => (640, 24),
    };
    let drops: &[f64] = &[0.0, 0.3, 0.6, 0.95];

    let mut rng = StdRng::seed_from_u64(0xFA17);
    let g = clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: 24,
        },
        &mut rng,
    );
    let params = SparsifierParams::with_delta(2, 0.5, 8);
    let baseline = distributed_maximal_baseline(&g, &params, ALGO_SEED);

    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "drop",
        "mean |M|",
        "min..max",
        "mean dropped",
        "mean rounds",
        "hardened |M|",
        "mean retries",
    ]);
    let mut rows = Vec::new();

    println!("fault sweep: distributed maximal matching under seeded drops");
    println!(
        "family: clique-union (n = {n}, m = {}), horizon = {HORIZON}, \
         {seeds_per_rate} fault seeds per rate, retries = {RETRIES}\n",
        g.num_edges()
    );

    for &drop in drops {
        let rates = FaultRates {
            drop,
            ..Default::default()
        };
        let mut sizes = Vec::new();
        let mut dropped = Vec::new();
        let mut rounds = Vec::new();
        let mut hardened_sizes = Vec::new();
        let mut hardened_retries = Vec::new();
        for fault_seed in 0..seeds_per_rate {
            let plan = FaultPlan::new(fault_seed, rates).with_horizon(HORIZON);
            let out = distributed_maximal_baseline_faulty(
                &g,
                &params,
                ALGO_SEED,
                &plan,
                ResilienceParams::off(),
            );
            if drop == 0.0 {
                check_zero_fault_row(&mut violations, &baseline, &out, fault_seed);
            }
            let hard = distributed_maximal_baseline_faulty(
                &g,
                &params,
                ALGO_SEED,
                &plan,
                ResilienceParams::retry(RETRIES),
            );
            sizes.push(out.matching.len() as u64);
            dropped.push(out.faults.dropped);
            rounds.push(out.metrics.rounds);
            hardened_sizes.push(hard.matching.len() as u64);
            hardened_retries.push(hard.faults.retries);
        }
        let summary = RateSummary {
            drop,
            mean_size: mean(&sizes),
            min_size: *sizes.iter().min().unwrap(),
            max_size: *sizes.iter().max().unwrap(),
            mean_dropped: mean(&dropped),
            mean_rounds: mean(&rounds),
            hardened_mean_size: mean(&hardened_sizes),
            hardened_mean_retries: mean(&hardened_retries),
        };
        table.row(vec![
            format!("{drop:.2}"),
            f3(summary.mean_size),
            format!("{}..{}", summary.min_size, summary.max_size),
            f3(summary.mean_dropped),
            f3(summary.mean_rounds),
            f3(summary.hardened_mean_size),
            f3(summary.hardened_mean_retries),
        ]);
        rows.push(summary);
    }
    table.print();

    // Bound 2: monotone degradation in expectation.
    for pair in rows.windows(2) {
        violations.check(pair[0].mean_size >= pair[1].mean_size, || {
            format!(
                "mean size rose with the drop rate: {} @ {:.2} -> {} @ {:.2}",
                pair[0].mean_size, pair[0].drop, pair[1].mean_size, pair[1].drop
            )
        });
    }
    // Bound 3: retries never hurt.
    for r in &rows {
        violations.check(r.hardened_mean_size >= r.mean_size, || {
            format!(
                "resilience lost matching size at drop {:.2}: {} < {}",
                r.drop, r.hardened_mean_size, r.mean_size
            )
        });
    }

    let io_rows = io_fault_arm(&g, &params, seeds_per_rate, drops, &mut violations);

    write_sweep_json(
        scale,
        &g,
        seeds_per_rate,
        baseline.matching.len(),
        &rows,
        &io_rows,
        &violations,
    );
    violations.finish("fault_sweep");
}

struct IoRateSummary {
    p: f64,
    matching: u64,
    mean_retries: f64,
    mean_faults: f64,
    identical: bool,
}

/// The I/O arm: the streamed pipeline under seeded edge-stream faults.
/// Unlike the transport arm, degradation is not allowed here — the
/// retry layer must reach the exact fault-free result at every rate, so
/// the only thing the sweep "measures" is how many aborted rescans it
/// took to get there.
fn io_fault_arm(
    g: &sparsimatch_graph::csr::CsrGraph,
    params: &SparsifierParams,
    seeds_per_rate: u64,
    probabilities: &[f64],
    violations: &mut Violations,
) -> Vec<IoRateSummary> {
    let policy = RetryPolicy::attempts(IO_HORIZON as u32 + 1);
    let (clean, clean_report) =
        approx_mcm_streamed(&mut g.clone(), params, ALGO_SEED).expect("fault-free streamed build");
    let clean_pairs: Vec<_> = clean.matching.pairs().collect();

    let mut table = Table::new(&["p", "|M|", "identical", "mean retries", "mean faults"]);
    let mut rows = Vec::new();
    println!("\nI/O arm: streamed sparsifier build under seeded edge-stream faults");
    println!(
        "horizon = {IO_HORIZON}, retry budget = {} attempts per pass, \
         {seeds_per_rate} fault seeds per rate\n",
        IO_HORIZON + 1
    );
    for &p in probabilities {
        let rates = IoFaultRates {
            eio: p,
            short_read: 0.8 * p,
            torn_line: 0.8 * p,
            header_mutation: 0.5 * p,
        };
        let mut retries = Vec::new();
        let mut faults = Vec::new();
        let mut identical = true;
        for fault_seed in 0..seeds_per_rate {
            let plan = IoFaultPlan::new(fault_seed ^ 0x10FA, rates).with_horizon(IO_HORIZON);
            let mut src = FaultyEdgeSource::new(g.clone(), plan);
            let (res, report) =
                match approx_mcm_streamed_with_retry(&mut src, params, ALGO_SEED, &policy) {
                    Ok(r) => r,
                    Err(e) => {
                        violations.check(false, || {
                            format!("recoverable io plan (p {p:.2}, seed {fault_seed}) failed: {e}")
                        });
                        continue;
                    }
                };
            let same = res.matching.pairs().collect::<Vec<_>>() == clean_pairs
                && res.sparsifier == clean.sparsifier
                && res.probes == clean.probes
                && res.aug == clean.aug
                && report.sparsifier_bytes == clean_report.sparsifier_bytes
                && report.peak_resident_bytes == clean_report.peak_resident_bytes;
            identical &= same;
            violations.check(same, || {
                format!("io run (p {p:.2}, seed {fault_seed}) diverged from the fault-free build")
            });
            violations.check(report.io_retries == src.stats().total(), || {
                format!(
                    "io run (p {p:.2}, seed {fault_seed}) retries {} != injected faults {}",
                    report.io_retries,
                    src.stats().total()
                )
            });
            if p == 0.0 {
                // The zero-rate anchor: the fault layer is free when idle,
                // down to the half-edge-visit counter.
                violations.check(
                    report.io_retries == 0 && report.edges_scanned == clean_report.edges_scanned,
                    || {
                        format!(
                            "zero-rate io run (seed {fault_seed}) was not free: {} retries, \
                             {} half-edge visits (clean {})",
                            report.io_retries, report.edges_scanned, clean_report.edges_scanned
                        )
                    },
                );
            }
            retries.push(report.io_retries);
            faults.push(src.stats().total());
        }
        let summary = IoRateSummary {
            p,
            matching: clean_pairs.len() as u64,
            mean_retries: mean(&retries),
            mean_faults: mean(&faults),
            identical,
        };
        table.row(vec![
            format!("{p:.2}"),
            summary.matching.to_string(),
            summary.identical.to_string(),
            f3(summary.mean_retries),
            f3(summary.mean_faults),
        ]);
        rows.push(summary);
    }
    table.print();
    // The arm must actually exercise the retry path: at the top rate
    // nearly every early scan attempt faults.
    violations.check(rows.last().is_some_and(|r| r.mean_retries > 0.0), || {
        "the io arm never injected a fault; the retry path went unexercised".to_string()
    });
    rows
}

/// Bound 1: under a zero-fault plan every run must equal the fault-free
/// pipeline exactly — pairs, metrics, and fault counters.
fn check_zero_fault_row(
    violations: &mut Violations,
    baseline: &DistributedOutcome,
    out: &DistributedOutcome,
    fault_seed: u64,
) {
    let same_pairs =
        baseline.matching.pairs().collect::<Vec<_>>() == out.matching.pairs().collect::<Vec<_>>();
    violations.check(same_pairs, || {
        format!("zero-fault run (seed {fault_seed}) changed the matching")
    });
    violations.check(baseline.metrics == out.metrics, || {
        format!("zero-fault run (seed {fault_seed}) changed the metrics")
    });
    let f = &out.faults;
    violations.check(
        f.dropped == 0 && f.duplicated == 0 && f.retries == 0 && f.crashed_rounds == 0,
        || format!("zero-fault run (seed {fault_seed}) counted faults: {f}"),
    );
}

fn write_sweep_json(
    scale: Scale,
    g: &sparsimatch_graph::csr::CsrGraph,
    seeds_per_rate: u64,
    baseline_matching: usize,
    rows: &[RateSummary],
    io_rows: &[IoRateSummary],
    violations: &Violations,
) {
    let mut doc = Json::object();
    doc.set("experiment", "fault_sweep");
    doc.set("scale", scale.name());
    let mut graph = Json::object();
    graph.set("family", "clique-union");
    graph.set("vertices", g.num_vertices());
    graph.set("edges", g.num_edges());
    doc.set("graph", graph);
    doc.set("algo_seed", ALGO_SEED);
    doc.set("horizon", HORIZON);
    doc.set("retries", u64::from(RETRIES));
    doc.set("seeds_per_rate", seeds_per_rate);
    doc.set("baseline_matching", baseline_matching);
    let out_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("drop", r.drop);
            row.set("mean_size", r.mean_size);
            row.set("min_size", r.min_size);
            row.set("max_size", r.max_size);
            row.set("mean_dropped", r.mean_dropped);
            row.set("mean_rounds", r.mean_rounds);
            row.set("hardened_mean_size", r.hardened_mean_size);
            row.set("hardened_mean_retries", r.hardened_mean_retries);
            row
        })
        .collect();
    doc.set("rows", Json::Array(out_rows));
    let mut io = Json::object();
    io.set("horizon", IO_HORIZON);
    io.set("attempts", IO_HORIZON + 1);
    let io_out: Vec<Json> = io_rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("p", r.p);
            row.set("matching", r.matching);
            row.set("mean_retries", r.mean_retries);
            row.set("mean_faults", r.mean_faults);
            row.set("identical", r.identical);
            row
        })
        .collect();
    io.set("rows", Json::Array(io_out));
    doc.set("io", io);
    doc.set("bounds_ok", violations.is_empty());
    doc.set(
        "violations",
        Json::Array(
            violations
                .items()
                .iter()
                .map(|v| Json::from(v.as_str()))
                .collect(),
        ),
    );

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("FAILED to create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("fault_sweep.json");
    if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
        eprintln!("FAILED to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\n[fault_sweep] results written to {}", path.display());
}
