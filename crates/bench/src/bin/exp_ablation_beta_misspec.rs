//! E16 — ablation: what if β is misspecified?
//!
//! The sparsifier is sized from a *bound* on β. This sweep feeds the
//! construction a β parameter that under- or over-states the truth and
//! measures the realized approximation: overstating only wastes edges;
//! understating degrades gracefully (Δ shrinks linearly in the
//! misspecification factor) rather than failing catastrophically —
//! useful guidance for users who can only estimate β.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let (n, trials) = match scale {
        Scale::Quick => (300, 5),
        Scale::Full => (1200, 20),
    };
    let true_beta = 4;
    let eps = 0.3;
    let mut rng = StdRng::seed_from_u64(0xE16);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "claimed beta",
        "true beta",
        "delta",
        "|E(GΔ)|/m",
        "worst ratio",
        "1+eps",
        "holds",
    ]);

    println!("E16 / ablation: sparsifier under a misspecified beta");
    println!("instance: 4-layer clique union (true beta <= {true_beta}), eps = {eps}\n");
    let g = clique_union(
        CliqueUnionConfig {
            n,
            diversity: true_beta,
            clique_size: n / 8,
        },
        &mut rng,
    );
    let exact = maximum_matching(&g).len();
    for claimed in [1usize, 2, 4, 8, 16] {
        let params = SparsifierParams::practical(claimed, eps);
        let mut worst = 1.0f64;
        let mut edges = 0usize;
        for _ in 0..trials {
            let s = build_sparsifier(&g, &params, &mut rng);
            let sm = maximum_matching(&s.graph).len().max(1);
            worst = worst.max(exact as f64 / sm as f64);
            edges = edges.max(s.stats.edges);
        }
        let holds = worst <= 1.0 + eps;
        // Honest parameters (claimed >= true) must meet the bound.
        if claimed >= true_beta {
            violations.check(holds, || {
                format!("claimed beta {claimed} >= true {true_beta} yet ratio {worst:.3}")
            });
        }
        table.row(vec![
            claimed.to_string(),
            true_beta.to_string(),
            params.delta.to_string(),
            f3(edges as f64 / g.num_edges() as f64),
            f3(worst),
            f3(1.0 + eps),
            holds.to_string(),
        ]);
    }
    table.print();
    violations.finish_json("E16", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
