//! E18 — the dynamic distributed model (the last Section 3 intro
//! setting): maintaining the sparsifier in a changing network.
//!
//! Each topology update costs exactly one communication round and `O(Δ)`
//! one-bit messages (only the two endpoints resample); per-node memory
//! stays `O(deg + Δ)`. At any audit point, a `(1+ε)`-approximate matching
//! is extractable from the maintained sparsifier.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::dynamic_net::{DynamicNetwork, TopologyUpdate};
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 200],
        Scale::Full => &[100, 200, 400, 800],
    };
    let eps = 0.4;
    let beta = 2;
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "updates",
        "rounds/update",
        "msgs/update",
        "max node mem",
        "|E(GΔ)|",
        "worst audit ratio",
    ]);

    println!("E18 / dynamic distributed: sparsifier maintenance under topology churn");
    println!("host: 2-layer clique union (beta <= {beta}), eps = {eps}\n");
    for &n in ns {
        let mut rng = StdRng::seed_from_u64(0xE18 + n as u64);
        let host = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 4,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(beta, eps);
        let mut net = DynamicNetwork::new(n, params, 0xE18);
        let mut present: Vec<(u32, u32)> = Vec::new();
        let mut updates = 0u64;
        let mut worst_ratio = 1.0f64;
        let edges: Vec<(u32, u32)> = host.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        for (i, &(u, v)) in edges.iter().enumerate() {
            net.apply(TopologyUpdate::LinkUp(
                sparsimatch_graph::ids::VertexId(u),
                sparsimatch_graph::ids::VertexId(v),
            ));
            present.push((u, v));
            updates += 1;
            if rng.random_bool(0.25) && present.len() > 1 {
                let k = rng.random_range(0..present.len());
                let (a, b) = present.swap_remove(k);
                net.apply(TopologyUpdate::LinkDown(
                    sparsimatch_graph::ids::VertexId(a),
                    sparsimatch_graph::ids::VertexId(b),
                ));
                updates += 1;
            }
            if i % (edges.len() / 4).max(1) == (edges.len() / 4).max(1) - 1 {
                let snapshot = net.graph().to_csr();
                let exact = maximum_matching(&snapshot).len();
                if exact > 0 {
                    let sparse = maximum_matching(&net.sparsifier()).len().max(1);
                    worst_ratio = worst_ratio.max(exact as f64 / sparse as f64);
                }
            }
        }
        let m = net.metrics();
        violations.check(m.rounds == updates, || {
            format!("n={n}: rounds {} != updates {updates}", m.rounds)
        });
        violations.check(worst_ratio <= 1.0 + eps, || {
            format!("n={n}: audit ratio {worst_ratio:.3} above 1+eps")
        });
        let msgs_per_update = m.messages as f64 / updates as f64;
        violations.check(
            msgs_per_update <= 4.0 * (params.mark_cap() + params.delta) as f64,
            || format!("n={n}: {msgs_per_update:.1} msgs/update above O(Δ)"),
        );
        table.row(vec![
            n.to_string(),
            updates.to_string(),
            f3(m.rounds as f64 / updates as f64),
            f3(msgs_per_update),
            net.max_node_memory().to_string(),
            net.sparsifier().num_edges().to_string(),
            f3(worst_ratio),
        ]);
    }
    table.print();
    violations.finish_json("E18", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
