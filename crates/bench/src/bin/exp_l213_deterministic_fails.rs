//! E5 — Lemma 2.13: deterministic marking cannot sparsify.
//!
//! Two demonstrations, both on the clique-minus-one-edge family:
//!
//! 1. **Fixed-layout worst case** — structure-exploiting deterministic
//!    rules (first-Δ, strided) collapse the sparsifier MCM to ~Δ on
//!    concrete adjacency arrays, realizing a ratio near `n/(2Δ)`.
//! 2. **The adaptive probe game** — the lemma's actual adversary answers
//!    the marker's probes; then *every* deterministic rule, including
//!    hash-spread ones, ends with ratio ≥ `n/(2Δ)` (or an infeasible
//!    output). The random sparsifier on the same instance stays near 1.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::lower_bounds::{
    build_plain_sparsifier, deterministic_marker_worst_case, play_adversary_game,
    DeterministicMarker, FirstDelta, KeyedHash, Strided,
};
use sparsimatch_graph::generators::clique_minus_edge;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let (ns, delta): (&[usize], usize) = match scale {
        Scale::Quick => (&[64, 128], 4),
        Scale::Full => (&[64, 128, 256, 512], 6),
    };
    let mut rng = StdRng::seed_from_u64(0xE5);
    let mut violations = Violations::new();

    println!("E5 / Lemma 2.13: deterministic marking fails on cliques-minus-an-edge\n");
    println!("(a) fixed-layout worst case over non-edge placements:");
    let mut t1 = Table::new(&[
        "marker",
        "n",
        "delta",
        "true mcm",
        "sparsifier mcm",
        "ratio",
        "n/(2Δ)",
    ]);
    for &n in ns {
        for marker in [&FirstDelta as &dyn DeterministicMarker, &Strided] {
            let r = deterministic_marker_worst_case(marker, n, delta, 8);
            violations.check(r.ratio >= r.lemma_bound / 4.0, || {
                format!(
                    "{} n={n}: fixed-layout ratio {:.2} far below the lemma shape {:.2}",
                    r.marker, r.ratio, r.lemma_bound
                )
            });
            t1.row(vec![
                r.marker.into(),
                n.to_string(),
                delta.to_string(),
                r.true_mcm.to_string(),
                r.worst_sparsifier_mcm.to_string(),
                f3(r.ratio),
                f3(r.lemma_bound),
            ]);
        }
    }
    t1.print();

    println!("\n(b) the adaptive probe game (the lemma's adversary):");
    let mut t2 = Table::new(&["marker", "n", "delta", "feasible", "ratio", "n/(2Δ)"]);
    for &n in ns {
        for marker in [
            &FirstDelta as &dyn DeterministicMarker,
            &Strided,
            &KeyedHash { key: 0xC0FFEE },
        ] {
            let r = play_adversary_game(marker, n, delta);
            violations.check(!r.feasible || r.ratio >= r.lemma_bound, || {
                format!(
                    "{} n={n}: adaptive-game ratio {:.2} below lemma bound {:.2}",
                    marker.name(),
                    r.ratio,
                    r.lemma_bound
                )
            });
            t2.row(vec![
                marker.name().into(),
                n.to_string(),
                delta.to_string(),
                r.feasible.to_string(),
                if r.ratio.is_infinite() {
                    "inf".into()
                } else {
                    f3(r.ratio)
                },
                f3(r.lemma_bound),
            ]);
        }
    }
    t2.print();

    println!("\n(c) the random sparsifier on the same instances (contrast):");
    let mut t3 = Table::new(&["n", "delta", "true mcm", "random GΔ mcm", "ratio"]);
    for &n in ns {
        let g = clique_minus_edge(n, (0, 1));
        let s = build_plain_sparsifier(&g, delta, &mut rng);
        let sparse = maximum_matching(&s).len();
        let true_mcm = n / 2;
        violations.check((sparse as f64) * 2.0 >= true_mcm as f64, || {
            format!("random sparsifier n={n}: mcm {sparse} below half of {true_mcm}")
        });
        t3.row(vec![
            n.to_string(),
            delta.to_string(),
            true_mcm.to_string(),
            sparse.to_string(),
            f3(true_mcm as f64 / sparse.max(1) as f64),
        ]);
    }
    t3.print();
    violations.finish_json("E5", env!("CARGO_BIN_NAME"), scale, &[&t1, &t2, &t3]);
}
