//! E2 — Observation 2.10: sparsifier size bounds.
//!
//! `|E(G_Δ)| ≤ 2·|MCM(G)|·(mark_cap + β)` deterministically, which beats
//! the naive `n·mark_cap` bound whenever the matching is small. Both
//! bounds are verified on every trial; the table reports how much slack
//! each leaves.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{ratio, Table};
use sparsimatch_bench::workloads::standard_families;
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let (n, trials) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (1500, 10),
    };
    let mut rng = StdRng::seed_from_u64(0xE2);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "n",
        "m",
        "beta",
        "delta",
        "|E(GΔ)|",
        "2·MCM·(cap+β)",
        "n·cap",
        "size/obs-bound",
        "size/naive",
    ]);

    println!("E2 / Observation 2.10: size of the sparsifier\n");
    for inst in standard_families(n, &mut rng) {
        let params = SparsifierParams::practical(inst.beta, 0.3);
        let mcm = maximum_matching(&inst.graph).len();
        for _ in 0..trials {
            let s = build_sparsifier(&inst.graph, &params, &mut rng);
            let obs_bound = params.size_bound(mcm);
            let naive = params.naive_size_bound(inst.graph.num_vertices());
            violations.check(s.stats.edges <= obs_bound, || {
                format!(
                    "{}: {} edges exceed Observation 2.10 bound {}",
                    inst.name, s.stats.edges, obs_bound
                )
            });
            violations.check(s.stats.edges <= naive, || {
                format!(
                    "{}: {} edges exceed the naive bound {}",
                    inst.name, s.stats.edges, naive
                )
            });
            table.row(vec![
                inst.name.into(),
                inst.graph.num_vertices().to_string(),
                inst.graph.num_edges().to_string(),
                inst.beta.to_string(),
                params.delta.to_string(),
                s.stats.edges.to_string(),
                obs_bound.to_string(),
                naive.to_string(),
                ratio(s.stats.edges as f64, obs_bound as f64),
                ratio(s.stats.edges as f64, naive as f64),
            ]);
        }
    }
    table.print();
    violations.finish_json("E2", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
