//! E1 — Theorem 2.1: `G_Δ` is a `(1+ε)`-matching sparsifier w.h.p.
//!
//! For every bounded-β family and ε, build the sparsifier with the
//! practically-scaled Δ and compare `|MCM(G_Δ)|` against `|MCM(G)|`
//! computed exactly (Edmonds). The theorem demands
//! `|MCM(G)| ≤ (1+ε)·|MCM(G_Δ)|` on every trial, w.h.p.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::workloads::standard_families;
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let (n, trials, epsilons): (usize, usize, &[f64]) = match scale {
        Scale::Quick => (300, 3, &[0.5, 0.3]),
        Scale::Full => (1200, 10, &[0.5, 0.3, 0.15]),
    };
    let mut rng = StdRng::seed_from_u64(0xE1);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "n",
        "m",
        "beta",
        "eps",
        "delta",
        "|E(GΔ)|",
        "mcm(G)",
        "worst ratio",
        "bound",
    ]);

    println!("E1 / Theorem 2.1: (1+eps)-approximation of the random sparsifier\n");
    for &eps in epsilons {
        for inst in standard_families(n, &mut rng) {
            let params = SparsifierParams::practical(inst.beta, eps);
            let exact = maximum_matching(&inst.graph).len();
            if exact == 0 {
                continue;
            }
            let mut worst = 1.0f64;
            let mut edges = 0usize;
            for _ in 0..trials {
                let s = build_sparsifier(&inst.graph, &params, &mut rng);
                let sparse_mcm = maximum_matching(&s.graph).len().max(1);
                worst = worst.max(exact as f64 / sparse_mcm as f64);
                edges = edges.max(s.stats.edges);
            }
            violations.check(worst <= 1.0 + eps, || {
                format!(
                    "{} eps={eps}: worst ratio {worst:.4} exceeds {:.2}",
                    inst.name,
                    1.0 + eps
                )
            });
            table.row(vec![
                inst.name.into(),
                inst.graph.num_vertices().to_string(),
                inst.graph.num_edges().to_string(),
                inst.beta.to_string(),
                f3(eps),
                params.delta.to_string(),
                edges.to_string(),
                exact.to_string(),
                f3(worst),
                f3(1.0 + eps),
            ]);
        }
    }
    table.print();
    violations.finish_json("E1", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
