//! Pipeline throughput baseline: the end-to-end sparsify-and-match hot
//! path across `{clique, bounded-β clique-union, bipartite} × {1,2,4,8}`
//! threads, written as `BENCH_pipeline.json` so future changes have a
//! recorded trajectory to beat.
//!
//! Unlike the `exp_*` binaries this measures *wall-clock*, not unit
//! counts, so the output varies by host; the `host_parallelism` field
//! records how many hardware threads were available (speedups are only
//! meaningful when it exceeds the thread count). Output correctness is
//! still asserted: the matching and sparsifier must be identical for
//! every thread count, and any mismatch exits nonzero.
//!
//! Every `(family, threads)` cell holds one [`PipelineScratch`] arena
//! across its repetitions, so the recorded numbers reflect the steady
//! state long-lived callers run at. A separate `steady_state` section
//! quantifies that effect directly: per family at one thread, it times
//! cold-start solves (fresh arena per call, heap trimmed back to the OS
//! between solves so each pays real first-touch page faults) against
//! warm solves through a reused arena and records the `warm_speedup`
//! ratio. The steady-state
//! rows use fixed repeat-solve shapes (identical at both scales, with
//! `vertices`/`edges` recorded per row) rather than the throughput
//! instances: arena reuse saves a fixed per-solve setup cost, and the
//! callers that repeat solves — dynamic rebuilds, oracle sweeps — run
//! on small-to-medium instances where that cost is a real fraction of
//! the solve, not on multi-second headline graphs that would bury it. When built with
//! `--features alloc-count` the binary installs the counting global
//! allocator and adds per-run `alloc_bytes`/`alloc_count` columns
//! (main-thread deltas; the `alloc_counting` flag says whether the
//! columns are live or zero-filled).
//!
//! A final `huge` tier exercises the out-of-core path at the scales the
//! in-memory tiers cannot: each family is generated, spilled to an
//! edge-list file, dropped, and solved through
//! [`approx_mcm_streamed`] — ≥ 20M edges per family at `--full`, a ~2M
//! `huge-smoke` shape at `--quick`. Its rows record the analytic
//! resident-memory high water (`peak_resident_bytes`), what
//! materializing the parent would cost (`graph_bytes`), the sparsifier
//! footprint, and the probe counts; the headline gate
//! `peak_resident_bytes < graph_bytes` is asserted here and re-checked
//! against the committed baseline by `tests/results_json.rs`.
//!
//! A `backends` section races the two sparsifier backends (`delta` vs
//! `edcs` at β = 16, λ = 1/8) through the `MatchingSparsifier` trait:
//! conformance first — valid matchings, each backend under its own
//! claimed size bound, the two matching sizes mutually consistent under
//! the claimed ratios — then best-of-reps wall-clock per family at one
//! thread, plus a streamed rematch over the spilled `huge` files
//! (the EDCS fixpoint re-scans the file until convergence, so its
//! `edges_scanned` is `passes × 2m` against the delta build's fixed
//! `4m`). `results/RESULTS.md` renders the head-to-head table from this
//! section.
//!
//! Usage: `bench_baseline [--full]`; the output path defaults to
//! `BENCH_pipeline.json` in the current directory and can be overridden
//! with the `SPARSIMATCH_BENCH_OUT` environment variable. The schema is
//! documented in EXPERIMENTS.md ("Benchmark baseline").

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::backend::{DeltaBackend, EdcsBackend, MatchingSparsifier};
use sparsimatch_core::edcs::EdcsParams;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::{
    approx_mcm_via_sparsifier, approx_mcm_via_sparsifier_with_scratch,
    approx_mcm_via_sparsifier_with_scratch_metered,
};
use sparsimatch_core::scratch::PipelineScratch;
use sparsimatch_core::stream_build::{approx_mcm_streamed, StreamBuildReport};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::edge_stream::FileEdgeSource;
use sparsimatch_graph::generators::{
    bipartite_gnp, clique, clique_union, power_law, CliqueUnionConfig,
};
use sparsimatch_graph::io::write_edge_list_file;
use sparsimatch_obs::{keys, Json, WorkMeter};
use std::time::Instant;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: sparsimatch_obs::alloc::CountingAllocator = sparsimatch_obs::alloc::CountingAllocator;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The EDCS arm of the backend race runs at β = 16 with the β-derived
/// default λ = 2/β — the same operating point the CLI's
/// `--backend edcs` defaults to, so the committed numbers describe what
/// a user who just flips the flag gets.
const EDCS_BETA: usize = 16;
const EDCS_LAMBDA: f64 = 0.125;

/// Slack for cross-backend conformance: each backend's claimed ratio
/// bounds the *optimum*, so two certified backends can disagree by at
/// most the product of their ratios — plus a couple of edges of
/// integer-rounding room on small instances.
const BACKEND_ABS_SLACK: f64 = 2.0;

#[cfg(target_env = "gnu")]
extern "C" {
    fn malloc_trim(pad: usize) -> i32;
}

/// Return freed heap memory to the OS, so the next solve pays the page
/// faults a genuinely cold caller (a fresh process, a dropped arena)
/// pays. Without this, glibc retains the previous cold solve's arena
/// pages and the "cold" loop silently measures a half-warm heap. No-op
/// off glibc — cold numbers are then an underestimate.
fn trim_heap() {
    #[cfg(target_env = "gnu")]
    unsafe {
        malloc_trim(0);
    }
}

/// Current-thread allocation counters `(bytes, count)`; zeros when the
/// binary was built without `alloc-count`.
fn alloc_totals() -> (u64, u64) {
    #[cfg(feature = "alloc-count")]
    {
        let t = sparsimatch_obs::alloc::thread_totals();
        (t.bytes, t.count)
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        (0, 0)
    }
}

struct Family {
    name: &'static str,
    graph: CsrGraph,
    beta: usize,
    eps: f64,
}

fn families(scale: Scale) -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(0xBE);
    let (clique_n, union_n, union_size, bip_side, bip_deg) = match scale {
        Scale::Quick => (300usize, 5_000usize, 50usize, 2_000usize, 10.0f64),
        // The union instance is the headline: 1e5 vertices, ~6M edges,
        // β ≤ 2 — the regime the paper targets.
        Scale::Full => (2_000, 100_000, 64, 50_000, 20.0),
    };
    vec![
        Family {
            name: "clique",
            graph: clique(clique_n),
            beta: 1,
            eps: 0.3,
        },
        Family {
            name: "clique-union",
            graph: clique_union(
                CliqueUnionConfig {
                    n: union_n,
                    diversity: 2,
                    clique_size: union_size,
                },
                &mut rng,
            ),
            beta: 2,
            eps: 0.3,
        },
        Family {
            name: "bipartite",
            graph: bipartite_gnp(bip_side, bip_side, bip_deg / bip_side as f64, &mut rng),
            beta: 4,
            eps: 0.3,
        },
    ]
}

/// Fixed repeat-solve shapes for the steady-state comparison: the sizes
/// long-lived repeat callers (dynamic rebuilds, check sweeps) operate
/// on, identical at both scales so the committed gate and a quick CI run
/// measure the same thing.
fn steady_families() -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(0xBE);
    vec![
        Family {
            name: "clique",
            graph: clique(100),
            beta: 1,
            eps: 0.3,
        },
        Family {
            name: "clique-union",
            graph: clique_union(
                CliqueUnionConfig {
                    n: 2_000,
                    diversity: 2,
                    clique_size: 40,
                },
                &mut rng,
            ),
            beta: 2,
            eps: 0.3,
        },
        Family {
            name: "bipartite",
            graph: bipartite_gnp(1_000, 1_000, 8.0 / 1_000.0, &mut rng),
            beta: 4,
            eps: 0.3,
        },
    ]
}

/// A `huge`-tier instance: generated, spilled to an edge-list file,
/// dropped from memory, then solved entirely through the out-of-core
/// streaming build ([`approx_mcm_streamed`]). The tier's claim is
/// Theorem 3.1's space story — `peak_resident_bytes < graph_bytes`, with
/// a probe budget sublinear in `m` — so it reports bytes and probe
/// counts, not thread scaling (this is also why the tier is benched at
/// the stream build's single natural thread).
struct HugeSpec {
    name: &'static str,
    params: SparsifierParams,
    generate: Box<dyn FnOnce(&mut StdRng) -> CsrGraph>,
}

/// The `huge` streamed families. Sizes put every sampled vertex class
/// well above the stage mark cap, so the sparsifier genuinely shrinks
/// and the committed `peak_resident_bytes < graph_bytes` gate has teeth:
/// at `--full` every family exceeds 20M edges, at `--quick` each is the
/// ~2M-edge `huge-smoke` shape CI runs per PR.
fn huge_families(scale: Scale) -> Vec<HugeSpec> {
    let (cu_n, cu_size, bip_side, bip_deg, pl_n, pl_attach) = match scale {
        Scale::Quick => (
            10_000usize,
            200usize,
            2_600usize,
            800.0f64,
            52_000usize,
            40usize,
        ),
        Scale::Full => (62_000, 360, 26_000, 800.0, 560_000, 40),
    };
    vec![
        HugeSpec {
            name: "clique-union",
            params: SparsifierParams::practical(2, 0.3),
            generate: Box::new(move |rng| {
                clique_union(
                    CliqueUnionConfig {
                        n: cu_n,
                        diversity: 2,
                        clique_size: cu_size,
                    },
                    rng,
                )
            }),
        },
        HugeSpec {
            name: "bipartite",
            params: SparsifierParams::practical(4, 0.3),
            generate: Box::new(move |rng| {
                bipartite_gnp(bip_side, bip_side, bip_deg / bip_side as f64, rng)
            }),
        },
        HugeSpec {
            // Preferential-attachment degrees hug the 2·attach mean, so
            // an explicit Δ pin keeps the stage mark cap below the bulk
            // degree (practical Δ for β = 2 would keep the whole graph).
            name: "power-law",
            params: SparsifierParams::with_delta(2, 0.3, 4),
            generate: Box::new(move |rng| power_law(pl_n, pl_attach, rng)),
        },
    ]
}

struct HugeRun {
    name: &'static str,
    vertices: usize,
    edges: usize,
    params: SparsifierParams,
    report: StreamBuildReport,
    matching_size: usize,
    sparsifier_edges: usize,
    solve_nanos: u64,
}

fn bench_huge(
    spec: HugeSpec,
    dir: &std::path::Path,
    seed_index: u64,
    violations: &mut Violations,
) -> (HugeRun, [StreamedRow; 2]) {
    let name = spec.name;
    let mut rng = StdRng::seed_from_u64(0xB16 ^ seed_index);
    let g = (spec.generate)(&mut rng);
    let (vertices, edges) = (g.num_vertices(), g.num_edges());
    let path = dir.join(format!("{name}.el"));
    write_edge_list_file(&g, &path).expect("spill huge instance to disk");
    // From here on the parent graph exists only as a file: the build's
    // resident set is what the report accounts for.
    drop(g);
    let mut src = FileEdgeSource::open(&path).expect("huge edge list re-opens");
    let t0 = Instant::now();
    let (result, report) =
        approx_mcm_streamed(&mut src, &spec.params, 7).expect("streamed pipeline runs");
    let solve_nanos = t0.elapsed().as_nanos() as u64;

    // The EDCS arm of the streamed backend race reuses the spilled file:
    // its fixpoint re-scans until convergence, so `edges_scanned` is
    // `passes × 2m` rather than the delta build's fixed `4m`.
    let edcs_backend = EdcsBackend {
        params: EdcsParams::new(EDCS_BETA, EDCS_LAMBDA).expect("bench EDCS point is valid"),
        eps: spec.params.eps,
    };
    let mut src = FileEdgeSource::open(&path).expect("huge edge list re-opens for the EDCS arm");
    let t0 = Instant::now();
    let (edcs_result, edcs_report) = edcs_backend
        .solve_streamed(&mut src, 7)
        .expect("streamed EDCS runs");
    let edcs_nanos = t0.elapsed().as_nanos() as u64;
    std::fs::remove_file(&path).ok();

    violations.check(
        edcs_report.peak_resident_bytes < edcs_report.graph_bytes,
        || {
            format!(
                "{name}: streamed EDCS peak {} B >= materialized parent {} B",
                edcs_report.peak_resident_bytes, edcs_report.graph_bytes
            )
        },
    );
    violations.check(
        edcs_result.sparsifier.edges <= edcs_backend.claimed_size_bound(vertices),
        || {
            format!(
                "{name}: streamed EDCS kept {} edges, over its claimed bound {}",
                edcs_result.sparsifier.edges,
                edcs_backend.claimed_size_bound(vertices)
            )
        },
    );
    let delta_backend = DeltaBackend {
        params: spec.params,
    };
    let streamed = [
        StreamedRow {
            backend: delta_backend.name(),
            params: delta_backend.params_summary(),
            solve_nanos,
            peak_resident_bytes: report.peak_resident_bytes,
            graph_bytes: report.graph_bytes,
            sparsifier_edges: result.sparsifier.edges,
            matching_size: result.matching.len(),
            edges_scanned: report.edges_scanned,
            passes: report.edges_scanned / (2 * edges as u64),
        },
        StreamedRow {
            backend: edcs_backend.name(),
            params: edcs_backend.params_summary(),
            solve_nanos: edcs_nanos,
            peak_resident_bytes: edcs_report.peak_resident_bytes,
            graph_bytes: edcs_report.graph_bytes,
            sparsifier_edges: edcs_result.sparsifier.edges,
            matching_size: edcs_result.matching.len(),
            edges_scanned: edcs_report.edges_scanned,
            passes: edcs_report.edges_scanned / (2 * edges as u64),
        },
    ];

    violations.check(report.peak_resident_bytes < report.graph_bytes, || {
        format!(
            "{name}: streamed build peak {} B >= materialized parent {} B",
            report.peak_resident_bytes, report.graph_bytes
        )
    });
    violations.check(result.sparsifier.edges < edges, || {
        format!(
            "{name}: sparsifier kept all {} edges — no shrink at this scale",
            edges
        )
    });
    violations.check(report.probes.total() < edges as u64, || {
        format!(
            "{name}: probe budget {} >= m = {} (sublinearity lost)",
            report.probes.total(),
            edges
        )
    });
    let huge = HugeRun {
        name,
        vertices,
        edges,
        params: spec.params,
        report,
        matching_size: result.matching.len(),
        sparsifier_edges: result.sparsifier.edges,
        solve_nanos,
    };
    (huge, streamed)
}

struct Run {
    threads: usize,
    total_nanos: u64,
    mark_nanos: u64,
    extract_nanos: u64,
    match_nanos: u64,
    matching_size: usize,
    sparsifier_edges: usize,
    alloc_bytes: u64,
    alloc_count: u64,
}

/// Steady-state repeat-solve comparison for one family at one thread:
/// cold constructs a fresh arena per solve, warm reuses one arena.
struct Steady {
    family: &'static str,
    vertices: usize,
    edges: usize,
    reps: usize,
    cold_nanos_per_solve: u64,
    warm_nanos_per_solve: u64,
    warm_speedup: f64,
    cold_alloc_bytes: u64,
    warm_alloc_bytes: u64,
}

/// Fastest repetition of a `(family, threads)` cell:
/// `(total_nanos, meter, matching_size, sparsifier_edges, (alloc_bytes, alloc_count))`.
type BestRep = (u64, WorkMeter, usize, usize, (u64, u64));

fn bench_family(f: &Family, reps: usize, violations: &mut Violations) -> Vec<Run> {
    let params = SparsifierParams::practical(f.beta, f.eps);
    let mut runs = Vec::new();
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for &threads in &THREADS {
        // One arena per (family, threads) cell: the first repetition
        // warms it and the rest measure the steady state, exactly how
        // long-lived callers (DynamicMatcher, the check sweep) run.
        let mut scratch = PipelineScratch::new();
        let mut best: Option<BestRep> = None;
        for _ in 0..reps {
            let mut meter = WorkMeter::new();
            let alloc_before = alloc_totals();
            let r = approx_mcm_via_sparsifier_with_scratch_metered(
                &f.graph,
                &params,
                7,
                threads,
                &mut meter,
                &mut scratch,
            )
            .expect("thread counts 1..=8 are always accepted");
            let alloc_after = alloc_totals();
            let total = meter.span_stats(keys::PIPELINE_TOTAL).total_nanos as u64;
            let pairs: Vec<(u32, u32)> = r.matching.pairs().map(|(u, v)| (u.0, v.0)).collect();
            let stats = (r.matching.len(), r.sparsifier.edges);
            match &reference {
                None => reference = Some(pairs),
                Some(expect) => violations.check(*expect == pairs, || {
                    format!(
                        "{}: matching differs at {} threads (thread-count invariance broken)",
                        f.name, threads
                    )
                }),
            }
            if best.as_ref().is_none_or(|(t, ..)| total < *t) {
                let delta = (
                    alloc_after.0 - alloc_before.0,
                    alloc_after.1 - alloc_before.1,
                );
                best = Some((total, meter, stats.0, stats.1, delta));
            }
        }
        let (total, meter, matching_size, sparsifier_edges, (alloc_bytes, alloc_count)) =
            best.unwrap();
        let span = |key: &str| meter.span_stats(key).total_nanos as u64;
        runs.push(Run {
            threads,
            total_nanos: total,
            mark_nanos: span(keys::STAGE_MARK),
            extract_nanos: span(keys::STAGE_EXTRACT),
            match_nanos: span(keys::STAGE_MATCH),
            matching_size,
            sparsifier_edges,
            alloc_bytes,
            alloc_count,
        });
    }
    runs
}

/// One backend's row in the in-memory race: best-of-reps through the
/// [`MatchingSparsifier`] trait at one thread, with the backend's own
/// claims recorded next to what it measured so the conformance gate is
/// checkable from the JSON alone.
struct BackendRun {
    backend: &'static str,
    params: String,
    claimed_ratio: f64,
    claimed_size_bound: usize,
    total_nanos: u64,
    mark_nanos: u64,
    extract_nanos: u64,
    match_nanos: u64,
    matching_size: usize,
    sparsifier_edges: usize,
    probes_total: u64,
}

/// Race both backends on one family (1 thread, best of `reps`, one warm
/// arena per backend). Conformance before speed: every rep's matching
/// must be valid on the parent, every sparsifier must sit under the
/// backend's own claimed size bound, and the two matchings must agree
/// within the product each backend's claimed ratio allows — a certified
/// backend pair cannot disagree more, so a larger gap means one of the
/// claims is wrong.
fn bench_backends(f: &Family, reps: usize, violations: &mut Violations) -> Vec<BackendRun> {
    let delta = DeltaBackend {
        params: SparsifierParams::practical(f.beta, f.eps),
    };
    let edcs = EdcsBackend {
        params: EdcsParams::new(EDCS_BETA, EDCS_LAMBDA).expect("bench EDCS point is valid"),
        eps: f.eps,
    };
    let backends: [&dyn MatchingSparsifier; 2] = [&delta, &edcs];
    let n = f.graph.num_vertices();
    let mut rows = Vec::new();
    for b in backends {
        let mut scratch = PipelineScratch::new();
        let mut best: Option<BestRep> = None;
        for _ in 0..reps {
            let mut meter = WorkMeter::new();
            let r = b
                .solve_metered(&f.graph, 7, 1, &mut meter, &mut scratch)
                .expect("one thread is always accepted");
            violations.check(r.matching.is_valid_for(&f.graph), || {
                format!("{}/{}: invalid matching on the parent", f.name, b.name())
            });
            violations.check(r.sparsifier.edges <= b.claimed_size_bound(n), || {
                format!(
                    "{}/{}: sparsifier {} edges exceeds its claimed bound {}",
                    f.name,
                    b.name(),
                    r.sparsifier.edges,
                    b.claimed_size_bound(n)
                )
            });
            let total = meter.span_stats(keys::PIPELINE_TOTAL).total_nanos as u64;
            let stats = (r.matching.len(), r.sparsifier.edges);
            let probes = r.probes.total();
            if best.as_ref().is_none_or(|(t, ..)| total < *t) {
                best = Some((total, meter, stats.0, stats.1, (probes, 0)));
            }
        }
        let (total, meter, matching_size, sparsifier_edges, (probes_total, _)) = best.unwrap();
        let span = |key: &str| meter.span_stats(key).total_nanos as u64;
        rows.push(BackendRun {
            backend: b.name(),
            params: b.params_summary(),
            claimed_ratio: b.claimed_ratio(),
            claimed_size_bound: b.claimed_size_bound(n),
            total_nanos: total,
            mark_nanos: span(keys::STAGE_MARK),
            extract_nanos: span(keys::STAGE_EXTRACT),
            match_nanos: span(keys::STAGE_MATCH),
            matching_size,
            sparsifier_edges,
            probes_total,
        });
    }
    // Cross-backend conformance: each matching lower-bounds the optimum
    // the *other* backend's ratio claim upper-bounds.
    let [d, e] = &rows[..] else { unreachable!() };
    violations.check(
        d.matching_size as f64 <= e.claimed_ratio * e.matching_size as f64 + BACKEND_ABS_SLACK,
        || {
            format!(
                "{}: edcs matching {} too small vs delta {} for its claimed ratio {:.3}",
                f.name, e.matching_size, d.matching_size, e.claimed_ratio
            )
        },
    );
    violations.check(
        e.matching_size as f64 <= d.claimed_ratio * d.matching_size as f64 + BACKEND_ABS_SLACK,
        || {
            format!(
                "{}: delta matching {} too small vs edcs {} for its claimed ratio {:.3}",
                f.name, d.matching_size, e.matching_size, d.claimed_ratio
            )
        },
    );
    rows
}

/// One backend's row in the streamed (out-of-core) race, built from the
/// same spilled edge file as the `huge` tier: the delta row re-reports
/// the huge run itself, so the EDCS arm is the only extra solve paid.
struct StreamedRow {
    backend: &'static str,
    params: String,
    solve_nanos: u64,
    peak_resident_bytes: usize,
    graph_bytes: usize,
    sparsifier_edges: usize,
    matching_size: usize,
    edges_scanned: u64,
    passes: u64,
}

fn bench_steady(f: &Family, reps: usize, violations: &mut Violations) -> Steady {
    let params = SparsifierParams::practical(f.beta, f.eps);
    let seed = 7;

    // Cold: every solve pays for a fresh arena (allocation, first-touch
    // page faults, teardown), with the heap trimmed back to the OS first
    // so the allocator cannot quietly recycle the previous rep's pages.
    // Best-of-reps on both sides so the ratio compares minima, not noise.
    let mut cold_best = u64::MAX;
    let mut cold_alloc = 0u64;
    let mut cold_size = 0usize;
    for _ in 0..reps {
        trim_heap();
        let a0 = alloc_totals();
        let t0 = Instant::now();
        let r = approx_mcm_via_sparsifier(&f.graph, &params, seed, 1)
            .expect("one thread is always accepted");
        let nanos = t0.elapsed().as_nanos() as u64;
        let a1 = alloc_totals();
        if nanos < cold_best {
            cold_best = nanos;
            cold_alloc = a1.0 - a0.0;
        }
        cold_size = r.matching.len();
    }

    // Warm: one arena, warmed by a single untimed solve.
    let mut scratch = PipelineScratch::new();
    approx_mcm_via_sparsifier_with_scratch(&f.graph, &params, seed, 1, &mut scratch)
        .expect("one thread is always accepted");
    let mut warm_best = u64::MAX;
    let mut warm_alloc = 0u64;
    for _ in 0..reps {
        let a0 = alloc_totals();
        let t0 = Instant::now();
        let r = approx_mcm_via_sparsifier_with_scratch(&f.graph, &params, seed, 1, &mut scratch)
            .expect("one thread is always accepted");
        let nanos = t0.elapsed().as_nanos() as u64;
        let a1 = alloc_totals();
        if nanos < warm_best {
            warm_best = nanos;
            warm_alloc = a1.0 - a0.0;
        }
        violations.check(r.matching.len() == cold_size, || {
            format!("{}: warm steady-state solve diverged from cold", f.name)
        });
    }

    Steady {
        family: f.name,
        vertices: f.graph.num_vertices(),
        edges: f.graph.num_edges(),
        reps,
        cold_nanos_per_solve: cold_best,
        warm_nanos_per_solve: warm_best,
        warm_speedup: cold_best as f64 / warm_best.max(1) as f64,
        cold_alloc_bytes: cold_alloc,
        warm_alloc_bytes: warm_alloc,
    }
}

fn family_json(f: &Family, runs: &[Run]) -> Json {
    let t1 = runs
        .iter()
        .find(|r| r.threads == 1)
        .expect("thread count 1 is always benched")
        .total_nanos;
    let mut doc = Json::object();
    doc.set("family", f.name);
    doc.set("vertices", f.graph.num_vertices());
    doc.set("edges", f.graph.num_edges());
    doc.set("beta", f.beta);
    doc.set("eps", f.eps);
    let runs_json: Vec<Json> = runs
        .iter()
        .map(|r| {
            let mut stage = Json::object();
            stage.set("mark", r.mark_nanos);
            stage.set("extract", r.extract_nanos);
            stage.set("match", r.match_nanos);
            let mut run = Json::object();
            run.set("threads", r.threads);
            run.set("total_nanos", r.total_nanos);
            run.set("stage_nanos", stage);
            run.set("matching_size", r.matching_size);
            run.set("sparsifier_edges", r.sparsifier_edges);
            run.set("alloc_bytes", r.alloc_bytes);
            run.set("alloc_count", r.alloc_count);
            run.set("speedup_vs_t1", t1 as f64 / r.total_nanos.max(1) as f64);
            run
        })
        .collect();
    doc.set("runs", Json::Array(runs_json));
    doc
}

fn huge_json(h: &HugeRun) -> Json {
    let mut probes = Json::object();
    probes.set("degree", h.report.probes.degree_probes);
    probes.set("neighbor", h.report.probes.neighbor_probes);
    probes.set("total", h.report.probes.total());
    let mut doc = Json::object();
    doc.set("family", h.name);
    doc.set("vertices", h.vertices);
    doc.set("edges", h.edges);
    doc.set("beta", h.params.beta);
    doc.set("eps", h.params.eps);
    doc.set("delta", h.params.delta);
    doc.set("peak_resident_bytes", h.report.peak_resident_bytes);
    doc.set("graph_bytes", h.report.graph_bytes);
    doc.set("sparsifier_bytes", h.report.sparsifier_bytes);
    doc.set("probes", probes);
    doc.set("edges_scanned", h.report.edges_scanned);
    doc.set("matching_size", h.matching_size);
    doc.set("sparsifier_edges", h.sparsifier_edges);
    doc.set("solve_nanos", h.solve_nanos);
    doc.set(
        "resident_shrink",
        h.report.graph_bytes as f64 / h.report.peak_resident_bytes.max(1) as f64,
    );
    doc
}

fn backends_family_json(f: &Family, rows: &[BackendRun]) -> Json {
    let mut doc = Json::object();
    doc.set("family", f.name);
    doc.set("vertices", f.graph.num_vertices());
    doc.set("edges", f.graph.num_edges());
    let runs: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut stage = Json::object();
            stage.set("mark", r.mark_nanos);
            stage.set("extract", r.extract_nanos);
            stage.set("match", r.match_nanos);
            let mut run = Json::object();
            run.set("backend", r.backend);
            run.set("params", r.params.as_str());
            run.set("claimed_ratio", r.claimed_ratio);
            run.set("claimed_size_bound", r.claimed_size_bound);
            run.set("total_nanos", r.total_nanos);
            run.set("stage_nanos", stage);
            run.set("matching_size", r.matching_size);
            run.set("sparsifier_edges", r.sparsifier_edges);
            run.set("probes_total", r.probes_total);
            run
        })
        .collect();
    doc.set("runs", Json::Array(runs));
    // delta-time / edcs-time: > 1 means the EDCS build-and-match was
    // faster end to end on this family.
    doc.set(
        "edcs_speedup_vs_delta",
        rows[0].total_nanos as f64 / rows[1].total_nanos.max(1) as f64,
    );
    doc
}

fn streamed_family_json(name: &str, vertices: usize, edges: usize, rows: &[StreamedRow]) -> Json {
    let mut doc = Json::object();
    doc.set("family", name);
    doc.set("vertices", vertices);
    doc.set("edges", edges);
    let runs: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut run = Json::object();
            run.set("backend", r.backend);
            run.set("params", r.params.as_str());
            run.set("solve_nanos", r.solve_nanos);
            run.set("peak_resident_bytes", r.peak_resident_bytes);
            run.set("graph_bytes", r.graph_bytes);
            run.set("sparsifier_edges", r.sparsifier_edges);
            run.set("matching_size", r.matching_size);
            run.set("edges_scanned", r.edges_scanned);
            run.set("passes", r.passes);
            run
        })
        .collect();
    doc.set("runs", Json::Array(runs));
    doc
}

fn steady_json(s: &Steady) -> Json {
    let mut doc = Json::object();
    doc.set("family", s.family);
    doc.set("vertices", s.vertices);
    doc.set("edges", s.edges);
    doc.set("threads", 1usize);
    doc.set("reps", s.reps);
    doc.set("cold_nanos_per_solve", s.cold_nanos_per_solve);
    doc.set("warm_nanos_per_solve", s.warm_nanos_per_solve);
    doc.set("warm_speedup", s.warm_speedup);
    doc.set("cold_alloc_bytes", s.cold_alloc_bytes);
    doc.set("warm_alloc_bytes", s.warm_alloc_bytes);
    doc
}

fn main() {
    let scale = scale_from_args();
    let (reps, steady_reps) = match scale {
        Scale::Quick => (1, 5),
        Scale::Full => (3, 11),
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut violations = Violations::new();
    let mut family_docs = Vec::new();
    let mut steady_docs = Vec::new();
    let mut backend_docs = Vec::new();
    let mut streamed_docs = Vec::new();

    println!("pipeline throughput baseline ({})", scale.name());
    println!("host parallelism: {host_parallelism} hardware threads\n");
    for f in families(scale) {
        println!(
            "{:>14}: n = {}, m = {}, beta = {}",
            f.name,
            f.graph.num_vertices(),
            f.graph.num_edges(),
            f.beta
        );
        let runs = bench_family(&f, reps, &mut violations);
        let t1 = runs[0].total_nanos;
        for r in &runs {
            println!(
                "      threads {}: {:>10.3} ms  (mark {:.3} / extract {:.3} / match {:.3})  x{:.2}",
                r.threads,
                r.total_nanos as f64 / 1e6,
                r.mark_nanos as f64 / 1e6,
                r.extract_nanos as f64 / 1e6,
                r.match_nanos as f64 / 1e6,
                t1 as f64 / r.total_nanos.max(1) as f64
            );
        }
        family_docs.push(family_json(&f, &runs));

        // The backend race on the same instance: conformance-checked,
        // then timed head to head at one thread.
        let rows = bench_backends(&f, reps, &mut violations);
        println!(
            "      backends: delta {:>10.3} ms / edcs {:>10.3} ms  \
             (edges kept {} vs {}, matching {} vs {})",
            rows[0].total_nanos as f64 / 1e6,
            rows[1].total_nanos as f64 / 1e6,
            rows[0].sparsifier_edges,
            rows[1].sparsifier_edges,
            rows[0].matching_size,
            rows[1].matching_size,
        );
        backend_docs.push(backends_family_json(&f, &rows));
    }

    println!("\nsteady-state repeat-solve comparison (1 thread, fixed shapes):");
    for f in steady_families() {
        let steady = bench_steady(&f, steady_reps, &mut violations);
        println!(
            "{:>14}: cold {:>8.3} ms / warm {:>8.3} ms per solve  x{:.2}",
            f.name,
            steady.cold_nanos_per_solve as f64 / 1e6,
            steady.warm_nanos_per_solve as f64 / 1e6,
            steady.warm_speedup
        );
        steady_docs.push(steady_json(&steady));
    }

    println!("\nhuge tier (out-of-core streamed build, bytes resident vs materialized):");
    let tmp = std::env::temp_dir().join(format!("sparsimatch-huge-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create huge-tier spill dir");
    let mut huge_docs = Vec::new();
    for (i, spec) in huge_families(scale).into_iter().enumerate() {
        let (h, streamed) = bench_huge(spec, &tmp, i as u64, &mut violations);
        println!(
            "{:>14}: n = {}, m = {}  peak {:>7.1} MiB < graph {:>7.1} MiB  \
             (sparsifier {:.1} MiB, {} probes, {:>8.3} s)",
            h.name,
            h.vertices,
            h.edges,
            h.report.peak_resident_bytes as f64 / (1 << 20) as f64,
            h.report.graph_bytes as f64 / (1 << 20) as f64,
            h.report.sparsifier_bytes as f64 / (1 << 20) as f64,
            h.report.probes.total(),
            h.solve_nanos as f64 / 1e9
        );
        println!(
            "                streamed race: delta {:>8.3} s ({} passes) / edcs {:>8.3} s ({} passes)",
            streamed[0].solve_nanos as f64 / 1e9,
            streamed[0].passes,
            streamed[1].solve_nanos as f64 / 1e9,
            streamed[1].passes,
        );
        huge_docs.push(huge_json(&h));
        streamed_docs.push(streamed_family_json(h.name, h.vertices, h.edges, &streamed));
    }
    std::fs::remove_dir_all(&tmp).ok();

    let mut doc = Json::object();
    doc.set("benchmark", "bench_pipeline");
    doc.set("scale", scale.name());
    doc.set("host_parallelism", host_parallelism);
    doc.set("alloc_counting", cfg!(feature = "alloc-count"));
    doc.set(
        "threads",
        Json::Array(THREADS.iter().map(|&t| Json::from(t)).collect()),
    );
    doc.set("families", Json::Array(family_docs));
    doc.set("steady_state", Json::Array(steady_docs));
    doc.set("huge", Json::Array(huge_docs));
    let mut edcs_point = Json::object();
    edcs_point.set("beta", EDCS_BETA);
    edcs_point.set("lambda", EDCS_LAMBDA);
    let mut backends = Json::object();
    backends.set("threads", 1usize);
    backends.set("edcs", edcs_point);
    backends.set("families", Json::Array(backend_docs));
    backends.set("streamed", Json::Array(streamed_docs));
    doc.set("backends", backends);

    let out = std::env::var_os("SPARSIMATCH_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_pipeline.json"));
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("FAILED to write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nbaseline written to {}", out.display());
    violations.finish("bench_baseline");
}
