//! Pipeline throughput baseline: the end-to-end sparsify-and-match hot
//! path across `{clique, bounded-β clique-union, bipartite} × {1,2,4,8}`
//! threads, written as `BENCH_pipeline.json` so future changes have a
//! recorded trajectory to beat.
//!
//! Unlike the `exp_*` binaries this measures *wall-clock*, not unit
//! counts, so the output varies by host; the `host_parallelism` field
//! records how many hardware threads were available (speedups are only
//! meaningful when it exceeds the thread count). Output correctness is
//! still asserted: the matching and sparsifier must be identical for
//! every thread count, and any mismatch exits nonzero.
//!
//! Usage: `bench_baseline [--full]`; the output path defaults to
//! `BENCH_pipeline.json` in the current directory and can be overridden
//! with the `SPARSIMATCH_BENCH_OUT` environment variable. The schema is
//! documented in EXPERIMENTS.md ("Benchmark baseline").

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier_metered;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::generators::{bipartite_gnp, clique, clique_union, CliqueUnionConfig};
use sparsimatch_obs::{keys, Json, WorkMeter};

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Family {
    name: &'static str,
    graph: CsrGraph,
    beta: usize,
    eps: f64,
}

fn families(scale: Scale) -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(0xBE);
    let (clique_n, union_n, union_size, bip_side, bip_deg) = match scale {
        Scale::Quick => (300usize, 5_000usize, 50usize, 2_000usize, 10.0f64),
        // The union instance is the headline: 1e5 vertices, ~6M edges,
        // β ≤ 2 — the regime the paper targets.
        Scale::Full => (2_000, 100_000, 64, 50_000, 20.0),
    };
    vec![
        Family {
            name: "clique",
            graph: clique(clique_n),
            beta: 1,
            eps: 0.3,
        },
        Family {
            name: "clique-union",
            graph: clique_union(
                CliqueUnionConfig {
                    n: union_n,
                    diversity: 2,
                    clique_size: union_size,
                },
                &mut rng,
            ),
            beta: 2,
            eps: 0.3,
        },
        Family {
            name: "bipartite",
            graph: bipartite_gnp(bip_side, bip_side, bip_deg / bip_side as f64, &mut rng),
            beta: 4,
            eps: 0.3,
        },
    ]
}

struct Run {
    threads: usize,
    total_nanos: u64,
    mark_nanos: u64,
    extract_nanos: u64,
    match_nanos: u64,
    matching_size: usize,
    sparsifier_edges: usize,
}

fn bench_family(f: &Family, reps: usize, violations: &mut Violations) -> Vec<Run> {
    let params = SparsifierParams::practical(f.beta, f.eps);
    let mut runs = Vec::new();
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for &threads in &THREADS {
        let mut best: Option<(u64, WorkMeter, usize, usize)> = None;
        for _ in 0..reps {
            let mut meter = WorkMeter::new();
            let r = approx_mcm_via_sparsifier_metered(&f.graph, &params, 7, threads, &mut meter)
                .expect("thread counts 1..=8 are always accepted");
            let total = meter.span_stats(keys::PIPELINE_TOTAL).total_nanos as u64;
            let pairs: Vec<(u32, u32)> = r.matching.pairs().map(|(u, v)| (u.0, v.0)).collect();
            match &reference {
                None => reference = Some(pairs),
                Some(expect) => violations.check(*expect == pairs, || {
                    format!(
                        "{}: matching differs at {} threads (thread-count invariance broken)",
                        f.name, threads
                    )
                }),
            }
            if best.as_ref().is_none_or(|(t, ..)| total < *t) {
                best = Some((total, meter, r.matching.len(), r.sparsifier.edges));
            }
        }
        let (total, meter, matching_size, sparsifier_edges) = best.unwrap();
        let span = |key: &str| meter.span_stats(key).total_nanos as u64;
        runs.push(Run {
            threads,
            total_nanos: total,
            mark_nanos: span(keys::STAGE_MARK),
            extract_nanos: span(keys::STAGE_EXTRACT),
            match_nanos: span(keys::STAGE_MATCH),
            matching_size,
            sparsifier_edges,
        });
    }
    runs
}

fn family_json(f: &Family, runs: &[Run]) -> Json {
    let t1 = runs
        .iter()
        .find(|r| r.threads == 1)
        .expect("thread count 1 is always benched")
        .total_nanos;
    let mut doc = Json::object();
    doc.set("family", f.name);
    doc.set("vertices", f.graph.num_vertices());
    doc.set("edges", f.graph.num_edges());
    doc.set("beta", f.beta);
    doc.set("eps", f.eps);
    let runs_json: Vec<Json> = runs
        .iter()
        .map(|r| {
            let mut stage = Json::object();
            stage.set("mark", r.mark_nanos);
            stage.set("extract", r.extract_nanos);
            stage.set("match", r.match_nanos);
            let mut run = Json::object();
            run.set("threads", r.threads);
            run.set("total_nanos", r.total_nanos);
            run.set("stage_nanos", stage);
            run.set("matching_size", r.matching_size);
            run.set("sparsifier_edges", r.sparsifier_edges);
            run.set("speedup_vs_t1", t1 as f64 / r.total_nanos.max(1) as f64);
            run
        })
        .collect();
    doc.set("runs", Json::Array(runs_json));
    doc
}

fn main() {
    let scale = scale_from_args();
    let reps = match scale {
        Scale::Quick => 1,
        Scale::Full => 3,
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut violations = Violations::new();
    let mut family_docs = Vec::new();

    println!("pipeline throughput baseline ({})", scale.name());
    println!("host parallelism: {host_parallelism} hardware threads\n");
    for f in families(scale) {
        println!(
            "{:>14}: n = {}, m = {}, beta = {}",
            f.name,
            f.graph.num_vertices(),
            f.graph.num_edges(),
            f.beta
        );
        let runs = bench_family(&f, reps, &mut violations);
        let t1 = runs[0].total_nanos;
        for r in &runs {
            println!(
                "      threads {}: {:>10.3} ms  (mark {:.3} / extract {:.3} / match {:.3})  x{:.2}",
                r.threads,
                r.total_nanos as f64 / 1e6,
                r.mark_nanos as f64 / 1e6,
                r.extract_nanos as f64 / 1e6,
                r.match_nanos as f64 / 1e6,
                t1 as f64 / r.total_nanos.max(1) as f64
            );
        }
        family_docs.push(family_json(&f, &runs));
    }

    let mut doc = Json::object();
    doc.set("benchmark", "bench_pipeline");
    doc.set("scale", scale.name());
    doc.set("host_parallelism", host_parallelism);
    doc.set(
        "threads",
        Json::Array(THREADS.iter().map(|&t| Json::from(t)).collect()),
    );
    doc.set("families", Json::Array(family_docs));

    let out = std::env::var_os("SPARSIMATCH_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_pipeline.json"));
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("FAILED to write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nbaseline written to {}", out.display());
    violations.finish("bench_baseline");
}
