//! Distsim scaling: the sharded execution engine at millions of
//! simulated nodes (ISSUE 10 tentpole experiment).
//!
//! Runs the randomized distributed pipeline (sparsify → solomon →
//! Israeli–Itai) on the clique-union and power-law families at a fixed
//! node count, once per thread count in [1, 2, 4, 8]. `threads = 1` is
//! the historical sequential simulator; every other row runs the
//! `ShardedNetwork` engine. Two properties are recorded:
//!
//! 1. **Byte identity** (a hard bound): at every thread count the
//!    matching pairs, rounds, messages, and bits must equal the
//!    sequential run exactly — the fingerprint column must be `true`
//!    on every row or the run fails.
//! 2. **Wall time** (measured honestly, not gated): per-row wall-clock
//!    and speedup vs the sequential row, alongside the host's actual
//!    `available_parallelism`. On a single-core host the sharded rows
//!    are expected to show speedup ≤ 1 — the experiment pins the
//!    determinism contract; the parallel win needs real cores.
//!
//! Writes `results/distsim_scale.json` (schema in EXPERIMENTS.md);
//! structurally validated by `crates/bench/tests/results_json.rs`.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{results_dir, scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::algorithms::pipeline::{
    distributed_randomized_maximal_sharded, DistributedOutcome,
};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::generators::{clique_union, power_law, CliqueUnionConfig};
use sparsimatch_obs::Json;
use std::time::Instant;

const ALGO_SEED: u64 = 7;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// FNV-1a over the full outcome: matching pairs in order plus every
/// accounted metric. Equal fingerprints ⇔ byte-identical runs, without
/// holding two multi-million-pair vectors for the comparison.
fn fingerprint(out: &DistributedOutcome) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for (u, v) in out.matching.pairs() {
        eat(u64::from(u.0));
        eat(u64::from(v.0));
    }
    eat(out.matching.len() as u64);
    eat(out.metrics.rounds);
    eat(out.metrics.messages);
    eat(out.metrics.bits);
    let (a, b, c) = out.phase_rounds;
    eat(a);
    eat(b);
    eat(c);
    h
}

struct Row {
    family: &'static str,
    n: usize,
    m: usize,
    threads: usize,
    rounds: u64,
    messages: u64,
    bits: u64,
    matching: usize,
    wall_ms: f64,
    speedup: f64,
    fingerprint_match: bool,
}

fn run_family(
    family: &'static str,
    g: &CsrGraph,
    params: &SparsifierParams,
    violations: &mut Violations,
    table: &mut Table,
) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut base: Option<(u64, f64)> = None; // sequential (fingerprint, wall_ms)
    for threads in THREAD_COUNTS {
        let t0 = Instant::now();
        let out = distributed_randomized_maximal_sharded(g, params, ALGO_SEED, None, threads);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fp = fingerprint(&out);
        let (base_fp, base_ms) = *base.get_or_insert((fp, wall_ms));
        let fingerprint_match = fp == base_fp;
        violations.check(fingerprint_match, || {
            format!("{family}: t={threads} fingerprint diverged from the sequential run")
        });
        let row = Row {
            family,
            n: g.num_vertices(),
            m: g.num_edges(),
            threads,
            rounds: out.metrics.rounds,
            messages: out.metrics.messages,
            bits: out.metrics.bits,
            matching: out.matching.len(),
            wall_ms,
            speedup: base_ms / wall_ms,
            fingerprint_match,
        };
        table.row(vec![
            family.to_string(),
            threads.to_string(),
            row.rounds.to_string(),
            row.messages.to_string(),
            row.matching.to_string(),
            f3(row.wall_ms),
            f3(row.speedup),
            row.fingerprint_match.to_string(),
        ]);
        rows.push(row);
    }
    rows
}

/// `--nodes <N>` overrides the scale-derived node count (the debug-mode
/// conformance test uses it to keep the schema check fast; CI and the
/// committed artifact run the scale defaults).
fn nodes_override() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--nodes" {
            return Some(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nodes needs an unsigned integer"),
            );
        }
    }
    None
}

fn main() {
    let scale = scale_from_args();
    let n: usize = nodes_override().unwrap_or(match scale {
        Scale::Quick => 100_000,
        Scale::Full => 1_200_000,
    });
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    // Small Δ keeps the per-round message volume proportional to m at
    // these sizes; the randomized tail avoids the augmentation phase's
    // ball gathers, which do not pay at millions of nodes.
    let params = SparsifierParams::with_delta(2, 0.5, 4);

    println!("distsim scale: sharded engine vs sequential simulator");
    println!(
        "n = {n}, thread counts {THREAD_COUNTS:?}, host parallelism = {host_parallelism}, \
         algorithm = randomized maximal (sparsify -> solomon -> israeli-itai)\n"
    );

    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "threads",
        "rounds",
        "messages",
        "|M|",
        "wall ms",
        "speedup",
        "identical",
    ]);
    let mut rows = Vec::new();

    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    let cu = clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: 8,
        },
        &mut rng,
    );
    rows.extend(run_family(
        "clique-union",
        &cu,
        &params,
        &mut violations,
        &mut table,
    ));
    drop(cu);

    let pl = power_law(n, 3, &mut rng);
    rows.extend(run_family(
        "power-law",
        &pl,
        &params,
        &mut violations,
        &mut table,
    ));
    drop(pl);

    table.print();

    let mut doc = Json::object();
    doc.set("experiment", "distsim_scale");
    doc.set("scale", scale.name());
    doc.set("algo_seed", ALGO_SEED);
    doc.set("nodes", n);
    doc.set("host_parallelism", host_parallelism);
    doc.set(
        "thread_counts",
        Json::Array(THREAD_COUNTS.iter().map(|&t| Json::from(t)).collect()),
    );
    let out_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut row = Json::object();
            row.set("family", r.family);
            row.set("n", r.n);
            row.set("m", r.m);
            row.set("threads", r.threads);
            row.set("rounds", r.rounds);
            row.set("messages", r.messages);
            row.set("bits", r.bits);
            row.set("matching", r.matching);
            row.set("wall_ms", r.wall_ms);
            row.set("speedup", r.speedup);
            row.set("fingerprint_match", r.fingerprint_match);
            row
        })
        .collect();
    doc.set("rows", Json::Array(out_rows));
    doc.set("bounds_ok", violations.is_empty());
    doc.set(
        "violations",
        Json::Array(
            violations
                .items()
                .iter()
                .map(|v| Json::from(v.as_str()))
                .collect(),
        ),
    );

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("FAILED to create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("distsim_scale.json");
    if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
        eprintln!("FAILED to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\n[distsim_scale] results written to {}", path.display());
    violations.finish("distsim_scale");
}
