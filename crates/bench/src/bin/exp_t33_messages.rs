//! E9 — Theorem 3.3: sublinear message complexity.
//!
//! On dense bounded-β networks (`m = Θ(n²)`), the one-round sparsifier
//! sends `n·Δ` one-bit messages, and everything afterwards runs over
//! sparsifier edges, so the total message count is `T(n)·O(n·Δ) ≪ m·T(n)`
//! — and, for large enough density, below even `m` itself. The table
//! reports messages and bits against `m` and against the naive
//! "every edge speaks every round" cost.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::algorithms::pipeline::distributed_approx_mcm;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[300, 600],
        Scale::Full => &[300, 600, 1200, 2400],
    };
    let eps = 0.5;
    let beta = 1;
    let mut rng = StdRng::seed_from_u64(0xE9);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "m",
        "rounds",
        "messages",
        "messages/m",
        "bits",
        "naive msgs (2m·rounds)",
        "savings",
    ]);

    println!("E9 / Theorem 3.3: message complexity on dense networks");
    println!("family: single clique layer (beta = 1, m = Θ(n²)), eps = {eps}\n");
    for &n in ns {
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 2,
            },
            &mut rng,
        );
        let m = g.num_edges() as u64;
        let params = SparsifierParams::with_delta(beta, eps, 6);
        let out = distributed_approx_mcm(&g, &params, 0xE9 + n as u64);
        let naive = 2 * m * out.metrics.rounds;
        violations.check(out.metrics.messages < naive, || {
            format!(
                "n={n}: messages {} not below naive {naive}",
                out.metrics.messages
            )
        });
        table.row(vec![
            n.to_string(),
            m.to_string(),
            out.metrics.rounds.to_string(),
            out.metrics.messages.to_string(),
            f3(out.metrics.messages as f64 / m as f64),
            out.metrics.bits.to_string(),
            naive.to_string(),
            f3(naive as f64 / out.metrics.messages.max(1) as f64),
        ]);
    }
    table.print();
    violations.finish_json("E9", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
