//! E7 — Theorem 3.1: sequential `(1+ε)`-approximate MCM in time sublinear
//! in `m`.
//!
//! On dense bounded-β inputs, three competitors:
//!
//! * **sparsify+match** (this paper) — probes `O(n·Δ)`, independent of m;
//! * **AS19 maximal matching** (the baseline Theorem 3.1 improves on) —
//!   probes `O(n·β·log n)`, 2-approximate;
//! * **greedy on G** — reads all m edges, 2-approximate.
//!
//! The table reports adjacency probes (machine-independent), wall time,
//! and realized approximation ratio vs exact. The theorem's claims:
//! sparsify+match probes ≪ m on dense inputs, ratio ≤ 1+ε, and probes
//! scale with n — not with m.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier;
use sparsimatch_graph::adjacency::CountingOracle;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::assadi_solomon::{assadi_solomon_maximal, AsConfig};
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::karp_sipser::karp_sipser_matching;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[400, 800, 1600],
        Scale::Full => &[400, 800, 1600, 3200, 6400],
    };
    let eps = 0.3;
    let beta = 2;
    let mut rng = StdRng::seed_from_u64(0xE7);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "m",
        "algo",
        "probes",
        "probes/m",
        "time (ms)",
        "|M|",
        "ratio vs exact",
    ]);

    println!("E7 / Theorem 3.1: sequential sublinear (1+eps)-approximate matching");
    println!("family: 2-layer clique union (beta <= 2), density Θ(n²)\n");
    let mut pipeline_probes: Vec<(usize, u64)> = Vec::new();
    for &n in ns {
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 2,
            },
            &mut rng,
        );
        let m = g.num_edges() as f64;
        let exact = maximum_matching(&g).len();

        // (1) This paper.
        let params = SparsifierParams::practical(beta, eps);
        let t0 = Instant::now();
        let r = approx_mcm_via_sparsifier(&g, &params, n as u64, 1).unwrap();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let ratio = exact as f64 / r.matching.len().max(1) as f64;
        violations.check(ratio <= 1.0 + eps, || {
            format!("pipeline n={n}: ratio {ratio:.3} above 1+eps")
        });
        // Sublinearity kicks in once the input is dense enough that m
        // dwarfs the n·Δ probe budget; assert it from n = 800 up (the
        // smaller sizes document the crossover).
        if n >= 800 {
            violations.check((r.probes.total() as f64) < m, || {
                format!("pipeline n={n}: probes not sublinear in m")
            });
        }
        pipeline_probes.push((n, r.probes.total()));
        table.row(vec![
            n.to_string(),
            (m as u64).to_string(),
            "sparsify+match".into(),
            r.probes.total().to_string(),
            f3(r.probes.total() as f64 / m),
            f3(dt),
            r.matching.len().to_string(),
            f3(ratio),
        ]);

        // (2) AS19 baseline (probe-counted).
        let counter = CountingOracle::new(&g);
        let t0 = Instant::now();
        let mm = assadi_solomon_maximal(&counter, &AsConfig::for_beta(beta), &mut rng);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let probes = counter.counts().total();
        table.row(vec![
            n.to_string(),
            (m as u64).to_string(),
            "AS19 maximal".into(),
            probes.to_string(),
            f3(probes as f64 / m),
            f3(dt),
            mm.len().to_string(),
            f3(exact as f64 / mm.len().max(1) as f64),
        ]);

        // (3) Greedy over the full edge list (reads every edge: probes = 2m).
        let t0 = Instant::now();
        let gm = greedy_maximal_matching(&g);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            n.to_string(),
            (m as u64).to_string(),
            "greedy on G".into(),
            ((2.0 * m) as u64).to_string(),
            "2.000".into(),
            f3(dt),
            gm.len().to_string(),
            f3(exact as f64 / gm.len().max(1) as f64),
        ]);

        // (4) Karp–Sipser: the strongest cheap full-graph heuristic.
        let t0 = Instant::now();
        let ks = karp_sipser_matching(&g, &mut rng);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            n.to_string(),
            (m as u64).to_string(),
            "Karp-Sipser on G".into(),
            ((2.0 * m) as u64).to_string(),
            "2.000".into(),
            f3(dt),
            ks.len().to_string(),
            f3(exact as f64 / ks.len().max(1) as f64),
        ]);
    }
    table.print();

    // Scaling check: pipeline probes grow linearly in n (not ~ n² like m).
    if pipeline_probes.len() >= 2 {
        let (n0, p0) = pipeline_probes[0];
        let (n1, p1) = *pipeline_probes.last().unwrap();
        let probe_growth = p1 as f64 / p0 as f64;
        let n_growth = n1 as f64 / n0 as f64;
        violations.check(probe_growth < n_growth * n_growth * 0.5, || {
            format!(
                "pipeline probes grew {probe_growth:.1}x over n growth {n_growth:.1}x — not sublinear in m"
            )
        });
        println!(
            "\nprobe growth {probe_growth:.2}x for n growth {n_growth:.2}x (m grows {:.2}x)",
            n_growth * n_growth
        );
    }
    violations.finish_json("E7", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
