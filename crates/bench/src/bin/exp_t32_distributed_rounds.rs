//! E8 — Theorem 3.2: distributed round complexity.
//!
//! Fixing β and ε, the full pipeline (1-round sparsifier + 1-round
//! Solomon + coloring + MM + bounded augmentation) should use a number of
//! rounds that is essentially independent of `n` — growing only with
//! `log* n` — while achieving `(1+ε)` accuracy; the maximal-matching-only
//! baseline (the Barenboim–Oren comparator shape) uses similar rounds but
//! only reaches factor-2 territory.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_distsim::algorithms::coloring::log_star;
use sparsimatch_distsim::algorithms::pipeline::{
    distributed_approx_mcm, distributed_maximal_baseline,
};
use sparsimatch_graph::generators::{unit_disk, UnitDiskConfig};
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[200, 800],
        Scale::Full => &[200, 800, 3200, 12800],
    };
    let eps = 0.5;
    let beta = 5; // unit-disk certificate
    let mut rng = StdRng::seed_from_u64(0xE8);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "log*n",
        "algo",
        "rounds",
        "rounds (sparsify/solomon/match)",
        "deg(G̃Δ)",
        "|M|",
        "ratio vs exact",
    ]);

    println!("E8 / Theorem 3.2: distributed rounds at fixed (beta, eps)");
    println!("family: unit-disk, expected degree 16 (beta <= 5), eps = {eps}\n");
    let mut round_series = Vec::new();
    for &n in ns {
        let g = unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 16.0), &mut rng);
        let exact = maximum_matching(&g).len().max(1);
        let params = SparsifierParams::with_delta(beta, eps, 8);

        let full = distributed_approx_mcm(&g, &params, 0xE8 + n as u64);
        let ratio = exact as f64 / full.matching.len().max(1) as f64;
        violations.check(ratio <= 1.0 + 3.0 * eps, || {
            format!("n={n}: distributed ratio {ratio:.3} above 1+3eps")
        });
        round_series.push(full.metrics.rounds);
        table.row(vec![
            n.to_string(),
            log_star(n).to_string(),
            "sparsify+(1+eps)".into(),
            full.metrics.rounds.to_string(),
            format!(
                "{}/{}/{}",
                full.phase_rounds.0, full.phase_rounds.1, full.phase_rounds.2
            ),
            full.composed_max_degree.to_string(),
            full.matching.len().to_string(),
            f3(ratio),
        ]);

        let base = distributed_maximal_baseline(&g, &params, 0xE8 + n as u64);
        table.row(vec![
            n.to_string(),
            log_star(n).to_string(),
            "maximal-only (BO)".into(),
            base.metrics.rounds.to_string(),
            format!(
                "{}/{}/{}",
                base.phase_rounds.0, base.phase_rounds.1, base.phase_rounds.2
            ),
            base.composed_max_degree.to_string(),
            base.matching.len().to_string(),
            f3(exact as f64 / base.matching.len().max(1) as f64),
        ]);

        // Randomized Israeli–Itai maximal matching on the raw graph:
        // O(log n) rounds, no sparsifier, 2-approximate — the classical
        // comparison point for both round count and quality.
        let mut net = sparsimatch_distsim::Network::new(&g);
        let (ii, _) = sparsimatch_distsim::algorithms::israeli_itai::israeli_itai_matching(
            &mut net,
            0xE8 + n as u64,
        );
        table.row(vec![
            n.to_string(),
            log_star(n).to_string(),
            "Israeli-Itai (rand)".into(),
            net.metrics().rounds.to_string(),
            "-".into(),
            g.max_degree().to_string(),
            ii.len().to_string(),
            f3(exact as f64 / ii.len().max(1) as f64),
        ]);
    }
    table.print();

    // Shape check: rounds must not grow linearly with n.
    if round_series.len() >= 2 {
        let first = round_series[0] as f64;
        let last = *round_series.last().unwrap() as f64;
        let n_growth = ns[ns.len() - 1] as f64 / ns[0] as f64;
        violations.check(last <= first * 4.0 + 50.0, || {
            format!("rounds grew {first} -> {last} over n growth {n_growth:.0}x — not log*-flat")
        });
    }
    violations.finish_json("E8", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
