//! Open-loop load generator for the `sparsimatch serve` daemon (ISSUE 6
//! tentpole experiment).
//!
//! Starts the unix-socket daemon in-process, then replays a seeded
//! request mix from several concurrent client sessions. Each client has
//! a writer thread that fires its precomputed script on a fixed arrival
//! schedule without ever waiting for responses (open loop — when the
//! daemon falls behind, its bounded queue sheds `overloaded`, the
//! generator never slows down) and a reader thread that matches
//! response ids back to send timestamps. Latencies are reported per
//! command type as p50/p99/p999/max, because a daemon whose `solve` tail
//! hides behind a `query`-dominated aggregate would look healthier than
//! it is.
//!
//! Enforced bounds:
//!
//! 1. Every request gets exactly one response (admission control sheds
//!    with `overloaded` errors, never silently).
//! 2. No response is a non-`overloaded` error: the generated mix is
//!    entirely well-formed, so parse/bad_request/internal errors mean a
//!    daemon bug.
//! 3. Per command, the latency percentiles are monotone
//!    (p50 ≤ p99 ≤ p999 ≤ max).
//! 4. The full scale replays at least one million requests.
//!
//! Writes `results/serve_bench.json` (schema in EXPERIMENTS.md);
//! structurally validated by `crates/bench/tests/results_json.rs`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sparsimatch_bench::table::Table;
use sparsimatch_bench::{results_dir, scale_from_args, Scale, Violations};
use sparsimatch_obs::Json;
use sparsimatch_serve::{serve_unix, ServeConfig};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const BASE_SEED: u64 = 0x5e47e;
/// Open-loop arrival rate per session (requests/second). Arrivals
/// follow the schedule regardless of responses; if the daemon falls
/// behind, its bounded queue sheds with `overloaded` rather than the
/// generator slowing down.
const RATE_PER_SESSION: f64 = 5_000.0;
/// Requests per scheduling tick: the writer sleeps to the tick's
/// scheduled time, then fires the whole batch. Keeps the schedule
/// honest without asking the OS for microsecond sleeps.
const BATCH: usize = 64;
/// Path-graph size per session; chords inserted/deleted by `update`
/// live strictly above the path edges, so the mix never generates a
/// duplicate-edge or missing-edge request.
const GRAPH_N: usize = 256;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    LoadGraph,
    Solve,
    Update,
    Query,
    Metrics,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::LoadGraph => "load_graph",
            Kind::Solve => "solve",
            Kind::Update => "update",
            Kind::Query => "query",
            Kind::Metrics => "metrics",
        }
    }
}

/// One session's precomputed script: request lines plus the command
/// kind per sequential id.
fn build_script(session: u64, requests: usize) -> (Vec<String>, Vec<Kind>) {
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ session.wrapping_mul(0x9e37_79b9));
    let mut lines = Vec::with_capacity(requests);
    let mut kinds = Vec::with_capacity(requests);
    // Chords currently present, so updates always insert an absent edge
    // or delete a present one.
    let mut chords: Vec<(u32, u32)> = Vec::new();
    let mut chord_set: HashSet<(u32, u32)> = HashSet::new();

    for id in 0..requests {
        let kind = if id == 0 {
            Kind::LoadGraph
        } else {
            match rng.random_range(0..100u32) {
                0..=69 => Kind::Query,
                70..=84 => Kind::Metrics,
                85..=94 => Kind::Update,
                95..=98 => Kind::Solve,
                _ => Kind::LoadGraph,
            }
        };
        let line = match kind {
            Kind::LoadGraph => {
                chords.clear();
                chord_set.clear();
                format!(r#"{{"id":{id},"cmd":"load_graph","n":{GRAPH_N},"family":"path"}}"#)
            }
            Kind::Solve => {
                format!(
                    r#"{{"id":{id},"cmd":"solve","beta":1,"eps":0.5,"seed":{}}}"#,
                    id % 13
                )
            }
            Kind::Update => {
                let delete = !chords.is_empty() && rng.random_bool(0.4);
                if delete {
                    let at = rng.random_range(0..chords.len());
                    let (u, v) = chords.swap_remove(at);
                    chord_set.remove(&(u, v));
                    format!(
                        r#"{{"id":{id},"cmd":"update","ops":[["delete",{u},{v}]],"beta":1,"eps":0.5}}"#
                    )
                } else {
                    let (u, v) = loop {
                        let u = rng.random_range(0..GRAPH_N as u32);
                        let v = rng.random_range(0..GRAPH_N as u32);
                        let (u, v) = (u.min(v), u.max(v));
                        // Skip self-loops, path edges, and live chords.
                        if v > u + 1 && !chord_set.contains(&(u, v)) {
                            break (u, v);
                        }
                    };
                    chords.push((u, v));
                    chord_set.insert((u, v));
                    format!(
                        r#"{{"id":{id},"cmd":"update","ops":[["insert",{u},{v}]],"beta":1,"eps":0.5}}"#
                    )
                }
            }
            Kind::Query => {
                if rng.random_bool(0.1) {
                    format!(r#"{{"id":{id},"cmd":"query","what":"pairs"}}"#)
                } else {
                    format!(r#"{{"id":{id},"cmd":"query","what":"status"}}"#)
                }
            }
            Kind::Metrics => format!(r#"{{"id":{id},"cmd":"metrics"}}"#),
        };
        lines.push(line);
        kinds.push(kind);
    }
    (lines, kinds)
}

struct SessionOutcome {
    /// (kind, latency in µs) per *served* (ok) request.
    latencies: Vec<(Kind, u64)>,
    overloaded: u64,
    other_errors: u64,
    responses: u64,
}

/// Replay one session against the daemon socket.
fn run_client(
    sock: &std::path::Path,
    session: u64,
    requests: usize,
    t0: Instant,
) -> SessionOutcome {
    let (lines, kinds) = build_script(session, requests);
    let stream = UnixStream::connect(sock).expect("connect");
    let mut writer = stream.try_clone().expect("clone for writer");
    let reader = BufReader::new(stream.try_clone().expect("clone for reader"));
    let sent: Vec<AtomicU64> = (0..requests).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        let sent_ref = &sent;
        let lines_ref = &lines;
        let writer_thread = scope.spawn(move || {
            let mut buf = String::new();
            let start = Instant::now();
            let per_request = std::time::Duration::from_secs_f64(1.0 / RATE_PER_SESSION);
            for (id, line) in lines_ref.iter().enumerate() {
                if id % BATCH == 0 {
                    let due = start + per_request * id as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                buf.clear();
                buf.push_str(line);
                buf.push('\n');
                sent_ref[id].store((Instant::now() - t0).as_nanos() as u64, Ordering::Release);
                writer.write_all(buf.as_bytes()).expect("request write");
            }
            writer.flush().expect("flush");
            // Half-close: the daemon sees EOF, drains its queue, and
            // closes the connection once every response is out.
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("shutdown write half");
        });

        let mut outcome = SessionOutcome {
            latencies: Vec::with_capacity(requests),
            overloaded: 0,
            other_errors: 0,
            responses: 0,
        };
        for line in reader.lines() {
            let line = line.expect("response read");
            let now = (Instant::now() - t0).as_nanos() as u64;
            let doc = Json::parse(&line).expect("response parses");
            let id = doc
                .get("id")
                .and_then(|j| j.as_u64())
                .expect("response echoes a numeric id") as usize;
            let ok = doc.get("ok").and_then(|j| j.as_bool()) == Some(true);
            if ok {
                // Only served requests contribute to the latency
                // percentiles; a shed request's instant rejection says
                // nothing about service time.
                let lat_ns = now.saturating_sub(sent[id].load(Ordering::Acquire));
                outcome.latencies.push((kinds[id], lat_ns / 1_000));
            } else {
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(|c| c.as_str())
                    .unwrap_or("?");
                if code == "overloaded" {
                    outcome.overloaded += 1;
                } else {
                    outcome.other_errors += 1;
                }
            }
            outcome.responses += 1;
        }
        writer_thread.join().expect("writer thread");
        outcome
    })
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let scale = scale_from_args();
    let (sessions, per_session): (u64, usize) = match scale {
        Scale::Quick => (2, 10_000),
        Scale::Full => (4, 300_000),
    };
    let cfg = ServeConfig {
        threads: 1,
        queue_cap: 4096,
        max_sessions: sessions as usize,
        ..ServeConfig::default()
    };
    let total = sessions as usize * per_session;
    println!(
        "[serve_bench] {} sessions x {} requests ({} scale)",
        sessions,
        per_session,
        scale.name()
    );

    let dir = std::env::temp_dir().join(format!("sparsimatch-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sock = dir.join("bench.sock");
    std::fs::remove_file(&sock).ok();
    let daemon = {
        let sock = sock.clone();
        std::thread::spawn(move || serve_unix(&sock, &cfg))
    };
    let mut tries = 0;
    while !sock.exists() {
        tries += 1;
        assert!(tries < 500, "daemon socket never appeared");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let t0 = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let sock = &sock;
                scope.spawn(move || run_client(sock, s, per_session, t0))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = t0.elapsed();

    // Stop the daemon with a daemon-scope shutdown on a fresh control
    // connection.
    {
        let mut control = UnixStream::connect(&sock).expect("control connect");
        writeln!(control, r#"{{"id":0,"cmd":"shutdown","scope":"daemon"}}"#)
            .expect("control write");
        let mut line = String::new();
        BufReader::new(&control)
            .read_line(&mut line)
            .expect("control read");
    }
    daemon.join().expect("daemon thread").expect("daemon io");
    std::fs::remove_dir_all(&dir).ok();

    let mut violations = Violations::new();
    let responses: u64 = outcomes.iter().map(|o| o.responses).sum();
    let overloaded: u64 = outcomes.iter().map(|o| o.overloaded).sum();
    let other_errors: u64 = outcomes.iter().map(|o| o.other_errors).sum();
    violations.check(responses == total as u64, || {
        format!("every request must be answered: {responses} responses for {total} requests")
    });
    violations.check(other_errors == 0, || {
        format!("well-formed mix produced {other_errors} non-overloaded errors")
    });
    if scale == Scale::Full {
        violations.check(total >= 1_000_000, || {
            format!("full scale must replay at least 1M requests, got {total}")
        });
    }

    // Bucket latencies per command.
    let mut buckets: Vec<(Kind, Vec<u64>)> = [
        Kind::LoadGraph,
        Kind::Solve,
        Kind::Update,
        Kind::Query,
        Kind::Metrics,
    ]
    .into_iter()
    .map(|k| (k, Vec::new()))
    .collect();
    for o in &outcomes {
        for &(kind, us) in &o.latencies {
            buckets
                .iter_mut()
                .find(|(k, _)| *k == kind)
                .unwrap()
                .1
                .push(us);
        }
    }

    let mut table = Table::new(&["command", "count", "p50_us", "p99_us", "p999_us", "max_us"]);
    let mut command_docs = Vec::new();
    for (kind, lats) in &mut buckets {
        if lats.is_empty() {
            continue;
        }
        lats.sort_unstable();
        let (p50, p99, p999) = (
            percentile(lats, 0.50),
            percentile(lats, 0.99),
            percentile(lats, 0.999),
        );
        let max = *lats.last().unwrap();
        violations.check(p50 <= p99 && p99 <= p999 && p999 <= max, || {
            format!(
                "{}: percentiles not monotone ({p50} / {p99} / {p999} / {max})",
                kind.name()
            )
        });
        table.row(vec![
            kind.name().to_string(),
            lats.len().to_string(),
            p50.to_string(),
            p99.to_string(),
            p999.to_string(),
            max.to_string(),
        ]);
        let mut c = Json::object();
        c.set("command", kind.name());
        c.set("count", lats.len());
        c.set("p50_us", p50);
        c.set("p99_us", p99);
        c.set("p999_us", p999);
        c.set("max_us", max);
        command_docs.push(c);
    }
    table.print();
    println!(
        "[serve_bench] {} requests in {:.2}s ({:.0} req/s), {} overloaded",
        total,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
        overloaded
    );

    // Custom schema (like fault_sweep.json): the per-command percentile
    // records are the product, not a measured-vs-predicted table.
    let mut doc = Json::object();
    doc.set("experiment", "serve_bench");
    doc.set("scale", scale.name());
    doc.set("sessions", sessions);
    doc.set("requests_per_session", per_session);
    doc.set("total_requests", total);
    doc.set(
        "served",
        outcomes.iter().map(|o| o.latencies.len()).sum::<usize>(),
    );
    doc.set("worker_threads", cfg.threads);
    doc.set("queue_cap", cfg.queue_cap);
    doc.set("rate_per_session", RATE_PER_SESSION);
    doc.set("elapsed_seconds", elapsed.as_secs_f64());
    doc.set("overloaded", overloaded);
    doc.set("errors", other_errors);
    doc.set("commands", Json::Array(command_docs));
    doc.set(
        "violations",
        Json::Array(
            violations
                .items()
                .iter()
                .map(|v| Json::from(v.as_str()))
                .collect(),
        ),
    );
    doc.set("bounds_ok", violations.is_empty());
    let out_dir = results_dir();
    std::fs::create_dir_all(&out_dir).expect("results dir");
    let path = out_dir.join("serve_bench.json");
    std::fs::write(&path, doc.to_pretty()).expect("write serve_bench.json");
    println!("[serve_bench] results written to {}", path.display());

    violations.finish("serve_bench");
}
