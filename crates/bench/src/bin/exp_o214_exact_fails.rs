//! E6 — Observation 2.14: exact MCM preservation is impossible unless
//! `Δ = Ω(p·n)`.
//!
//! On the two-odd-cliques-with-a-bridge instance, the sparsifier
//! preserves the exact MCM only when the bridge edge is marked, which
//! happens with probability exactly `1 − (1 − Δ/half)²` (≤ `4Δ/n`). We
//! Monte-Carlo the marking rate and the exact-preservation rate and
//! compare both against the closed form.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::lower_bounds::{bridge_experiment, bridge_mark_probability};

fn main() {
    let scale = scale_from_args();
    let (halves, deltas, trials): (&[usize], &[usize], usize) = match scale {
        Scale::Quick => (&[11, 21], &[1, 2, 4], 2000),
        Scale::Full => (&[11, 21, 41, 81], &[1, 2, 4, 8], 10000),
    };
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "half",
        "n",
        "delta",
        "P[bridge] predicted",
        "P[bridge] measured",
        "P[exact] measured",
        "4Δ/n",
    ]);

    println!("E6 / Observation 2.14: exact preservation needs the bridge edge\n");
    for &half in halves {
        for &delta in deltas {
            if delta >= half {
                continue;
            }
            let r = bridge_experiment(half, delta, trials, &mut rng);
            let n = 2 * half;
            let four_delta_over_n = 4.0 * delta as f64 / n as f64;
            // Monte-Carlo agreement with the closed form (3 sigma-ish).
            let sigma = (r.predicted * (1.0 - r.predicted) / trials as f64).sqrt();
            violations.check(
                (r.bridge_marked_rate - r.predicted).abs() <= 4.0 * sigma + 0.01,
                || {
                    format!(
                        "half={half} delta={delta}: measured {:.4} vs predicted {:.4}",
                        r.bridge_marked_rate, r.predicted
                    )
                },
            );
            // The paper's upper bound P <= 4Δ/n.
            violations.check(r.predicted <= four_delta_over_n + 1e-12, || {
                format!(
                    "half={half} delta={delta}: closed form {:.4} above 4Δ/n {:.4}",
                    r.predicted, four_delta_over_n
                )
            });
            // Exact preservation is gated on the bridge.
            violations.check(
                r.exact_preserved_rate <= r.bridge_marked_rate + 1e-12,
                || format!("half={half} delta={delta}: exact rate above bridge rate"),
            );
            table.row(vec![
                half.to_string(),
                n.to_string(),
                delta.to_string(),
                f3(bridge_mark_probability(half, delta)),
                f3(r.bridge_marked_rate),
                f3(r.exact_preserved_rate),
                f3(four_delta_over_n),
            ]);
        }
    }
    table.print();
    violations.finish_json("E6", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
