//! E3 — Observation 2.12: the sparsifier's arboricity is at most
//! `2·mark_cap`.
//!
//! We compute certified arboricity bounds: the exact maximum subgraph
//! density via Goldberg's flow reduction sandwiches `α(G_Δ)` within a
//! window of 1. The window's upper end must satisfy the observation.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::Table;
use sparsimatch_bench::workloads::standard_families;
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_graph::analysis::arboricity::{arboricity_bounds, degeneracy};

fn main() {
    let scale = scale_from_args();
    let (n, trials) = match scale {
        Scale::Quick => (250, 2),
        Scale::Full => (800, 5),
    };
    let mut rng = StdRng::seed_from_u64(0xE3);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "n",
        "delta",
        "cap",
        "α lower",
        "α upper",
        "degeneracy",
        "obs bound (2·cap)",
    ]);

    println!("E3 / Observation 2.12: arboricity of the sparsifier\n");
    for inst in standard_families(n, &mut rng) {
        let params = SparsifierParams::practical(inst.beta, 0.3);
        for _ in 0..trials {
            let s = build_sparsifier(&inst.graph, &params, &mut rng);
            if s.graph.num_edges() == 0 {
                continue;
            }
            let (lo, hi) = arboricity_bounds(&s.graph);
            let degen = degeneracy(&s.graph);
            let bound = params.arboricity_bound();
            violations.check(hi <= bound, || {
                format!(
                    "{}: arboricity upper bound {hi} exceeds observation bound {bound}",
                    inst.name
                )
            });
            table.row(vec![
                inst.name.into(),
                inst.graph.num_vertices().to_string(),
                params.delta.to_string(),
                params.mark_cap().to_string(),
                lo.to_string(),
                hi.to_string(),
                degen.to_string(),
                bound.to_string(),
            ]);
        }
    }
    table.print();
    violations.finish_json("E3", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
