//! E11 — ablation: how small can Δ really be?
//!
//! The proof of Theorem 2.1 uses `Δ = 20·(β/ε)·ln(24/ε)`. The union
//! bound is loose; this sweep scales Δ down from the paper constant and
//! reports the realized worst approximation ratio over repeated trials,
//! locating the practical threshold.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::workloads::{family_clique_union, family_unit_disk};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let (n, trials) = match scale {
        Scale::Quick => (400, 5),
        Scale::Full => (1500, 20),
    };
    let eps = 0.3;
    let scales: &[f64] = &[1.0, 0.25, 0.05, 1.0 / 20.0, 0.02, 0.01];
    let mut rng = StdRng::seed_from_u64(0xE11);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "scale vs paper",
        "delta",
        "|E(GΔ)|/m",
        "worst ratio",
        "1+eps",
        "holds",
    ]);

    println!("E11 / ablation: scaling Delta below the paper constant (eps = {eps})\n");
    for family in 0..2 {
        let inst = if family == 0 {
            family_clique_union(n, &mut rng)
        } else {
            family_unit_disk(n, &mut rng)
        };
        let exact = maximum_matching(&inst.graph).len();
        for &s in scales {
            let params = SparsifierParams::scaled(inst.beta, eps, s);
            let mut worst = 1.0f64;
            let mut edges = 0usize;
            for _ in 0..trials {
                let sp = build_sparsifier(&inst.graph, &params, &mut rng);
                let sm = maximum_matching(&sp.graph).len().max(1);
                worst = worst.max(exact as f64 / sm as f64);
                edges = edges.max(sp.stats.edges);
            }
            let holds = worst <= 1.0 + eps;
            // The paper constant itself must always hold.
            if (s - 1.0).abs() < 1e-9 {
                violations.check(holds, || {
                    format!("{}: paper-constant Delta violated the bound", inst.name)
                });
            }
            table.row(vec![
                inst.name.into(),
                f3(s),
                params.delta.to_string(),
                f3(edges as f64 / inst.graph.num_edges() as f64),
                f3(worst),
                f3(1.0 + eps),
                holds.to_string(),
            ]);
        }
    }
    table.print();
    violations.finish_json("E11", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
