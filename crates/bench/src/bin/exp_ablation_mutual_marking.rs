//! E12 — ablation (Section 3.2 discussion): why one-sided random marking?
//!
//! Solomon's bounded-degree sparsifier keeps only edges marked by *both*
//! endpoints — deterministic and degree-capped, but sound only on
//! bounded-arboricity inputs. On bounded-β inputs (a clique: β = 1,
//! arboricity ~ n/2) the mutual-marking rule with a small cap collapses
//! the matching to ~cap, while the paper's one-sided random marking with
//! the same per-vertex budget preserves it. This is the structural reason
//! the paper composes the two sparsifiers in that order.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::lower_bounds::build_plain_sparsifier;
use sparsimatch_core::solomon::solomon_sparsifier;
use sparsimatch_graph::generators::clique;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[64, 128],
        Scale::Full => &[64, 128, 256, 512],
    };
    let budget = 6usize; // per-vertex marks for both rules
    let mut rng = StdRng::seed_from_u64(0xE12);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "true mcm",
        "mutual-mark mcm",
        "one-sided random mcm",
        "mutual ratio",
        "random ratio",
    ]);

    println!("E12 / ablation: mutual marking vs one-sided random marking on K_n");
    println!("per-vertex budget: {budget} marks\n");
    for &n in ns {
        let g = clique(n);
        let true_mcm = n / 2;
        let mutual = solomon_sparsifier(&g, budget);
        let mutual_mcm = maximum_matching(&mutual).len();
        let random = build_plain_sparsifier(&g, budget, &mut rng);
        let random_mcm = maximum_matching(&random).len();
        violations.check(mutual_mcm <= 2 * budget, || {
            format!("n={n}: mutual marking unexpectedly preserved the matching")
        });
        violations.check(random_mcm * 2 >= true_mcm, || {
            format!("n={n}: random marking lost more than half the matching")
        });
        table.row(vec![
            n.to_string(),
            true_mcm.to_string(),
            mutual_mcm.to_string(),
            random_mcm.to_string(),
            f3(true_mcm as f64 / mutual_mcm.max(1) as f64),
            f3(true_mcm as f64 / random_mcm.max(1) as f64),
        ]);
    }
    table.print();
    violations.finish_json("E12", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
