//! E14 — the streaming application (Section 3, opening paragraph):
//! per-vertex reservoirs realize `G_Δ` in one pass over an edge stream.
//!
//! On dense bounded-β streams, the reservoir matcher should retain
//! `O(n·Δ)` edges (sublinear in the stream), keep a `(1+ε)`-shape
//! approximation, and beat the one-pass greedy's factor-2 floor where the
//! two differ. Greedy remains the memory champion (O(n)); the reservoir
//! matcher buys accuracy with the extra Δ factor.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_stream::{StreamingGreedyMatcher, StreamingSparsifierMatcher};

fn main() {
    let scale = scale_from_args();
    let ns: &[usize] = match scale {
        Scale::Quick => &[400, 800],
        Scale::Full => &[400, 800, 1600, 3200],
    };
    let eps = 0.3;
    let beta = 2;
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "stream edges",
        "algo",
        "retained",
        "retained/m",
        "|M|",
        "ratio vs exact",
    ]);

    println!("E14 / streaming: one-pass reservoir sparsifier vs one-pass greedy");
    println!("stream: dense 2-layer clique union (beta <= 2) in random order, eps = {eps}\n");
    for &n in ns {
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: beta,
                clique_size: n / 2,
            },
            &mut rng,
        );
        let mut stream: Vec<(VertexId, VertexId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        stream.shuffle(&mut rng);
        let m = g.num_edges();
        let exact = maximum_matching(&g).len();

        let params = SparsifierParams::practical(beta, eps);
        let mut sm = StreamingSparsifierMatcher::new(n, params);
        for &(u, v) in &stream {
            sm.push_edge(u, v, &mut rng);
        }
        let (matching, stats) = sm.finish();
        let ratio = exact as f64 / matching.len().max(1) as f64;
        violations.check(matching.is_valid_for(&g), || {
            format!("n={n}: streamed matching invalid")
        });
        violations.check(ratio <= 1.0 + eps, || {
            format!("n={n}: streaming ratio {ratio:.3} above 1+eps")
        });
        violations.check(stats.edges_retained <= n * params.mark_cap(), || {
            format!("n={n}: memory above n·cap")
        });
        table.row(vec![
            n.to_string(),
            m.to_string(),
            "reservoir GΔ".into(),
            stats.edges_retained.to_string(),
            f3(stats.edges_retained as f64 / m as f64),
            matching.len().to_string(),
            f3(ratio),
        ]);

        let mut gm = StreamingGreedyMatcher::new(n);
        for &(u, v) in &stream {
            gm.push_edge(u, v);
        }
        let (gmatch, gstats) = gm.finish();
        table.row(vec![
            n.to_string(),
            m.to_string(),
            "one-pass greedy".into(),
            gstats.edges_retained.to_string(),
            f3(gstats.edges_retained as f64 / m as f64),
            gmatch.len().to_string(),
            f3(exact as f64 / gmatch.len().max(1) as f64),
        ]);
    }
    table.print();
    violations.finish_json("E14", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
