//! E4 — Lemma 2.2: `|MCM(G)| ≥ n' / (β+2)` where `n'` counts non-isolated
//! vertices.
//!
//! The lemma is what makes the sparsifier's refined size bound and the
//! whp union bound work. We verify it with *exact* β (branch & bound) and
//! exact MCM on moderate instances across the families.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::workloads::standard_families;
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_graph::analysis::independence::neighborhood_independence_exact;
use sparsimatch_matching::blossom::maximum_matching;

fn main() {
    let scale = scale_from_args();
    let sizes: &[usize] = match scale {
        Scale::Quick => &[60, 120],
        Scale::Full => &[60, 120, 240, 480],
    };
    let mut rng = StdRng::seed_from_u64(0xE4);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "family",
        "n'",
        "beta (exact)",
        "mcm",
        "n'/(beta+2)",
        "slack",
    ]);

    println!("E4 / Lemma 2.2: MCM is at least n'/(beta+2)\n");
    for &n in sizes {
        for inst in standard_families(n, &mut rng) {
            let beta = neighborhood_independence_exact(&inst.graph);
            let mcm = maximum_matching(&inst.graph).len();
            let non_isolated = inst.graph.num_non_isolated();
            let bound = non_isolated as f64 / (beta as f64 + 2.0);
            violations.check(mcm as f64 >= bound - 1e-9, || {
                format!(
                    "{} n={n}: mcm {mcm} below n'/(beta+2) = {bound:.2}",
                    inst.name
                )
            });
            table.row(vec![
                inst.name.into(),
                non_isolated.to_string(),
                beta.to_string(),
                mcm.to_string(),
                f3(bound),
                f3(mcm as f64 / bound),
            ]);
        }
    }
    table.print();
    violations.finish_json("E4", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
