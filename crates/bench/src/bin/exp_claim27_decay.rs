//! E17 — Claim 2.7, the proof's engine: the probability that a fixed set
//! `U` of high-degree vertices stays *independent* in `G_Δ` decays
//! exponentially in `|U|·Δ`.
//!
//! On `K_n` everything is computable in closed form: a vertex `v ∈ U`
//! marks Δ of its `n−1` neighbors, and "all marks avoid U" has
//! probability `C(n−|U|, Δ)/C(n−1, Δ)`. Independence of `U` in `G_Δ`
//! requires every `v ∈ U` to mark outside `U` (the paper's event
//! `∩ E_v^{(U)}`; the reverse marks from outside `U` don't create edges
//! inside `U`), and the per-vertex events are independent — the exact
//! observation (2.9) the proof leans on. We Monte-Carlo the construction
//! and compare with the product formula, then with the paper's cruder
//! bound `(1 − ε/10β)^{Δ|U|/2}` shape: measured ≤ formula ≈ measured,
//! both collapsing as |U| or Δ grow.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_bench::table::{f3, Table};
use sparsimatch_bench::{scale_from_args, Scale, Violations};
use sparsimatch_core::lower_bounds::build_plain_sparsifier;
use sparsimatch_graph::generators::clique;
use sparsimatch_graph::ids::VertexId;

/// `P[one vertex of U marks entirely outside U] = Π_{i<Δ} (n−|U|−i)/(n−1−i)`.
fn avoid_probability(n: usize, u: usize, delta: usize) -> f64 {
    let mut p = 1.0;
    for i in 0..delta {
        let num = (n - u) as f64 - i as f64;
        let den = (n - 1) as f64 - i as f64;
        if num <= 0.0 {
            return 0.0;
        }
        p *= num / den;
    }
    p
}

fn main() {
    let scale = scale_from_args();
    let (n, trials) = match scale {
        Scale::Quick => (64usize, 4000usize),
        Scale::Full => (128, 20000),
    };
    let mut rng = StdRng::seed_from_u64(0xE17);
    let mut violations = Violations::new();
    let mut table = Table::new(&[
        "n",
        "|U|",
        "delta",
        "P[U independent] predicted",
        "measured",
        "per-vertex avoid",
    ]);

    println!("E17 / Claim 2.7: independence probability of a fixed set in G_Δ");
    println!("instance: K_{n}; U = the first |U| vertices; plain Δ-marking\n");
    for &u_size in &[2usize, 4, 8] {
        for &delta in &[1usize, 2, 4] {
            let g = clique(n);
            let predicted = avoid_probability(n, u_size, delta).powi(u_size as i32);
            let mut independent = 0usize;
            for _ in 0..trials {
                let s = build_plain_sparsifier(&g, delta, &mut rng);
                let is_independent = (0..u_size).all(|a| {
                    ((a + 1)..u_size).all(|b| !s.has_edge(VertexId::new(a), VertexId::new(b)))
                });
                independent += is_independent as usize;
            }
            let measured = independent as f64 / trials as f64;
            let sigma = (predicted * (1.0 - predicted) / trials as f64).sqrt();
            violations.check((measured - predicted).abs() <= 4.0 * sigma + 0.01, || {
                format!(
                    "|U|={u_size} Δ={delta}: measured {measured:.4} vs predicted {predicted:.4}"
                )
            });
            table.row(vec![
                n.to_string(),
                u_size.to_string(),
                delta.to_string(),
                f3(predicted),
                f3(measured),
                f3(avoid_probability(n, u_size, delta)),
            ]);
        }
    }
    table.print();
    println!(
        "\nDecay is exponential in |U|·Δ exactly as the union bound needs:\n\
         doubling either parameter squares the survival probability."
    );
    violations.finish_json("E17", env!("CARGO_BIN_NAME"), scale, &[&table]);
}
