//! Small summary statistics for repeated trials.

/// Summary of a sample of f64 observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample.
pub fn summarize(xs: &[f64]) -> Summary {
    let n = xs.len();
    if n == 0 {
        return Summary::default();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n >= 2 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    Summary {
        n,
        mean,
        std: var.sqrt(),
        min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
        max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a copy of the data.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((v.len() as f64 - 1.0) * q).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(summarize(&[]).n, 0);
        let s = summarize(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert!(quantile(&[], 0.5).is_nan());
    }
}
