#![warn(missing_docs)]

//! Shared experiment harness: workload families, table printing, and
//! summary statistics for the per-claim experiment binaries.
//!
//! Every paper claim has a binary in `src/bin/` (see DESIGN.md §3 for the
//! experiment index). Binaries accept `--full` for the larger parameter
//! grid (default is a quick grid suitable for CI) and exit nonzero if a
//! paper bound is violated, so the experiment suite doubles as a
//! statistical test suite.

pub mod stats;
pub mod table;
pub mod workloads;

/// Runtime scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small grid, seconds per experiment (default).
    Quick,
    /// Full grid, minutes per experiment (`--full`).
    Full,
}

/// Parse the scale from `std::env::args`.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Exit reporting: collect violations and flush at the end.
#[derive(Default)]
pub struct Violations {
    items: Vec<String>,
}

impl Violations {
    /// Fresh empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a violated bound.
    pub fn record(&mut self, what: impl Into<String>) {
        self.items.push(what.into());
    }

    /// Check a bound; record on failure.
    pub fn check(&mut self, ok: bool, what: impl FnOnce() -> String) {
        if !ok {
            self.record(what());
        }
    }

    /// Print any violations and exit nonzero if there were some.
    pub fn finish(self, experiment: &str) -> ! {
        if self.items.is_empty() {
            println!("\n[{experiment}] all paper bounds verified");
            std::process::exit(0);
        }
        eprintln!("\n[{experiment}] BOUND VIOLATIONS:");
        for item in &self.items {
            eprintln!("  - {item}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_accumulate() {
        let mut v = Violations::new();
        v.check(true, || "never".into());
        assert!(v.items.is_empty());
        v.check(false, || "bad".into());
        v.record("worse");
        assert_eq!(v.items, vec!["bad".to_string(), "worse".to_string()]);
    }
}
