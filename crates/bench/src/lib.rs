#![warn(missing_docs)]

//! Shared experiment harness: workload families, table printing, and
//! summary statistics for the per-claim experiment binaries.
//!
//! Every paper claim has a binary in `src/bin/` (see DESIGN.md §3 for the
//! experiment index). Binaries accept `--full` for the larger parameter
//! grid (default is a quick grid suitable for CI) and exit nonzero if a
//! paper bound is violated, so the experiment suite doubles as a
//! statistical test suite.

pub mod stats;
pub mod table;
/// The β-certified instance families, re-exported from
/// [`sparsimatch_graph::workloads`] (their canonical home, so the
/// differential-testing harness `sparsimatch-check` can fuzz the exact
/// same distributions the experiments report on).
pub use sparsimatch_graph::workloads;

use sparsimatch_obs::Json;

/// Runtime scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small grid, seconds per experiment (default).
    Quick,
    /// Full grid, minutes per experiment (`--full`).
    Full,
}

impl Scale {
    /// The scale's name as used in result files.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Parse the scale from `std::env::args`.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Exit reporting: collect violations and flush at the end.
#[derive(Default)]
pub struct Violations {
    items: Vec<String>,
}

impl Violations {
    /// Fresh empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a violated bound.
    pub fn record(&mut self, what: impl Into<String>) {
        self.items.push(what.into());
    }

    /// Check a bound; record on failure.
    pub fn check(&mut self, ok: bool, what: impl FnOnce() -> String) {
        if !ok {
            self.record(what());
        }
    }

    /// The violation messages recorded so far.
    pub fn items(&self) -> &[String] {
        &self.items
    }

    /// True while every checked bound has held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Print any violations and exit nonzero if there were some.
    pub fn finish(self, experiment: &str) -> ! {
        if self.items.is_empty() {
            println!("\n[{experiment}] all paper bounds verified");
            std::process::exit(0);
        }
        eprintln!("\n[{experiment}] BOUND VIOLATIONS:");
        for item in &self.items {
            eprintln!("  - {item}");
        }
        std::process::exit(1);
    }

    /// Like [`Violations::finish`], but first writes the machine-readable
    /// result document to `<results dir>/<bin>.json` (see
    /// [`write_results_json`]). The JSON is written whether or not bounds
    /// were violated, so a red run still leaves its evidence on disk.
    pub fn finish_json(self, label: &str, bin: &str, scale: Scale, tables: &[&table::Table]) -> ! {
        match write_results_json(bin, label, scale, tables, &self.items) {
            Ok(path) => println!("\n[{label}] results written to {}", path.display()),
            Err(e) => {
                eprintln!("\n[{label}] FAILED to write results JSON: {e}");
                std::process::exit(1);
            }
        }
        self.finish(label)
    }
}

/// Where experiment result JSON files go: the `SPARSIMATCH_RESULTS_DIR`
/// environment variable if set, else `results/` under the current
/// directory.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("SPARSIMATCH_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Write `<results dir>/<bin>.json`: experiment name, claim label, grid
/// scale, every measured-vs-predicted table, the bound-violation messages
/// (empty on a clean run), and the overall `bounds_ok` flag. The schema is
/// documented in EXPERIMENTS.md ("Machine-readable results"). Returns the
/// path written.
pub fn write_results_json(
    bin: &str,
    label: &str,
    scale: Scale,
    tables: &[&table::Table],
    violations: &[String],
) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let mut doc = Json::object();
    doc.set("experiment", bin);
    doc.set("label", label);
    doc.set("scale", scale.name());
    doc.set(
        "tables",
        Json::Array(tables.iter().map(|t| t.to_json()).collect()),
    );
    doc.set(
        "violations",
        Json::Array(violations.iter().map(|v| Json::from(v.as_str())).collect()),
    );
    doc.set("bounds_ok", violations.is_empty());
    let path = dir.join(format!("{bin}.json"));
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_accumulate() {
        let mut v = Violations::new();
        v.check(true, || "never".into());
        assert!(v.items.is_empty());
        v.check(false, || "bad".into());
        v.record("worse");
        assert_eq!(v.items, vec!["bad".to_string(), "worse".to_string()]);
    }

    #[test]
    fn results_json_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sparsimatch-results-{}", std::process::id()));
        std::env::set_var("SPARSIMATCH_RESULTS_DIR", &dir);
        let mut t = table::Table::new(&["n", "ratio"]);
        t.row(vec!["100".into(), "1.042".into()]);
        let path = write_results_json(
            "exp_unit_test",
            "E0",
            Scale::Quick,
            &[&t],
            &["too big".to_string()],
        )
        .unwrap();
        std::env::remove_var("SPARSIMATCH_RESULTS_DIR");
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("experiment").unwrap().as_str(),
            Some("exp_unit_test")
        );
        assert_eq!(doc.get("label").unwrap().as_str(), Some("E0"));
        assert_eq!(doc.get("scale").unwrap().as_str(), Some("quick"));
        assert_eq!(doc.get("bounds_ok").unwrap().as_bool(), Some(false));
        let tables = doc.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let rows = tables[0].get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("1.042"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
