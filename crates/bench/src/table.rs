//! Fixed-width ASCII table printing for experiment output.

use sparsimatch_obs::Json;

/// A simple column-aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also used by `print`).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as JSON: `{"headers": [...], "rows": [[...], ...]}`.
    /// Cells stay strings — they are already formatted measurements, and
    /// string cells keep the export lossless and byte-deterministic.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set(
            "headers",
            Json::Array(
                self.headers
                    .iter()
                    .map(|h| Json::from(h.as_str()))
                    .collect(),
            ),
        );
        obj.set(
            "rows",
            Json::Array(
                self.rows
                    .iter()
                    .map(|row| Json::Array(row.iter().map(|c| Json::from(c.as_str())).collect()))
                    .collect(),
            ),
        );
        obj
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a ratio like `1.042`.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "inf".into()
    } else {
        f3(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("long-name"));
        // Right-aligned values share the same end column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(ratio(3.0, 2.0), "1.500");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
