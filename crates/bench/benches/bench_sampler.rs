//! E13 — sampler microbenchmarks: the deterministic `pos_v` sampler vs
//! naive rejection sampling (whose time bound is only w.h.p.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use sparsimatch_core::sampler::PosArraySampler;
use std::collections::HashSet;
use std::hint::black_box;

fn rejection_sample(deg: usize, k: usize, rng: &mut StdRng, out: &mut Vec<u32>) {
    out.clear();
    let mut seen = HashSet::with_capacity(k * 2);
    while out.len() < k {
        let i = rng.random_range(0..deg) as u32;
        if seen.insert(i) {
            out.push(i);
        }
    }
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler");
    for &(deg, k) in &[(1usize << 10, 32usize), (1 << 16, 64), (1 << 20, 128)] {
        group.bench_with_input(
            BenchmarkId::new("pos-array", format!("deg={deg},k={k}")),
            &(deg, k),
            |b, &(deg, k)| {
                let mut sampler = PosArraySampler::new(deg);
                let mut rng = StdRng::seed_from_u64(1);
                let mut out = Vec::with_capacity(k);
                b.iter(|| {
                    sampler.sample_indices(deg, k, &mut rng, &mut out);
                    black_box(out.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rejection", format!("deg={deg},k={k}")),
            &(deg, k),
            |b, &(deg, k)| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut out = Vec::with_capacity(k);
                b.iter(|| {
                    rejection_sample(deg, k, &mut rng, &mut out);
                    black_box(out.len())
                });
            },
        );
        // The adversarial regime for rejection sampling: k close to deg.
        group.bench_with_input(
            BenchmarkId::new("pos-array-dense", format!("deg={d},k={d}", d = 2 * k)),
            &(2 * k, 2 * k),
            |b, &(deg, k)| {
                let mut sampler = PosArraySampler::new(deg);
                let mut rng = StdRng::seed_from_u64(1);
                let mut out = Vec::with_capacity(k);
                b.iter(|| {
                    sampler.sample_indices(deg, k, &mut rng, &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
