//! Matching-substrate benchmarks: exact blossom vs Hopcroft–Karp on
//! bipartite inputs, and the `(1+1/k)` bounded augmentation across ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_graph::generators::{bipartite_gnp, gnp};
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::bounded_aug::approx_maximum_matching;
use sparsimatch_matching::hopcroft_karp::hopcroft_karp_auto;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact-matching");
    group.sample_size(10);
    for &n in &[500usize, 1000] {
        let mut rng = StdRng::seed_from_u64(23);
        let bip = bipartite_gnp(n / 2, n / 2, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("hopcroft-karp", n), &bip, |b, g| {
            b.iter(|| black_box(hopcroft_karp_auto(g).unwrap().len()));
        });
        group.bench_with_input(BenchmarkId::new("blossom-bipartite", n), &bip, |b, g| {
            b.iter(|| black_box(maximum_matching(g).len()));
        });
        let gen = gnp(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("blossom-general", n), &gen, |b, g| {
            b.iter(|| black_box(maximum_matching(g).len()));
        });
    }
    group.finish();
}

fn bench_bounded_aug(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded-augmentation");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(29);
    let g = gnp(2000, 0.004, &mut rng);
    for &eps in &[1.0f64, 0.5, 0.25, 0.1] {
        group.bench_with_input(
            BenchmarkId::new("approx", format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| black_box(approx_maximum_matching(&g, eps).len()));
            },
        );
    }
    group.bench_function("exact-reference", |b| {
        b.iter(|| black_box(maximum_matching(&g).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_exact, bench_bounded_aug);
criterion_main!(benches);
