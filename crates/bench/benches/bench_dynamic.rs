//! Theorem 3.5 wall-clock: dynamic updates per second for the window
//! scheme vs the threshold maximal matching baseline, at growing n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_dynamic::adversary::{Adversary, Policy, StreamAdversary};
use sparsimatch_dynamic::baselines::ThresholdMaximalMatching;
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::Matching;
use std::hint::black_box;

const BATCH: usize = 500;

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic-updates");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(BATCH as u64));
    for &n in &[200usize, 400, 800] {
        let mut rng = StdRng::seed_from_u64(13);
        let host = clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 4,
            },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("window-scheme", n), &host, |b, host| {
            let params = SparsifierParams::practical(2, 0.5);
            let mut dm = DynamicMatcher::new(n, params, 1);
            let mut adv = StreamAdversary::new(host, Policy::Oblivious { p_insert: 0.7 });
            let mut rng = StdRng::seed_from_u64(17);
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..BATCH {
                    let upd = adv.next(dm.matching(), &mut rng);
                    total += dm.apply(upd).work;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("threshold-mm", n), &host, |b, host| {
            let mut tm = ThresholdMaximalMatching::new(n, 2);
            let mut adv = StreamAdversary::new(host, Policy::Oblivious { p_insert: 0.7 });
            let mut rng = StdRng::seed_from_u64(17);
            let probe = Matching::new(n);
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..BATCH {
                    let upd = adv.next(&probe, &mut rng);
                    total += tm.apply(upd);
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
