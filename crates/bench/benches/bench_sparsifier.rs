//! Sparsifier construction cost: wall-clock confirmation that building
//! `G_Δ` is governed by `n·Δ`, not by `m` (Theorem 3.1's construction
//! step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::{build_sparsifier, build_sparsifier_parallel};
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsifier-build");
    group.sample_size(20);
    for &n in &[500usize, 1000, 2000] {
        let mut rng = StdRng::seed_from_u64(7);
        // Dense host: m = Θ(n²/4).
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 4,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.3);
        group.bench_with_input(
            BenchmarkId::new("build_sparsifier", format!("n={n},m={}", g.num_edges())),
            &g,
            |b, g| {
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| black_box(build_sparsifier(g, &params, &mut rng).stats.edges));
            },
        );
        for threads in [2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("build_parallel_t{threads}"),
                    format!("n={n},m={}", g.num_edges()),
                ),
                &g,
                |b, g| {
                    b.iter(|| {
                        black_box(
                            build_sparsifier_parallel(g, &params, 11, threads)
                                .expect("valid thread count")
                                .stats
                                .edges,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
