//! Theorem 3.1 wall-clock: the sparsifier pipeline vs reading the whole
//! graph. On dense inputs the pipeline's advantage grows with density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier;
use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
use sparsimatch_matching::assadi_solomon::{assadi_solomon_maximal, AsConfig};
use sparsimatch_matching::bounded_aug::approx_maximum_matching;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use std::hint::black_box;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential");
    group.sample_size(10);
    for &n in &[400usize, 800, 1600] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 4,
            },
            &mut rng,
        );
        let label = format!("n={n},m={}", g.num_edges());
        let params = SparsifierParams::practical(2, 0.3);
        group.bench_with_input(BenchmarkId::new("sparsify+match", &label), &g, |b, g| {
            b.iter(|| {
                black_box(
                    approx_mcm_via_sparsifier(g, &params, 5, 1)
                        .unwrap()
                        .matching
                        .len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("as19-maximal", &label), &g, |b, g| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(assadi_solomon_maximal(g, &AsConfig::for_beta(2), &mut rng).len()));
        });
        group.bench_with_input(BenchmarkId::new("greedy-full", &label), &g, |b, g| {
            b.iter(|| black_box(greedy_maximal_matching(g).len()));
        });
        group.bench_with_input(BenchmarkId::new("karp-sipser-full", &label), &g, |b, g| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                black_box(
                    sparsimatch_matching::karp_sipser::karp_sipser_matching(g, &mut rng).len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("bounded-aug-full", &label), &g, |b, g| {
            b.iter(|| black_box(approx_maximum_matching(g, 0.3).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
