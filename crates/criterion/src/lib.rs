//! Offline stand-in for the subset of the `criterion` API used by the
//! workspace's benches (the build environment cannot reach crates.io).
//!
//! Each `Bencher::iter` call runs a short warm-up, then a fixed number of
//! timed batches, and prints the mean wall-clock time per iteration. There
//! is no statistical analysis, no plotting, and no CLI; when invoked with
//! `--test` (as `cargo test --benches` does) every benchmark body runs
//! exactly once so the run stays fast and exit status still reflects
//! panics.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation; accepted and echoed, not analyzed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; `iter` does the measuring.
pub struct Bencher {
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, printing mean wall-clock per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up, then time enough iterations to cover ~50ms or at
        // least 10 runs, whichever is larger.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let timed_iters = ((0.05 / per_iter.max(1e-9)) as u64).clamp(10, 100_000);
        let start = Instant::now();
        for _ in 0..timed_iters {
            black_box(routine());
        }
        let mean = start.elapsed().as_secs_f64() / timed_iters as f64;
        print!("{:>12}  ({timed_iters} iters)", format_duration(mean));
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; echoed but not analyzed.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this shim ignores time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        print!("{}/{:<40}  ", self.name, id.to_string());
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        println!();
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        print!("{}/{:<40}  ", self.name, name);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        println!();
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes --test; `cargo bench` passes
        // --bench. Run bodies once in test mode to keep tests fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        print!("{name:<46}  ");
        let mut b = Bencher {
            test_mode: self.test_mode,
        };
        f(&mut b);
        println!();
        self
    }
}

/// Collect benchmark functions into one runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
