#![warn(missing_docs)]

//! Differential-testing and invariant-checking harness for the
//! `sparsimatch` workspace.
//!
//! The paper's evaluation *is* its theorems — Theorem 2.1's `(1+ε)`
//! sparsification ratio, Observations 2.10/2.12 size and arboricity
//! bounds, Theorem 3.1's end-to-end pipeline ratio, Theorem 3.5's flat
//! per-update work — so this crate exercises those invariants far beyond
//! the fixed experiment grids, with a fully seeded (hence reproducible)
//! random-instance fuzzer and oracle comparison at small `n`, where exact
//! answers are computable:
//!
//! * [`instance`] — the serializable test instance (graph, β certificate,
//!   parameters, optional update stream) and the seeded generator over all
//!   certified workload families plus arbitrary `G(n,p)` with exact
//!   branch-and-bound β audit.
//! * [`oracles`] — the comparators: sequential pipeline vs exact blossom
//!   MCM, sparsifier invariants (subgraph, Obs 2.10 size, Obs 2.12
//!   arboricity, Thm 2.1 ratio), dynamic scheme vs full recompute per
//!   audit under both adversaries, and distsim (perfect + faulty network)
//!   vs the sequential pipeline on the same seed.
//! * [`shrink`] — ddmin-style automatic shrinking: drop edges / updates /
//!   trailing vertices while the violation persists.
//! * [`report`] — byte-stable JSON reproducer files
//!   (`results/check/counterexample-<seed>.json`, schema documented in
//!   EXPERIMENTS.md) and their replay, re-executed by
//!   `sparsimatch check --replay <FILE>`.
//!
//! The binary (`cargo run -p sparsimatch-check`) sweeps a seed budget
//! (default 1000) and exits nonzero if any violation is found, writing a
//! shrunk reproducer per failure. With default parameters the sweep is
//! expected to be clean; tightening the ratio bound below theory (e.g.
//! `--bound-eps 0.05 --delta 1`) demonstrates the full
//! find → shrink → reproduce loop.

pub mod instance;
pub mod oracles;
pub mod report;
pub mod shrink;

pub use instance::{CheckConfig, CheckInstance, Scenario};
pub use oracles::{OracleKind, Violation};
pub use report::{counterexample_doc, replay_str, ReplayReport};
pub use shrink::{shrink_instance, ShrinkStats};
