//! Byte-stable counterexample reproducer files and their replay.
//!
//! A reproducer (`results/check/counterexample-<seed>.json`) is the
//! complete record of a failed trial: the generator seed, the oracle, the
//! (shrunk) instance, the tightened bound the run used (if any), the
//! violation witness, and shrink statistics. The schema is documented in
//! EXPERIMENTS.md ("Counterexample reproducers") and is versioned.
//!
//! **Replay contract.** [`replay_str`] re-runs the named oracle on the
//! stored instance and rebuilds the document from the stored fields plus
//! the freshly computed violation. If the violation reproduces, the
//! rebuilt document is byte-identical to the input — that identity is the
//! strongest possible regression check, and `sparsimatch check --replay`
//! exposes it as an exit code.

use crate::instance::{CheckConfig, CheckInstance};
use crate::oracles::{OracleKind, Violation};
use crate::shrink::ShrinkStats;
use sparsimatch_obs::Json;

/// Version stamp written into every reproducer file.
pub const SCHEMA_VERSION: u64 = 1;

/// Canonical reproducer filename for a generator seed.
pub fn counterexample_filename(seed: u64) -> String {
    format!("counterexample-{seed}.json")
}

/// Build the reproducer document. Field order is fixed — it is part of
/// the byte-stability contract replay relies on.
pub fn counterexample_doc(
    seed: u64,
    oracle: OracleKind,
    inst: &CheckInstance,
    cfg: &CheckConfig,
    violation: &Violation,
    stats: &ShrinkStats,
) -> Json {
    let mut doc = Json::object();
    doc.set("tool", "sparsimatch-check");
    doc.set("schema_version", SCHEMA_VERSION);
    doc.set("seed", seed);
    doc.set("oracle", oracle.name());
    doc.set(
        "bound_eps",
        match cfg.bound_eps {
            Some(e) => Json::from(e),
            None => Json::Null,
        },
    );
    doc.set("instance", inst.to_json());
    let mut v = Json::object();
    v.set("check", violation.check.as_str());
    v.set("message", violation.message.as_str());
    doc.set("violation", v);
    let mut s = Json::object();
    s.set("oracle_calls", stats.oracle_calls);
    s.set("edges_before", stats.edges_before);
    s.set("edges_after", stats.edges_after);
    s.set("updates_before", stats.updates_before);
    s.set("updates_after", stats.updates_after);
    doc.set("shrink", s);
    doc
}

/// Outcome of replaying a reproducer file.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Generator seed recorded in the file.
    pub seed: u64,
    /// Oracle that judged (and re-judges) the instance.
    pub oracle: OracleKind,
    /// The violation recorded in the file.
    pub recorded: Violation,
    /// The violation the re-run found, if any.
    pub fresh: Option<Violation>,
    /// Whether the re-rendered document matches the input byte for byte
    /// (implies `fresh` reproduces `recorded` exactly).
    pub byte_identical: bool,
}

impl ReplayReport {
    /// Did the violation reproduce at all?
    pub fn reproduced(&self) -> bool {
        self.fresh.is_some()
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    field(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

/// Parse a reproducer and re-execute its oracle. Errors describe schema
/// problems; an oracle that no longer rejects is *not* an error (it is a
/// [`ReplayReport`] with `fresh == None`).
pub fn replay_str(text: &str) -> Result<ReplayReport, String> {
    let doc = Json::parse(text).map_err(|e| format!("reproducer is not valid JSON: {e}"))?;
    if str_field(&doc, "tool")? != "sparsimatch-check" {
        return Err("not a sparsimatch-check reproducer (tool field mismatch)".to_string());
    }
    let version = u64_field(&doc, "schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let seed = u64_field(&doc, "seed")?;
    let oracle = OracleKind::from_name(str_field(&doc, "oracle")?)?;
    let bound_eps = match field(&doc, "bound_eps")? {
        Json::Null => None,
        v => Some(
            v.as_f64()
                .ok_or("field \"bound_eps\" is neither null nor a number")?,
        ),
    };
    let inst = CheckInstance::from_json(field(&doc, "instance")?)?;
    let violation_doc = field(&doc, "violation")?;
    let recorded = Violation {
        check: str_field(violation_doc, "check")?.to_string(),
        message: str_field(violation_doc, "message")?.to_string(),
    };
    let shrink_doc = field(&doc, "shrink")?;
    let stats = ShrinkStats {
        oracle_calls: u64_field(shrink_doc, "oracle_calls")?,
        edges_before: u64_field(shrink_doc, "edges_before")?,
        edges_after: u64_field(shrink_doc, "edges_after")?,
        updates_before: u64_field(shrink_doc, "updates_before")?,
        updates_after: u64_field(shrink_doc, "updates_after")?,
    };

    // The backend filter and oracle pin are deliberately not serialized:
    // both only select *which* oracle runs (the document already names
    // it), never what that oracle checks, so replaying without them
    // re-finds the same first violation while keeping the document schema
    // (and its byte stability) fixed.
    let cfg = CheckConfig {
        bound_eps,
        delta: inst.delta,
        backend: None,
        oracle: None,
    };
    let fresh = oracle.check(&inst, &cfg);
    let byte_identical = match &fresh {
        Some(v) => counterexample_doc(seed, oracle, &inst, &cfg, v, &stats).to_pretty() == text,
        None => false,
    };
    Ok(ReplayReport {
        seed,
        oracle,
        recorded,
        fresh,
        byte_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> (Json, CheckInstance, CheckConfig) {
        let inst = CheckInstance {
            family: "clique".to_string(),
            n: 4,
            beta: 1,
            eps: 0.4,
            delta: Some(1),
            algo_seed: 99,
            edges: vec![(0, 1), (2, 3)],
            updates: Vec::new(),
        };
        let cfg = CheckConfig {
            bound_eps: Some(0.05),
            delta: Some(1),
            backend: None,
            oracle: None,
        };
        let v = Violation {
            check: "stub".to_string(),
            message: "synthetic".to_string(),
        };
        let doc = counterexample_doc(
            7,
            OracleKind::Static,
            &inst,
            &cfg,
            &v,
            &ShrinkStats::default(),
        );
        (doc, inst, cfg)
    }

    #[test]
    fn doc_has_the_documented_field_order() {
        let (doc, _, _) = sample_doc();
        let text = doc.to_pretty();
        let order = [
            "\"tool\"",
            "\"schema_version\"",
            "\"seed\"",
            "\"oracle\"",
            "\"bound_eps\"",
            "\"instance\"",
            "\"violation\"",
            "\"shrink\"",
        ];
        let mut last = 0;
        for key in order {
            let pos = text.find(key).unwrap_or_else(|| panic!("{key} missing"));
            assert!(pos > last || last == 0, "{key} out of order");
            last = pos;
        }
    }

    #[test]
    fn replay_rejects_foreign_documents() {
        assert!(replay_str("not json").is_err());
        assert!(replay_str("{\"tool\": \"other\"}").is_err());
        let (doc, ..) = sample_doc();
        let mut wrong = doc.clone();
        wrong.set("schema_version", 999u64);
        assert!(replay_str(&wrong.to_pretty())
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn replay_parses_and_rejudges() {
        // This synthetic static instance (clique edges, Δ = 1 forced,
        // bound tightened to 1.05) does not actually violate — two
        // disjoint edges are matched perfectly — so replay must report
        // "did not reproduce" rather than erroring out.
        let (doc, ..) = sample_doc();
        let report = replay_str(&doc.to_pretty()).unwrap();
        assert_eq!(report.seed, 7);
        assert_eq!(report.oracle, OracleKind::Static);
        assert_eq!(report.recorded.check, "stub");
        assert!(!report.reproduced());
        assert!(!report.byte_identical);
    }
}
