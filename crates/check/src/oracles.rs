//! Oracle comparators: run an algorithm on an instance and judge the
//! output against ground truth computed the slow, trustworthy way.
//!
//! Every check here is a paper claim made executable at small `n`:
//!
//! * **static** — the Theorem 3.1 pipeline vs exact blossom MCM
//!   (`|MCM(G)| ≤ (1+ε)·|pipeline(G)|`), the β certificate audited by
//!   exact branch and bound, and the sparsifier invariants: subgraph-ness,
//!   the Observation 2.10 size bound, the Observation 2.12 arboricity
//!   bound, and the Theorem 2.1 sparsification ratio itself.
//! * **dynamic** — the Theorem 3.5 window scheme replayed against a full
//!   recompute (exact blossom on a reference graph) at periodic audits,
//!   plus validity of the served matching at every audit and the
//!   per-update work cap.
//! * **distsim** — the Theorem 3.2/3.3 distributed pipeline vs the
//!   sequential pipeline on the same seed, zero-fault transparency of the
//!   faulty network (byte-identical outcome), and validity under a seeded
//!   fault plan.
//! * **scratch** — the warm-scratch pipeline
//!   ([`approx_mcm_via_sparsifier_with_scratch`]) vs the one-shot
//!   cold path, byte-for-byte across matching pairs, sparsifier stats,
//!   probes, and augmentation stats, at several thread counts and on a
//!   deliberately dirty reused arena.
//! * **stream** — the out-of-core streamed pipeline
//!   ([`approx_mcm_streamed`]) vs the in-memory one, byte-for-byte on
//!   the same fingerprint, plus the streaming report's own invariants
//!   (`sparsifier_bytes ≤ peak_resident_bytes`, two passes = `4m`
//!   half-edge visits). The graph streams from its own CSR — the
//!   file-backed source is pinned separately by proptest — so the sweep
//!   stays hermetic.
//! * **chaos-stream** — the streamed pipeline under a seeded
//!   [`IoFaultPlan`] (the I/O twin of distsim's `FaultPlan`): a
//!   recoverable plan plus a matching [`RetryPolicy`] must reproduce the
//!   fault-free run byte-for-byte with every aborted rescan charged to
//!   the work accounting, and an unrecoverable plan must surface a typed
//!   [`StreamBuildError`] — never a panic, never a silently wrong
//!   sparsifier.
//! * **backend** — the [`MatchingSparsifier`] contract: the `delta`
//!   backend behind the trait is byte-identical to the direct pipeline
//!   at `t ∈ {1, 2, 4}` (the tentpole's zero-behavior-change pin), and
//!   *every* backend's self-declared claims hold — the built subgraph
//!   respects its claimed size bound and local invariants (for EDCS,
//!   Properties A and B plus in-memory/streamed build identity), and the
//!   solved matching is within the claimed ratio of exact blossom.
//!
//! A whole seed sweep shares one [`PipelineScratch`] (see
//! [`OracleKind::check_with_scratch`]), so every oracle's sequential
//! pipeline runs exercise the steady-state reuse path the scratch oracle
//! certifies.
//!
//! Oracles return the *first* violation they find; messages embed the
//! concrete numbers so a reproducer file doubles as a witness.

use crate::instance::{CheckConfig, CheckInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsimatch_core::backend::{BackendKind, DeltaBackend, EdcsBackend, MatchingSparsifier};
use sparsimatch_core::edcs::{build_edcs, build_edcs_streamed, edcs_violation, EdcsParams};
use sparsimatch_core::pipeline::{
    approx_mcm_via_sparsifier, approx_mcm_via_sparsifier_with_scratch,
};
use sparsimatch_core::scratch::PipelineScratch;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_core::stream_build::{
    approx_mcm_streamed, approx_mcm_streamed_with_retry, RetryPolicy, StreamBuildError,
};
use sparsimatch_distsim::algorithms::pipeline::{
    distributed_approx_mcm, distributed_approx_mcm_faulty, distributed_approx_mcm_sharded,
    DistributedOutcome,
};
use sparsimatch_distsim::{FaultPlan, FaultRates, ResilienceParams};
use sparsimatch_dynamic::adversary::Update;
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::analysis::arboricity::arboricity_bounds;
use sparsimatch_graph::analysis::independence::neighborhood_independence_at_most;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::edge_stream::{FaultyEdgeSource, IoFaultPlan, IoFaultRates};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::Matching;

/// Additive slack on the dynamic ratio check: the served matching may be
/// one window stale (Gupta–Peng stability) and pruned by in-window
/// deletions, which at these instance sizes is worth a couple of edges on
/// top of the `(1+ε)` factor.
pub const DYNAMIC_ABS_SLACK: f64 = 2.0;

/// Additive slack on the distributed ratio checks: the whp guarantee is
/// asymptotic, and a single unlucky vertex at `n ≤ 34` is one matched
/// edge of noise.
pub const DISTSIM_ABS_SLACK: f64 = 2.0;

/// How often the dynamic oracle stops the stream and compares against a
/// full recompute (every update would be O(steps · blossom); every 25th
/// plus the final state keeps the sweep fast without losing the bug the
/// audit exists to catch).
const DYNAMIC_AUDIT_PERIOD: usize = 25;

/// Additive slack on the backend ratio checks: the claims are worst-case
/// asymptotic statements, and at `n ≤ 40` a single unlucky vertex is one
/// matched edge of noise — the same allowance the dynamic and distsim
/// oracles get.
pub const BACKEND_ABS_SLACK: f64 = 2.0;

/// Tiny epsilon absorbing float rounding in ratio comparisons.
const FLOAT_FUDGE: f64 = 1e-9;

/// A failed check: which invariant broke, with a concrete witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable slug naming the invariant (e.g. `thm3.1-ratio`).
    pub check: String,
    /// Human-readable witness with the measured numbers.
    pub message: String,
}

impl Violation {
    fn new(check: &str, message: String) -> Self {
        Violation {
            check: check.to_string(),
            message,
        }
    }
}

/// Which oracle judges a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// Sequential pipeline + sparsifier invariants + β audit.
    Static,
    /// Dynamic scheme vs full recompute under the recorded stream.
    Dynamic,
    /// Distributed pipeline (perfect + faulty) vs the sequential one.
    Distsim,
    /// Warm-scratch pipeline vs the cold one-shot path, byte-for-byte.
    Scratch,
    /// Out-of-core streamed pipeline vs the in-memory one, byte-for-byte.
    Stream,
    /// Streamed pipeline under seeded I/O faults: recoverable plans must
    /// retry to byte identity, unrecoverable ones must fail typed.
    ChaosStream,
    /// The backend trait contract: delta-behind-trait byte identity plus
    /// each backend's claimed size bound, local invariants, and claimed
    /// ratio vs exact blossom.
    Backend,
}

impl OracleKind {
    /// Stable name used in reproducer files.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Static => "static",
            OracleKind::Dynamic => "dynamic",
            OracleKind::Distsim => "distsim",
            OracleKind::Scratch => "scratch",
            OracleKind::Stream => "stream",
            OracleKind::ChaosStream => "chaos-stream",
            OracleKind::Backend => "backend",
        }
    }

    /// Parse a reproducer's oracle name.
    pub fn from_name(name: &str) -> Result<OracleKind, String> {
        match name {
            "static" => Ok(OracleKind::Static),
            "dynamic" => Ok(OracleKind::Dynamic),
            "distsim" => Ok(OracleKind::Distsim),
            "scratch" => Ok(OracleKind::Scratch),
            "stream" => Ok(OracleKind::Stream),
            "chaos-stream" => Ok(OracleKind::ChaosStream),
            "backend" => Ok(OracleKind::Backend),
            other => Err(format!("unknown oracle {other:?}")),
        }
    }

    /// Run this oracle on `inst`, returning the first violated invariant.
    /// Builds a fresh pipeline arena per call; sweeps should prefer
    /// [`OracleKind::check_with_scratch`] to reuse one across seeds.
    pub fn check(self, inst: &CheckInstance, cfg: &CheckConfig) -> Option<Violation> {
        self.check_with_scratch(inst, cfg, &mut PipelineScratch::new())
    }

    /// [`OracleKind::check`] running every sequential-pipeline invocation
    /// through a caller-owned [`PipelineScratch`]. Identical verdicts —
    /// warm-vs-cold byte identity is exactly what the scratch oracle
    /// proves — but a seed sweep stops paying per-seed buffer churn.
    pub fn check_with_scratch(
        self,
        inst: &CheckInstance,
        cfg: &CheckConfig,
        scratch: &mut PipelineScratch,
    ) -> Option<Violation> {
        match self {
            OracleKind::Static => check_static(inst, cfg, scratch),
            OracleKind::Dynamic => check_dynamic(inst, cfg),
            OracleKind::Distsim => check_distsim(inst, cfg, scratch),
            OracleKind::Scratch => check_scratch(inst, cfg, scratch),
            OracleKind::Stream => check_stream(inst, cfg, scratch),
            OracleKind::ChaosStream => check_chaos_stream(inst, cfg),
            OracleKind::Backend => check_backend(inst, cfg, scratch),
        }
    }
}

fn ratio_exceeded(exact: usize, approx: usize, bound: f64) -> bool {
    exact as f64 > bound * approx as f64 + FLOAT_FUDGE
}

fn check_static(
    inst: &CheckInstance,
    cfg: &CheckConfig,
    scratch: &mut PipelineScratch,
) -> Option<Violation> {
    let g = inst.graph();
    // β audit: the certificate every Δ sizing rests on, verified by exact
    // branch and bound (cheap at these n).
    if !neighborhood_independence_at_most(&g, inst.beta) {
        return Some(Violation::new(
            "beta-certificate",
            format!(
                "family {} certifies beta <= {} but a larger independent neighborhood set exists",
                inst.family, inst.beta
            ),
        ));
    }
    if g.num_edges() == 0 {
        return None;
    }
    let params = inst.params();
    let bound = inst.ratio_bound(cfg);
    let exact = maximum_matching(&g);

    // Theorem 3.1: the end-to-end pipeline is a valid (1+ε)-approximation.
    let r = match approx_mcm_via_sparsifier_with_scratch(&g, &params, inst.algo_seed, 1, scratch) {
        Ok(r) => r,
        Err(e) => {
            return Some(Violation::new(
                "pipeline-error",
                format!("single-threaded pipeline rejected: {e}"),
            ))
        }
    };
    if !r.matching.is_valid_for(&g) {
        return Some(Violation::new(
            "pipeline-validity",
            "pipeline output is not a valid matching of the input graph".to_string(),
        ));
    }
    if ratio_exceeded(exact.len(), r.matching.len(), bound) {
        return Some(Violation::new(
            "thm3.1-ratio",
            format!(
                "exact MCM {} > {bound:.4} x pipeline matching {} (delta = {})",
                exact.len(),
                r.matching.len(),
                params.delta
            ),
        ));
    }

    // Sparsifier invariants on an independently seeded construction.
    let s = build_sparsifier(&g, &params, &mut StdRng::seed_from_u64(inst.algo_seed));
    for (_, u, v) in s.graph.edges() {
        if !g.has_edge(u, v) {
            return Some(Violation::new(
                "sparsifier-subgraph",
                format!(
                    "sparsifier contains ({}, {}) which is not an input edge",
                    u.0, v.0
                ),
            ));
        }
    }
    if s.stats.edges > params.size_bound(exact.len()) {
        return Some(Violation::new(
            "obs2.10-size",
            format!(
                "sparsifier has {} edges > 2·MCM·(cap+beta) = {}",
                s.stats.edges,
                params.size_bound(exact.len())
            ),
        ));
    }
    if s.stats.edges > params.naive_size_bound(g.num_vertices()) {
        return Some(Violation::new(
            "naive-size",
            format!(
                "sparsifier has {} edges > n·cap = {}",
                s.stats.edges,
                params.naive_size_bound(g.num_vertices())
            ),
        ));
    }
    if s.graph.num_edges() > 0 {
        let (arb_lo, _) = arboricity_bounds(&s.graph);
        if arb_lo > params.arboricity_bound() {
            return Some(Violation::new(
                "obs2.12-arboricity",
                format!(
                    "sparsifier arboricity >= {arb_lo} > 2·cap = {}",
                    params.arboricity_bound()
                ),
            ));
        }
    }
    // Theorem 2.1 proper: the sparsifier alone preserves the MCM.
    let exact_sparse = maximum_matching(&s.graph).len();
    if ratio_exceeded(exact.len(), exact_sparse, bound) {
        return Some(Violation::new(
            "thm2.1-ratio",
            format!(
                "exact MCM {} > {bound:.4} x sparsifier MCM {exact_sparse} (delta = {})",
                exact.len(),
                params.delta
            ),
        ));
    }
    None
}

fn check_dynamic(inst: &CheckInstance, cfg: &CheckConfig) -> Option<Violation> {
    let params = inst.params();
    let bound = inst.ratio_bound(cfg);
    let mut matcher = DynamicMatcher::new(inst.n, params, inst.algo_seed);
    let work_cap = 4 * matcher.work_bound();
    // Reference graph maintained the boring way; `maximum_matching` on its
    // snapshots is the full-recompute oracle.
    let mut reference = AdjListGraph::new(inst.n);
    for (i, &update) in inst.updates.iter().enumerate() {
        match update {
            Update::Insert(u, v) => {
                reference.insert_edge(u, v);
            }
            Update::Delete(u, v) => {
                reference.delete_edge(u, v);
            }
        }
        let report = matcher.apply(update);
        if report.work > work_cap {
            return Some(Violation::new(
                "thm3.5-work",
                format!(
                    "update {i} charged {} work units > 4 x bound {} (O(Delta/eps^3))",
                    report.work,
                    matcher.work_bound()
                ),
            ));
        }
        let last = i + 1 == inst.updates.len();
        if last || (i + 1) % DYNAMIC_AUDIT_PERIOD == 0 {
            let snapshot = reference.to_csr();
            if !matcher.matching().is_valid_for(&snapshot) {
                return Some(Violation::new(
                    "dynamic-validity",
                    format!("served matching invalid after update {i}"),
                ));
            }
            let exact = maximum_matching(&snapshot).len();
            let served = matcher.matching().len();
            if exact as f64 > bound * served as f64 + DYNAMIC_ABS_SLACK + FLOAT_FUDGE {
                return Some(Violation::new(
                    "thm3.5-ratio",
                    format!(
                        "after update {i}: exact MCM {exact} > {bound:.4} x served {served} + {DYNAMIC_ABS_SLACK} (delta = {})",
                        params.delta
                    ),
                ));
            }
        }
    }
    None
}

/// The seeded fault plan the distsim oracle stresses every instance with.
fn stress_plan(inst: &CheckInstance) -> FaultPlan {
    FaultPlan::new(
        inst.algo_seed ^ 0xFA17_5EED,
        FaultRates {
            drop: 0.15,
            duplicate: 0.08,
            reorder: 0.2,
            crash: 0.04,
        },
    )
    .with_crash_period(4)
}

/// Everything a distsim run must keep bit-identical across replays:
/// matching pairs, round/message/bit totals, and per-phase round counts.
type OutcomeFingerprint = (Vec<(u32, u32)>, u64, u64, u64, (u64, u64, u64));

fn outcome_fingerprint(o: &DistributedOutcome) -> OutcomeFingerprint {
    (
        matching_pairs(&o.matching),
        o.metrics.rounds,
        o.metrics.messages,
        o.metrics.bits,
        o.phase_rounds,
    )
}

fn matching_pairs(m: &Matching) -> Vec<(u32, u32)> {
    m.pairs()
        .map(|(u, v): (VertexId, VertexId)| (u.0, v.0))
        .collect()
}

fn check_distsim(
    inst: &CheckInstance,
    cfg: &CheckConfig,
    scratch: &mut PipelineScratch,
) -> Option<Violation> {
    let g: CsrGraph = inst.graph();
    if g.num_edges() == 0 {
        return None;
    }
    let params = inst.params();
    let bound = inst.ratio_bound(cfg);
    let exact = maximum_matching(&g).len();

    // Sequential pipeline on the same seed — the comparison baseline.
    let seq = match approx_mcm_via_sparsifier_with_scratch(&g, &params, inst.algo_seed, 1, scratch)
    {
        Ok(r) => r.matching.clone(),
        Err(e) => {
            return Some(Violation::new(
                "pipeline-error",
                format!("single-threaded pipeline rejected: {e}"),
            ))
        }
    };

    let perfect = distributed_approx_mcm(&g, &params, inst.algo_seed);
    if !perfect.matching.is_valid_for(&g) {
        return Some(Violation::new(
            "distsim-validity",
            "perfect-network distributed matching invalid for the input".to_string(),
        ));
    }

    // Zero-fault transparency: a FaultyNetwork with the empty plan must be
    // indistinguishable from the perfect network, metrics included.
    let zero = distributed_approx_mcm_faulty(
        &g,
        &params,
        inst.algo_seed,
        &FaultPlan::none(),
        ResilienceParams::off(),
    );
    if outcome_fingerprint(&zero) != outcome_fingerprint(&perfect)
        || zero.faults != Default::default()
    {
        return Some(Violation::new(
            "zero-fault-transparency",
            format!(
                "zero-fault run diverged from the perfect network: {} vs {} matched, {}/{} rounds",
                zero.matching.len(),
                perfect.matching.len(),
                zero.metrics.rounds,
                perfect.metrics.rounds
            ),
        ));
    }

    // A genuinely faulty network may lose matching size but never validity.
    let faulty = distributed_approx_mcm_faulty(
        &g,
        &params,
        inst.algo_seed,
        &stress_plan(inst),
        ResilienceParams::retry(1),
    );
    if !faulty.matching.is_valid_for(&g) {
        return Some(Violation::new(
            "faulty-validity",
            "distributed matching under faults is invalid for the input".to_string(),
        ));
    }

    // Sharded engine: at every worker count the sharded run must be
    // byte-identical to the sequential transport — perfect and faulty
    // (stress plan + retry) alike, fault counters included.
    let plan = stress_plan(inst);
    for threads in [2usize, 4] {
        let sharded = distributed_approx_mcm_sharded(&g, &params, inst.algo_seed, None, threads);
        if outcome_fingerprint(&sharded) != outcome_fingerprint(&perfect) {
            return Some(Violation::new(
                "sharded-identity",
                format!(
                    "t={threads} sharded run diverged from the perfect network: \
                     {} vs {} matched, {}/{} rounds",
                    sharded.matching.len(),
                    perfect.matching.len(),
                    sharded.metrics.rounds,
                    perfect.metrics.rounds
                ),
            ));
        }
        let sharded_faulty = distributed_approx_mcm_sharded(
            &g,
            &params,
            inst.algo_seed,
            Some((&plan, ResilienceParams::retry(1))),
            threads,
        );
        if outcome_fingerprint(&sharded_faulty) != outcome_fingerprint(&faulty)
            || sharded_faulty.faults != faulty.faults
        {
            return Some(Violation::new(
                "sharded-faulty-identity",
                format!(
                    "t={threads} sharded faulty run diverged from FaultyNetwork: \
                     {} vs {} matched, {}/{} rounds, faults {} vs {}",
                    sharded_faulty.matching.len(),
                    faulty.matching.len(),
                    sharded_faulty.metrics.rounds,
                    faulty.metrics.rounds,
                    sharded_faulty.faults,
                    faulty.faults
                ),
            ));
        }
    }

    // Theorem 3.2/3.3 ratio, and agreement with the sequential pipeline.
    let slack = DISTSIM_ABS_SLACK + FLOAT_FUDGE;
    if exact as f64 > bound * perfect.matching.len() as f64 + slack {
        return Some(Violation::new(
            "thm3.2-ratio",
            format!(
                "exact MCM {exact} > {bound:.4} x distributed matching {} + {DISTSIM_ABS_SLACK}",
                perfect.matching.len()
            ),
        ));
    }
    if exact as f64 > bound * seq.len() as f64 + slack {
        return Some(Violation::new(
            "thm3.1-ratio",
            format!(
                "exact MCM {exact} > {bound:.4} x sequential pipeline {} + {DISTSIM_ABS_SLACK}",
                seq.len()
            ),
        ));
    }
    let (lo, hi) = if seq.len() <= perfect.matching.len() {
        (seq.len(), perfect.matching.len())
    } else {
        (perfect.matching.len(), seq.len())
    };
    if hi as f64 > bound * lo as f64 + slack {
        return Some(Violation::new(
            "seq-dist-agreement",
            format!(
                "sequential ({}) and distributed ({}) matchings diverge beyond {bound:.4}x + {DISTSIM_ABS_SLACK}",
                seq.len(),
                perfect.matching.len()
            ),
        ));
    }
    None
}

/// Fingerprint of everything a pipeline run reports: matching pairs plus
/// every scalar in the sparsifier, probe, and augmentation stats. Two runs
/// with equal fingerprints are byte-for-byte the same result.
type PipelineFingerprint = (
    Vec<(u32, u32)>,
    (usize, usize, usize, usize, usize),
    (u64, u64),
    (usize, usize, u64),
);

fn pipeline_fingerprint(r: &sparsimatch_core::pipeline::PipelineResult) -> PipelineFingerprint {
    (
        matching_pairs(&r.matching),
        (
            r.sparsifier.delta,
            r.sparsifier.mark_cap,
            r.sparsifier.low_degree_vertices,
            r.sparsifier.marks_placed,
            r.sparsifier.edges,
        ),
        (r.probes.degree_probes, r.probes.neighbor_probes),
        (r.aug.augmentations, r.aug.searches, r.aug.edge_visits),
    )
}

/// Thread counts the scratch oracle replays every instance at.
const SCRATCH_THREADS: [usize; 3] = [1, 2, 4];

fn check_scratch(
    inst: &CheckInstance,
    cfg: &CheckConfig,
    scratch: &mut PipelineScratch,
) -> Option<Violation> {
    let _ = cfg; // the identity invariant has no tunable bound
    let g: CsrGraph = inst.graph();
    let params = inst.params();
    for threads in SCRATCH_THREADS {
        let cold = match approx_mcm_via_sparsifier(&g, &params, inst.algo_seed, threads) {
            Ok(r) => pipeline_fingerprint(&r),
            Err(e) => {
                return Some(Violation::new(
                    "pipeline-error",
                    format!("cold pipeline rejected {threads} threads: {e}"),
                ))
            }
        };
        // Two warm runs through the (already dirty) shared arena: the
        // first may still grow buffers, the second is pure steady state.
        for pass in ["warm", "steady"] {
            let warm = match approx_mcm_via_sparsifier_with_scratch(
                &g,
                &params,
                inst.algo_seed,
                threads,
                scratch,
            ) {
                Ok(r) => pipeline_fingerprint(r),
                Err(e) => {
                    return Some(Violation::new(
                        "pipeline-error",
                        format!("scratch pipeline rejected {threads} threads: {e}"),
                    ))
                }
            };
            if warm != cold {
                return Some(Violation::new(
                    "scratch-identity",
                    format!(
                        "{pass} scratch run diverged from the cold pipeline at {threads} \
                         threads: {} vs {} matched pairs (family {}, n = {})",
                        warm.0.len(),
                        cold.0.len(),
                        inst.family,
                        inst.n
                    ),
                ));
            }
        }
    }
    None
}

fn check_stream(
    inst: &CheckInstance,
    cfg: &CheckConfig,
    scratch: &mut PipelineScratch,
) -> Option<Violation> {
    let _ = cfg; // byte identity has no tunable bound
    let mut g: CsrGraph = inst.graph();
    let params = inst.params();
    // In-memory reference through the shared warm arena — the scratch
    // oracle already certifies this equals the cold path.
    let reference =
        match approx_mcm_via_sparsifier_with_scratch(&g, &params, inst.algo_seed, 1, scratch) {
            Ok(r) => pipeline_fingerprint(r),
            Err(e) => {
                return Some(Violation::new(
                    "pipeline-error",
                    format!("in-memory pipeline rejected: {e}"),
                ))
            }
        };
    let (n, m) = (g.num_vertices(), g.num_edges());
    let (streamed, report) = match approx_mcm_streamed(&mut g, &params, inst.algo_seed) {
        Ok(r) => r,
        Err(e) => {
            return Some(Violation::new(
                "stream-error",
                format!("streamed pipeline rejected its own CSR stream: {e}"),
            ))
        }
    };
    if pipeline_fingerprint(&streamed) != reference {
        return Some(Violation::new(
            "stream-identity",
            format!(
                "streamed pipeline diverged from the in-memory one: {} vs {} matched pairs \
                 (family {}, n = {})",
                streamed.matching.len(),
                reference.0.len(),
                inst.family,
                inst.n
            ),
        ));
    }
    // The report's own invariants: the sparsifier fits inside the peak,
    // and the stream side did exactly two passes.
    if report.sparsifier_bytes > report.peak_resident_bytes {
        return Some(Violation::new(
            "stream-accounting",
            format!(
                "sparsifier {} B exceeds the reported resident peak {} B",
                report.sparsifier_bytes, report.peak_resident_bytes
            ),
        ));
    }
    if report.edges_scanned != 4 * m as u64 || report.probes.degree_probes != 2 * n as u64 {
        return Some(Violation::new(
            "stream-accounting",
            format!(
                "stream-side work off contract: {} half-edge visits (want {}), {} degree \
                 probes (want {})",
                report.edges_scanned,
                4 * m,
                report.probes.degree_probes,
                2 * n
            ),
        ));
    }
    None
}

/// Scan attempts the chaos plan may fault before going clean; the retry
/// budget of `horizon + 1` attempts per pass then guarantees recovery
/// (attempts are burned globally and monotonically across both passes).
const CHAOS_HORIZON: u64 = 3;

/// The seeded I/O fault plan the chaos oracle stresses every instance
/// with — the streaming twin of the distsim oracle's `stress_plan`.
fn io_stress_plan(inst: &CheckInstance) -> IoFaultPlan {
    IoFaultPlan::new(
        inst.algo_seed ^ 0x10FA_175E,
        IoFaultRates {
            eio: 0.5,
            short_read: 0.4,
            torn_line: 0.4,
            header_mutation: 0.3,
        },
    )
    .with_horizon(CHAOS_HORIZON)
}

fn check_chaos_stream(inst: &CheckInstance, cfg: &CheckConfig) -> Option<Violation> {
    let _ = cfg; // byte identity has no tunable bound
    let params = inst.params();
    // Fault-free streamed baseline, from the instance's own CSR.
    let mut clean_src = inst.graph();
    let (clean, clean_report) = match approx_mcm_streamed(&mut clean_src, &params, inst.algo_seed) {
        Ok(r) => r,
        Err(e) => {
            return Some(Violation::new(
                "stream-error",
                format!("fault-free streamed pipeline rejected its own CSR stream: {e}"),
            ))
        }
    };

    // Recoverable chaos: a seeded plan bounded by CHAOS_HORIZON plus a
    // retry budget that covers it must converge to the identical result.
    let mut faulty = FaultyEdgeSource::new(inst.graph(), io_stress_plan(inst));
    let policy = RetryPolicy::attempts(CHAOS_HORIZON as u32 + 1);
    let (recovered, report) =
        match approx_mcm_streamed_with_retry(&mut faulty, &params, inst.algo_seed, &policy) {
            Ok(r) => r,
            Err(e) => {
                return Some(Violation::new(
                    "chaos-recovery",
                    format!("recoverable fault plan exhausted the retry budget: {e}"),
                ))
            }
        };
    if pipeline_fingerprint(&recovered) != pipeline_fingerprint(&clean) {
        return Some(Violation::new(
            "chaos-identity",
            format!(
                "retried streamed pipeline diverged from the fault-free run: {} vs {} matched \
                 pairs (family {}, n = {})",
                recovered.matching.len(),
                clean.matching.len(),
                inst.family,
                inst.n
            ),
        ));
    }
    // Every injected fault is one aborted rescan, and aborted scans only
    // ever add half-edge visits on top of the clean 4m.
    if report.io_retries != faulty.stats().total() {
        return Some(Violation::new(
            "chaos-accounting",
            format!(
                "io_retries {} != injected faults {}",
                report.io_retries,
                faulty.stats().total()
            ),
        ));
    }
    if report.edges_scanned < clean_report.edges_scanned {
        return Some(Violation::new(
            "chaos-accounting",
            format!(
                "retried run reports {} half-edge visits < fault-free {}",
                report.edges_scanned, clean_report.edges_scanned
            ),
        ));
    }

    // Unrecoverable chaos: every scan attempt faults, so the budget must
    // run out with a typed error — the failure mode is a report, not a
    // panic and not a quietly corrupted sparsifier.
    let hard = IoFaultPlan::new(
        inst.algo_seed ^ 0x00DE_AD10,
        IoFaultRates {
            eio: 1.0,
            ..IoFaultRates::default()
        },
    );
    let mut doomed = FaultyEdgeSource::new(inst.graph(), hard);
    match approx_mcm_streamed_with_retry(&mut doomed, &params, inst.algo_seed, &policy) {
        Err(StreamBuildError::RetriesExhausted { pass: 1, .. }) => None,
        Err(e) => Some(Violation::new(
            "chaos-typed-failure",
            format!("unrecoverable plan failed in the wrong place: {e}"),
        )),
        Ok(_) => Some(Violation::new(
            "chaos-typed-failure",
            "unrecoverable fault plan produced a result instead of a typed error".to_string(),
        )),
    }
}

/// The seed-derived EDCS parameters the backend oracle stresses: β swept
/// over `4..=32` and `λ = 2/β`, so `λβ = 2` keeps every draw inside
/// [`EdcsParams::new`]'s validity window while `β⁻ = β − 2` varies the
/// saturation floor across the sweep.
fn edcs_oracle_params(inst: &CheckInstance) -> EdcsParams {
    let beta = 4 + (inst.algo_seed % 29) as usize;
    EdcsParams::new(beta, 2.0 / beta as f64).expect("lambda * beta = 2 is always valid")
}

/// Does the config select this backend's sub-checks? `None` certifies
/// every backend; a filter runs only its own.
fn backend_selected(cfg: &CheckConfig, kind: BackendKind) -> bool {
    cfg.backend.is_none() || cfg.backend == Some(kind)
}

fn check_backend(
    inst: &CheckInstance,
    cfg: &CheckConfig,
    scratch: &mut PipelineScratch,
) -> Option<Violation> {
    let g: CsrGraph = inst.graph();
    let n = g.num_vertices();
    let exact = maximum_matching(&g).len();

    // Sub-check order is fixed — delta first, then EDCS — in both the
    // full rotation and filtered (`--backend`) modes, so a violation
    // found in a filtered sweep replays identically without the filter.
    if backend_selected(cfg, BackendKind::Delta) {
        let backend = DeltaBackend {
            params: inst.params(),
        };
        // The tentpole pin: the trait is a zero-behavior-change seam.
        for threads in SCRATCH_THREADS {
            let direct =
                match approx_mcm_via_sparsifier(&g, &backend.params, inst.algo_seed, threads) {
                    Ok(r) => pipeline_fingerprint(&r),
                    Err(e) => {
                        return Some(Violation::new(
                            "pipeline-error",
                            format!("direct pipeline rejected {threads} threads: {e}"),
                        ))
                    }
                };
            let traited = match backend.solve(&g, inst.algo_seed, threads, scratch) {
                Ok(r) => pipeline_fingerprint(r),
                Err(e) => {
                    return Some(Violation::new(
                        "pipeline-error",
                        format!("delta backend rejected {threads} threads: {e}"),
                    ))
                }
            };
            if traited != direct {
                return Some(Violation::new(
                    "backend-delta-fingerprint",
                    format!(
                        "delta backend diverged from the direct pipeline at {threads} threads: \
                         {} vs {} matched pairs (family {}, n = {n})",
                        traited.0.len(),
                        direct.0.len(),
                        inst.family
                    ),
                ));
            }
        }
        if let Some(v) = certify_claims(&backend, &g, inst, exact) {
            return Some(v);
        }
    }

    if backend_selected(cfg, BackendKind::Edcs) {
        let backend = EdcsBackend {
            params: edcs_oracle_params(inst),
            eps: inst.eps,
        };
        // Local invariants of the built subgraph: H ⊆ G, Property A,
        // Property B — checked directly, not trusted from stats.
        let (h, _) = build_edcs(&g, &backend.params);
        if let Some(msg) = edcs_violation(&g, &h, &backend.params) {
            return Some(Violation::new(
                "edcs-invariant",
                format!(
                    "{msg} (family {}, n = {n}, {})",
                    inst.family,
                    backend.params_summary()
                ),
            ));
        }
        // The out-of-core build must be the identical fixpoint.
        let mut src = g.clone();
        match build_edcs_streamed(&mut src, &backend.params) {
            Ok((h_streamed, ..)) => {
                let mem: Vec<(u32, u32)> = h.edges().map(|(_, u, v)| (u.0, v.0)).collect();
                let str_edges: Vec<(u32, u32)> =
                    h_streamed.edges().map(|(_, u, v)| (u.0, v.0)).collect();
                if mem != str_edges {
                    return Some(Violation::new(
                        "edcs-stream-identity",
                        format!(
                            "streamed EDCS build diverged from in-memory: {} vs {} edges \
                             (family {}, n = {n})",
                            str_edges.len(),
                            mem.len(),
                            inst.family
                        ),
                    ));
                }
            }
            Err(e) => {
                return Some(Violation::new(
                    "stream-error",
                    format!("streamed EDCS build rejected its own CSR stream: {e}"),
                ))
            }
        }
        if let Some(v) = certify_claims(&backend, &g, inst, exact) {
            return Some(v);
        }
    }
    None
}

/// The backend-generic half of the oracle: whatever a backend *claims*
/// (size bound, approximation ratio), certify against ground truth. A
/// backend overstating its own theory is a shrinkable counterexample.
fn certify_claims(
    backend: &dyn MatchingSparsifier,
    g: &CsrGraph,
    inst: &CheckInstance,
    exact: usize,
) -> Option<Violation> {
    let n = g.num_vertices();
    let h = backend.build(g, inst.algo_seed);
    if h.num_edges() > backend.claimed_size_bound(n) {
        return Some(Violation::new(
            "backend-size",
            format!(
                "{} backend built {} edges > its claimed bound {} (family {}, n = {n}, {})",
                backend.name(),
                h.num_edges(),
                backend.claimed_size_bound(n),
                inst.family,
                backend.params_summary()
            ),
        ));
    }
    let mut fresh = PipelineScratch::new();
    let r = match backend.solve(g, inst.algo_seed, 1, &mut fresh) {
        Ok(r) => r,
        Err(e) => {
            return Some(Violation::new(
                "pipeline-error",
                format!("{} backend rejected 1 thread: {e}", backend.name()),
            ))
        }
    };
    if !r.matching.is_valid_for(g) {
        return Some(Violation::new(
            "backend-validity",
            format!(
                "{} backend output is not a valid matching of the input graph",
                backend.name()
            ),
        ));
    }
    let ratio = backend.claimed_ratio();
    if exact as f64 > ratio * r.matching.len() as f64 + BACKEND_ABS_SLACK + FLOAT_FUDGE {
        return Some(Violation::new(
            "backend-ratio",
            format!(
                "exact MCM {exact} > claimed {ratio:.4} x {} backend matching {} + \
                 {BACKEND_ABS_SLACK} (family {}, n = {n}, {})",
                backend.name(),
                r.matching.len(),
                inst.family,
                backend.params_summary()
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Scenario;

    #[test]
    fn default_params_pass_a_seed_sample() {
        let cfg = CheckConfig::default();
        for seed in 0..9 {
            let s = Scenario::generate(seed, &cfg);
            assert_eq!(
                s.oracle.check(&s.instance, &cfg),
                None,
                "seed {seed} ({})",
                s.instance.family
            );
        }
    }

    #[test]
    fn checks_are_deterministic() {
        let cfg = CheckConfig {
            bound_eps: Some(0.05),
            delta: Some(1),
            backend: None,
            oracle: None,
        };
        for seed in 0..6 {
            let s = Scenario::generate(seed, &cfg);
            let a = s.oracle.check(&s.instance, &cfg);
            let b = s.oracle.check(&s.instance, &cfg);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn oracle_names_roundtrip() {
        for kind in [
            OracleKind::Static,
            OracleKind::Dynamic,
            OracleKind::Distsim,
            OracleKind::Scratch,
            OracleKind::Stream,
            OracleKind::ChaosStream,
            OracleKind::Backend,
        ] {
            assert_eq!(OracleKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(OracleKind::from_name("quantum").is_err());
    }

    #[test]
    fn backend_oracle_passes_default_params_and_filters_agree() {
        // The full backend oracle passes on a seed sample, and a
        // violation-free verdict is unchanged by per-backend filters
        // (delta sub-checks run before EDCS sub-checks in both modes).
        let full = CheckConfig::default();
        let mut scratch = PipelineScratch::new();
        for seed in [6u64, 13, 20, 27] {
            let s = Scenario::generate(seed, &full);
            assert_eq!(s.oracle, OracleKind::Backend, "seed {seed}");
            assert_eq!(
                s.oracle
                    .check_with_scratch(&s.instance, &full, &mut scratch),
                None,
                "seed {seed} ({})",
                s.instance.family
            );
            for kind in sparsimatch_core::backend::BackendKind::ALL {
                let filtered = CheckConfig {
                    backend: Some(kind),
                    ..full
                };
                assert_eq!(
                    OracleKind::Backend.check_with_scratch(&s.instance, &filtered, &mut scratch),
                    None,
                    "seed {seed} filtered to {kind}"
                );
            }
        }
    }

    #[test]
    fn shared_scratch_sweep_matches_fresh_checks() {
        // A sweep through one shared arena must reach the same verdicts
        // as fresh-arena checks seed by seed (the replay/shrink path uses
        // the latter, so they must agree for reproducers to be sound).
        let cfg = CheckConfig::default();
        let mut scratch = PipelineScratch::new();
        for seed in 0..8 {
            let s = Scenario::generate(seed, &cfg);
            let fresh = s.oracle.check(&s.instance, &cfg);
            let shared = s.oracle.check_with_scratch(&s.instance, &cfg, &mut scratch);
            assert_eq!(fresh, shared, "seed {seed} ({})", s.instance.family);
        }
    }
}
