//! Automatic counterexample shrinking (ddmin-style).
//!
//! Given a violating instance and a predicate "does the oracle still
//! reject this?", repeatedly drop chunks of edges and updates — halving
//! the chunk size on every pass, delta-debugging style — and finally trim
//! trailing unreferenced vertices, keeping any candidate that still
//! violates. The result is a (locally) minimal instance: removing any
//! single remaining edge or update makes the violation disappear, which
//! is what makes reproducer files readable.
//!
//! The shrinker is generic over the predicate so its own contract —
//! *whatever it returns still violates* — is property-testable against a
//! stub oracle (see `tests/shrink_property.rs`).

use crate::instance::CheckInstance;

/// Default cap on predicate evaluations during one shrink.
pub const DEFAULT_CALL_BUDGET: usize = 2000;

/// What the shrinker did, recorded into the reproducer file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle (predicate) evaluations spent.
    pub oracle_calls: u64,
    /// Edge count before shrinking.
    pub edges_before: u64,
    /// Edge count after shrinking.
    pub edges_after: u64,
    /// Update count before shrinking.
    pub updates_before: u64,
    /// Update count after shrinking.
    pub updates_after: u64,
}

/// Shrink `inst` — which must already violate, i.e.
/// `still_violating(inst)` is `true` — while preserving the violation.
/// Returns the smaller instance and the work done. Deterministic: same
/// instance + same predicate behavior, same result.
pub fn shrink_instance(
    inst: &CheckInstance,
    mut still_violating: impl FnMut(&CheckInstance) -> bool,
    call_budget: usize,
) -> (CheckInstance, ShrinkStats) {
    let mut stats = ShrinkStats {
        edges_before: inst.edges.len() as u64,
        updates_before: inst.updates.len() as u64,
        ..ShrinkStats::default()
    };
    let mut calls = 0usize;
    let mut current = inst.clone();

    // Alternate edge and update passes to a fixpoint: removing updates
    // can unlock edge removals and vice versa (not for today's oracles,
    // which use one list each, but the loop is cheap once stable).
    loop {
        let mut progressed = false;
        let (edges, p) = ddmin(
            current.edges.clone(),
            |edges| CheckInstance {
                edges,
                ..current.clone()
            },
            &mut still_violating,
            &mut calls,
            call_budget,
        );
        current.edges = edges;
        progressed |= p;
        let (updates, p) = ddmin(
            current.updates.clone(),
            |updates| CheckInstance {
                updates,
                ..current.clone()
            },
            &mut still_violating,
            &mut calls,
            call_budget,
        );
        current.updates = updates;
        progressed |= p;
        if !progressed || calls >= call_budget {
            break;
        }
    }

    // Trim trailing vertices no surviving edge or update references.
    if let Some(n) = referenced_vertex_bound(&current) {
        if n < current.n && calls < call_budget {
            let candidate = CheckInstance {
                n,
                ..current.clone()
            };
            calls += 1;
            if still_violating(&candidate) {
                current = candidate;
            }
        }
    }

    stats.oracle_calls = calls as u64;
    stats.edges_after = current.edges.len() as u64;
    stats.updates_after = current.updates.len() as u64;
    (current, stats)
}

/// Smallest vertex count covering every referenced id, or `None` when
/// nothing is referenced (an empty instance is not worth re-testing: no
/// oracle rejects an edgeless, update-less graph).
fn referenced_vertex_bound(inst: &CheckInstance) -> Option<usize> {
    use sparsimatch_dynamic::adversary::Update;
    let mut max_id: Option<u32> = None;
    for &(u, v) in &inst.edges {
        max_id = Some(max_id.unwrap_or(0).max(u).max(v));
    }
    for u in &inst.updates {
        let (a, b) = match *u {
            Update::Insert(a, b) | Update::Delete(a, b) => (a.0, b.0),
        };
        max_id = Some(max_id.unwrap_or(0).max(a).max(b));
    }
    max_id.map(|m| m as usize + 1)
}

/// One ddmin sweep over a single list-valued field. `rebuild` produces a
/// candidate instance with the reduced list spliced in; returns the
/// minimized list and whether anything was removed.
fn ddmin<T: Clone>(
    mut items: Vec<T>,
    mut rebuild: impl FnMut(Vec<T>) -> CheckInstance,
    still_violating: &mut impl FnMut(&CheckInstance) -> bool,
    calls: &mut usize,
    call_budget: usize,
) -> (Vec<T>, bool) {
    let mut progressed = false;
    if items.is_empty() {
        return (items, progressed);
    }
    let mut chunk = items.len().div_ceil(2);
    loop {
        let mut removed_at_this_granularity = false;
        let mut i = 0;
        while i < items.len() {
            if *calls >= call_budget {
                return (items, progressed);
            }
            let end = (i + chunk).min(items.len());
            let mut candidate = Vec::with_capacity(items.len() - (end - i));
            candidate.extend_from_slice(&items[..i]);
            candidate.extend_from_slice(&items[end..]);
            *calls += 1;
            if still_violating(&rebuild(candidate.clone())) {
                items = candidate;
                removed_at_this_granularity = true;
                progressed = true;
                // Keep `i`: the next chunk has shifted into this position.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_at_this_granularity {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    (items, progressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance_with_edges(n: usize, edges: Vec<(u32, u32)>) -> CheckInstance {
        CheckInstance {
            family: "stub".to_string(),
            n,
            beta: 1,
            eps: 0.5,
            delta: None,
            algo_seed: 0,
            edges,
            updates: Vec::new(),
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_edge() {
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, i + 20)).collect();
        let inst = instance_with_edges(40, edges);
        // The "bug" is triggered by one specific edge.
        let guilty = (7u32, 27u32);
        let pred = |c: &CheckInstance| c.edges.contains(&guilty);
        assert!(pred(&inst));
        let (small, stats) = shrink_instance(&inst, pred, DEFAULT_CALL_BUDGET);
        assert_eq!(small.edges, vec![guilty]);
        assert_eq!(stats.edges_before, 20);
        assert_eq!(stats.edges_after, 1);
        assert!(stats.oracle_calls > 0);
        // Vertex trim: ids above 27 are gone.
        assert_eq!(small.n, 28);
    }

    #[test]
    fn respects_the_call_budget() {
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, i + 64)).collect();
        let inst = instance_with_edges(128, edges.clone());
        let mut seen = 0usize;
        let (out, stats) = shrink_instance(
            &inst,
            |c| {
                seen += 1;
                c.edges.contains(&(0, 64))
            },
            5,
        );
        assert!(stats.oracle_calls <= 6, "{}", stats.oracle_calls);
        assert_eq!(seen as u64, stats.oracle_calls);
        assert!(out.edges.contains(&(0, 64)), "must still violate");
    }

    #[test]
    fn conjunction_of_two_edges_survives() {
        let edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, i + 16)).collect();
        let inst = instance_with_edges(32, edges);
        let pred = |c: &CheckInstance| c.edges.contains(&(2, 18)) && c.edges.contains(&(13, 29));
        let (small, _) = shrink_instance(&inst, pred, DEFAULT_CALL_BUDGET);
        assert_eq!(small.edges.len(), 2);
        assert!(pred(&small));
    }
}
