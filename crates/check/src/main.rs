//! `sparsimatch-check`: sweep a seed budget through the differential
//! oracles; shrink and persist any violation as a replayable reproducer.

use sparsimatch_check::shrink::DEFAULT_CALL_BUDGET;
use sparsimatch_check::{counterexample_doc, report, shrink_instance, CheckConfig, Scenario};
use sparsimatch_core::scratch::PipelineScratch;

const USAGE: &str = "\
sparsimatch-check — differential fuzzing of the sparsimatch oracles

USAGE:
  sparsimatch-check [--seeds <N>] [--start-seed <S>] [--out-dir <DIR>]
                    [--bound-eps <E>] [--delta <D>] [--backend <B>]
                    [--oracle <O>] [--max-counterexamples <K>]

Runs N seeded trials (default 1000) rotating through the static,
dynamic, distsim, scratch, stream, chaos-stream, and backend oracles.
Every trial is deterministic in its seed,
so a failure is reproducible by seed alone; on top of that each failure
is shrunk (ddmin over edges/updates) and written to
<out-dir>/counterexample-<seed>.json (default results/check/), a file
`sparsimatch check --replay` re-executes byte-identically.

--bound-eps tightens the ratio bound below each instance's own epsilon
and --delta forces an explicit per-vertex mark count; both exist to
demonstrate the find -> shrink -> reproduce loop on bounds the theory
does not promise. At default parameters a sweep is expected to be clean.
--backend <delta|edcs> focuses every seed on the backend oracle,
restricted to that backend's claim checks (the CI oracle slice).
--oracle <static|dynamic|distsim|scratch|stream|chaos-stream|backend>
pins every seed to one oracle instead of the rotation — e.g. the CI
distsim slice runs `--oracle distsim`, whose checks include sharded
(multi-thread) vs sequential byte identity. --backend wins over
--oracle when both are given.

Exit codes: 0 clean sweep, 1 violations found, 2 usage error.";

struct Args {
    seeds: u64,
    start_seed: u64,
    out_dir: std::path::PathBuf,
    cfg: CheckConfig,
    max_counterexamples: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seeds: 1000,
        start_seed: 0,
        out_dir: std::path::PathBuf::from("results/check"),
        cfg: CheckConfig::default(),
        max_counterexamples: 8,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag}: {e}");
        match flag {
            "--seeds" => args.seeds = value.parse().map_err(|e| bad(&e))?,
            "--start-seed" => args.start_seed = value.parse().map_err(|e| bad(&e))?,
            "--out-dir" => args.out_dir = std::path::PathBuf::from(value),
            "--bound-eps" => {
                let eps: f64 = value.parse().map_err(|e| bad(&e))?;
                if !(eps.is_finite() && eps > 0.0) {
                    return Err(format!(
                        "--bound-eps must be finite and positive, got {eps}"
                    ));
                }
                args.cfg.bound_eps = Some(eps);
            }
            "--delta" => {
                let delta: usize = value.parse().map_err(|e| bad(&e))?;
                if delta == 0 {
                    return Err("--delta must be at least 1".to_string());
                }
                args.cfg.delta = Some(delta);
            }
            "--backend" => {
                args.cfg.backend = Some(
                    sparsimatch_core::backend::BackendKind::parse(value)
                        .ok_or_else(|| format!("--backend must be delta or edcs, got {value}"))?,
                );
            }
            "--oracle" => {
                args.cfg.oracle =
                    Some(sparsimatch_check::OracleKind::from_name(value).map_err(|e| bad(&e))?);
            }
            "--max-counterexamples" => {
                args.max_counterexamples = value.parse().map_err(|e| bad(&e))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let mut trials_by_oracle = [0u64; 7];
    let mut violations = 0usize;
    // One pipeline arena for the whole sweep: every oracle's sequential
    // pipeline runs reuse it (the scratch oracle proves reuse is exact,
    // so sharing cannot change a verdict). Shrinking below deliberately
    // uses fresh-arena checks so reproducer replays stay self-contained.
    let mut scratch = PipelineScratch::new();
    for seed in args.start_seed..args.start_seed + args.seeds {
        let scenario = Scenario::generate(seed, &args.cfg);
        trials_by_oracle[scenario.oracle as usize] += 1;
        let Some(violation) =
            scenario
                .oracle
                .check_with_scratch(&scenario.instance, &args.cfg, &mut scratch)
        else {
            continue;
        };
        violations += 1;
        eprintln!(
            "seed {seed} [{}] VIOLATION {}: {}",
            scenario.oracle.name(),
            violation.check,
            violation.message
        );

        // Shrink while the oracle still rejects *for the same check*:
        // without pinning the slug, removing edges from a dense family can
        // wander into a stale-β-certificate artifact instead of a smaller
        // witness of the original violation.
        let cfg = args.cfg;
        let oracle = scenario.oracle;
        let slug = violation.check.clone();
        let (small, stats) = shrink_instance(
            &scenario.instance,
            |candidate| {
                oracle
                    .check(candidate, &cfg)
                    .is_some_and(|v| v.check == slug)
            },
            DEFAULT_CALL_BUDGET,
        );
        let final_violation = oracle
            .check(&small, &cfg)
            .expect("shrinker must preserve the violation");
        let doc = counterexample_doc(seed, oracle, &small, &cfg, &final_violation, &stats);
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("error: cannot create {}: {e}", args.out_dir.display());
            std::process::exit(1);
        }
        let path = args.out_dir.join(report::counterexample_filename(seed));
        if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "  shrunk {} -> {} edges, {} -> {} updates ({} oracle calls); reproducer: {}",
            stats.edges_before,
            stats.edges_after,
            stats.updates_before,
            stats.updates_after,
            stats.oracle_calls,
            path.display()
        );
        if violations >= args.max_counterexamples {
            eprintln!("stopping after {violations} counterexamples (--max-counterexamples)");
            break;
        }
    }

    println!(
        "checked {} seeds (static {}, dynamic {}, distsim {}, scratch {}, stream {}, \
         chaos-stream {}, backend {}): {}",
        trials_by_oracle.iter().sum::<u64>(),
        trials_by_oracle[0],
        trials_by_oracle[1],
        trials_by_oracle[2],
        trials_by_oracle[3],
        trials_by_oracle[4],
        trials_by_oracle[5],
        trials_by_oracle[6],
        if violations == 0 {
            "all oracles green".to_string()
        } else {
            format!(
                "{violations} VIOLATION(S) — reproducers in {}",
                args.out_dir.display()
            )
        }
    );
    std::process::exit(i32::from(violations > 0));
}
