//! Serializable test instances and the seeded generator.
//!
//! A [`CheckInstance`] is everything an oracle needs to run: the graph
//! (as an explicit edge list), its certified β bound, the sparsifier
//! parameters, the algorithm seed, and — for the dynamic oracle — the
//! recorded update stream. Instances serialize to the byte-stable
//! [`Json`] dialect so a failure can be written to disk and replayed
//! later, byte for byte.

use crate::oracles::OracleKind;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use sparsimatch_core::backend::BackendKind;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_dynamic::adversary::{Adversary, Policy, StreamAdversary, Update};
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::analysis::independence::neighborhood_independence_exact;
use sparsimatch_graph::csr::{from_edges, CsrGraph};
use sparsimatch_graph::generators::{cycle, gnp, path};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_graph::workloads;
use sparsimatch_obs::Json;

/// Harness-wide knobs, settable from the command line. The defaults
/// encode the theory's own bounds; overriding them (tightening
/// `bound_eps` below ε, or forcing a Δ below the proof constant) is how
/// the find → shrink → reproduce loop is demonstrated on purpose.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CheckConfig {
    /// Override the ratio bound the oracles enforce (default: each
    /// instance's own ε, i.e. exactly the theorem statement).
    pub bound_eps: Option<f64>,
    /// Force an explicit Δ on every generated instance instead of the
    /// `SparsifierParams::practical` sizing (used to demonstrate failures
    /// when Δ is below theory).
    pub delta: Option<usize>,
    /// Focus the sweep on one sparsifier backend: every seed runs the
    /// `backend` oracle, restricted to the named backend's sub-checks
    /// (the CI oracle slice for `--backend edcs`). `None` keeps the
    /// normal rotation, whose `backend` slot certifies both.
    pub backend: Option<BackendKind>,
    /// Pin every seed to one oracle instead of the seed rotation (the CI
    /// oracle slice for `--oracle distsim`). A [`CheckConfig::backend`]
    /// filter takes precedence when both are set.
    pub oracle: Option<OracleKind>,
}

/// A self-contained, serializable test instance.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckInstance {
    /// Generating family name (for reports; not needed to replay).
    pub family: String,
    /// Number of vertices.
    pub n: usize,
    /// Certified β bound (audited by the static oracle via exact
    /// branch-and-bound at these sizes).
    pub beta: usize,
    /// Target approximation slack ε.
    pub eps: f64,
    /// Explicit Δ override, or `None` for the practical sizing.
    pub delta: Option<usize>,
    /// Seed for every algorithm run on this instance.
    pub algo_seed: u64,
    /// Edge list of the static graph (empty for dynamic instances, whose
    /// graph is defined by `updates`).
    pub edges: Vec<(u32, u32)>,
    /// Recorded update stream (empty for static/distsim instances).
    pub updates: Vec<Update>,
}

impl CheckInstance {
    /// Materialize the static graph.
    pub fn graph(&self) -> CsrGraph {
        from_edges(
            self.n,
            self.edges.iter().map(|&(u, v)| (u as usize, v as usize)),
        )
    }

    /// The sparsifier parameters this instance runs with.
    pub fn params(&self) -> SparsifierParams {
        match self.delta {
            Some(d) => SparsifierParams::with_delta(self.beta, self.eps, d),
            None => SparsifierParams::practical(self.beta, self.eps),
        }
    }

    /// The ratio bound oracles enforce for this instance under `cfg`:
    /// the theorem's own `ε` unless tightened via
    /// [`CheckConfig::bound_eps`].
    pub fn ratio_bound(&self, cfg: &CheckConfig) -> f64 {
        1.0 + cfg.bound_eps.unwrap_or(self.eps)
    }

    /// Serialize to the reproducer JSON shape (field order is part of the
    /// byte-stability contract; see EXPERIMENTS.md "Counterexample
    /// reproducers").
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("family", self.family.as_str());
        doc.set("n", self.n);
        doc.set("beta", self.beta);
        doc.set("eps", self.eps);
        doc.set(
            "delta",
            match self.delta {
                Some(d) => Json::from(d),
                None => Json::Null,
            },
        );
        doc.set("algo_seed", self.algo_seed);
        doc.set(
            "edges",
            Json::Array(
                self.edges
                    .iter()
                    .map(|&(u, v)| Json::Array(vec![Json::from(u as u64), Json::from(v as u64)]))
                    .collect(),
            ),
        );
        doc.set(
            "updates",
            Json::Array(
                self.updates
                    .iter()
                    .map(|u| {
                        let (op, a, b) = match *u {
                            Update::Insert(a, b) => ("+", a.0, b.0),
                            Update::Delete(a, b) => ("-", a.0, b.0),
                        };
                        Json::Array(vec![
                            Json::from(op),
                            Json::from(a as u64),
                            Json::from(b as u64),
                        ])
                    })
                    .collect(),
            ),
        );
        doc
    }

    /// Parse an instance back from [`CheckInstance::to_json`] output.
    pub fn from_json(doc: &Json) -> Result<CheckInstance, String> {
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("instance.{k}: missing or not a string"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("instance.{k}: missing or not an unsigned integer"))
        };
        let eps = doc
            .get("eps")
            .and_then(Json::as_f64)
            .ok_or("instance.eps: missing or not a number")?;
        let delta = match doc.get("delta") {
            None | Some(Json::Null) => None,
            Some(d) => Some(
                d.as_u64()
                    .ok_or("instance.delta: not an unsigned integer")? as usize,
            ),
        };
        let edges_json = doc
            .get("edges")
            .and_then(Json::as_array)
            .ok_or("instance.edges: missing or not an array")?;
        let mut edges = Vec::with_capacity(edges_json.len());
        for e in edges_json {
            let pair = e.as_array().filter(|a| a.len() == 2);
            let (u, v) = pair
                .and_then(|a| Some((a[0].as_u64()?, a[1].as_u64()?)))
                .ok_or("instance.edges: entries must be [u, v] integer pairs")?;
            edges.push((u as u32, v as u32));
        }
        let updates_json = doc
            .get("updates")
            .and_then(Json::as_array)
            .ok_or("instance.updates: missing or not an array")?;
        let mut updates = Vec::with_capacity(updates_json.len());
        for u in updates_json {
            let triple = u.as_array().filter(|a| a.len() == 3);
            let (op, a, b) = triple
                .and_then(|t| Some((t[0].as_str()?, t[1].as_u64()?, t[2].as_u64()?)))
                .ok_or("instance.updates: entries must be [\"+\"|\"-\", u, v] triples")?;
            let (a, b) = (VertexId(a as u32), VertexId(b as u32));
            updates.push(match op {
                "+" => Update::Insert(a, b),
                "-" => Update::Delete(a, b),
                other => return Err(format!("instance.updates: unknown op {other:?}")),
            });
        }
        Ok(CheckInstance {
            family: str_field("family")?,
            n: u64_field("n")? as usize,
            beta: u64_field("beta")? as usize,
            eps,
            delta,
            algo_seed: u64_field("algo_seed")?,
            edges,
            updates,
        })
    }
}

/// One seeded trial: an instance plus the oracle that judges it.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generator seed (names the reproducer file).
    pub seed: u64,
    /// Which oracle this trial runs.
    pub oracle: OracleKind,
    /// The instance under test.
    pub instance: CheckInstance,
}

/// The ε grid instances draw from. Values below 0.2 make the practical Δ
/// exceed every degree at these sizes (the sparsifier keeps the whole
/// graph), so the grid starts where sparsification actually bites.
const EPS_GRID: [f64; 4] = [0.2, 0.3, 0.4, 0.5];

/// A named graph with a certified (or exactly computed) β bound.
fn pick_graph(rng: &mut StdRng, n: usize) -> (String, CsrGraph, usize) {
    match rng.random_range(0..9u32) {
        0 => named(workloads::family_clique(n)),
        1 => named(workloads::family_clique_union(n, rng)),
        2 => named(workloads::family_clique_union4(n, rng)),
        3 => named(workloads::family_line_graph(n, rng)),
        4 => named(workloads::family_unit_disk(n, rng)),
        5 => named(workloads::family_interval(n, rng)),
        6 => named(workloads::family_disk(n, rng)),
        7 => {
            // Arbitrary G(n,p): no family certificate, so β is computed
            // exactly (branch and bound; n is small) and the static
            // oracle's audit re-verifies it.
            let p = 0.08 + 0.4 * rng.random::<f64>();
            let g = gnp(n, p, rng);
            let beta = neighborhood_independence_exact(&g).max(1);
            (format!("gnp:{p:.3}"), g, beta)
        }
        _ => {
            if rng.random_bool(0.5) {
                ("path".to_string(), path(n), 2)
            } else {
                ("cycle".to_string(), cycle(n), 2)
            }
        }
    }
}

fn named(inst: workloads::Instance) -> (String, CsrGraph, usize) {
    (inst.name.to_string(), inst.graph, inst.beta)
}

impl Scenario {
    /// Deterministically generate the trial for `seed`: the oracle
    /// rotates static → dynamic → distsim → scratch → stream →
    /// chaos-stream → backend with the seed, and the instance is drawn
    /// from a seed-derived RNG, so the same `(seed, cfg)` always
    /// produces the same trial. A [`CheckConfig::backend`] filter
    /// replaces the rotation with the `backend` oracle on every seed.
    pub fn generate(seed: u64, cfg: &CheckConfig) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_C0DE_D1FF_F00D);
        let oracle = if cfg.backend.is_some() {
            OracleKind::Backend
        } else if let Some(pinned) = cfg.oracle {
            pinned
        } else {
            match seed % 7 {
                0 => OracleKind::Static,
                1 => OracleKind::Dynamic,
                2 => OracleKind::Distsim,
                3 => OracleKind::Scratch,
                4 => OracleKind::Stream,
                5 => OracleKind::ChaosStream,
                _ => OracleKind::Backend,
            }
        };
        let instance = match oracle {
            // Backend claims need exact-MCM ground truth too, so they
            // share the static oracle's small shapes.
            OracleKind::Static | OracleKind::Backend => static_instance(&mut rng, cfg, 8, 40),
            OracleKind::Distsim => static_instance(&mut rng, cfg, 10, 34),
            // Scratch, stream, and chaos identities are cheap (no
            // exact-MCM ground truth), so they get the larger static
            // shapes.
            OracleKind::Scratch | OracleKind::Stream | OracleKind::ChaosStream => {
                static_instance(&mut rng, cfg, 12, 44)
            }
            OracleKind::Dynamic => dynamic_instance(&mut rng, cfg),
        };
        Scenario {
            seed,
            oracle,
            instance,
        }
    }
}

fn static_instance(
    rng: &mut StdRng,
    cfg: &CheckConfig,
    n_min: usize,
    n_max: usize,
) -> CheckInstance {
    let n = rng.random_range(n_min..=n_max);
    let (family, g, beta) = pick_graph(rng, n);
    let eps = EPS_GRID[rng.random_range(0..EPS_GRID.len())];
    CheckInstance {
        family,
        n: g.num_vertices(),
        beta,
        eps,
        delta: cfg.delta,
        algo_seed: rng.next_u64(),
        edges: g.edges().map(|(_, u, v)| (u.0, v.0)).collect(),
        updates: Vec::new(),
    }
}

fn dynamic_instance(rng: &mut StdRng, cfg: &CheckConfig) -> CheckInstance {
    let n = rng.random_range(10..=26);
    let (mut family, mut host, mut beta) = pick_graph(rng, n);
    if host.num_edges() == 0 {
        // A G(n,p) draw can come out empty at these sizes; the adversary
        // needs a non-empty host.
        (family, host, beta) = ("path".to_string(), path(n), 2);
    }
    let eps = EPS_GRID[rng.random_range(0..EPS_GRID.len())];
    let steps = rng.random_range(100..=200);
    let (policy, policy_name) = if rng.random_bool(0.5) {
        (Policy::Oblivious { p_insert: 0.7 }, "oblivious")
    } else {
        (
            Policy::AdaptiveDeleteMatched { p_insert: 0.7 },
            "adaptive-delete-matched",
        )
    };
    let algo_seed = rng.next_u64();

    // Record the stream by running the adversary against the live matcher
    // (the adaptive policy reads the served matching). Replaying the
    // recorded updates through a fresh matcher with the same seed follows
    // the exact same trajectory, so the oracle sees what the adversary
    // built.
    let inst = CheckInstance {
        family: format!("dyn-{policy_name}:{family}"),
        n: host.num_vertices(),
        beta,
        eps,
        delta: cfg.delta,
        algo_seed,
        edges: Vec::new(),
        updates: Vec::new(),
    };
    let mut matcher = DynamicMatcher::new(inst.n, inst.params(), algo_seed);
    let mut adversary = StreamAdversary::new(&host, policy);
    let mut updates = Vec::with_capacity(steps);
    for _ in 0..steps {
        let u = adversary.next(matcher.matching(), rng);
        matcher.apply(u);
        updates.push(u);
    }
    CheckInstance { updates, ..inst }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CheckConfig::default();
        for seed in 0..12 {
            let a = Scenario::generate(seed, &cfg);
            let b = Scenario::generate(seed, &cfg);
            assert_eq!(a.oracle, b.oracle, "seed {seed}");
            assert_eq!(a.instance, b.instance, "seed {seed}");
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_and_byte_stable() {
        let cfg = CheckConfig {
            bound_eps: None,
            delta: Some(3),
            backend: None,
            oracle: None,
        };
        for seed in 0..15 {
            let s = Scenario::generate(seed, &cfg);
            let doc = s.instance.to_json();
            let text = doc.to_pretty();
            let parsed = Json::parse(&text).unwrap();
            let back = CheckInstance::from_json(&parsed).unwrap();
            assert_eq!(back, s.instance, "seed {seed}");
            assert_eq!(back.to_json().to_pretty(), text, "seed {seed}");
        }
    }

    #[test]
    fn oracle_rotation_covers_all_kinds() {
        let cfg = CheckConfig::default();
        let kinds: Vec<OracleKind> = (0..7).map(|s| Scenario::generate(s, &cfg).oracle).collect();
        assert_eq!(
            kinds,
            vec![
                OracleKind::Static,
                OracleKind::Dynamic,
                OracleKind::Distsim,
                OracleKind::Scratch,
                OracleKind::Stream,
                OracleKind::ChaosStream,
                OracleKind::Backend
            ]
        );
    }

    #[test]
    fn backend_filter_forces_the_backend_oracle() {
        let cfg = CheckConfig {
            backend: Some(BackendKind::Edcs),
            ..CheckConfig::default()
        };
        for seed in 0..7 {
            let s = Scenario::generate(seed, &cfg);
            assert_eq!(s.oracle, OracleKind::Backend, "seed {seed}");
            assert!(s.instance.updates.is_empty());
        }
    }

    #[test]
    fn oracle_pin_replaces_the_rotation() {
        let cfg = CheckConfig {
            oracle: Some(OracleKind::Distsim),
            ..CheckConfig::default()
        };
        for seed in 0..7 {
            let s = Scenario::generate(seed, &cfg);
            assert_eq!(s.oracle, OracleKind::Distsim, "seed {seed}");
            assert!(s.instance.updates.is_empty());
        }
        // The backend filter wins when both are set.
        let both = CheckConfig {
            backend: Some(BackendKind::Delta),
            oracle: Some(OracleKind::Distsim),
            ..CheckConfig::default()
        };
        assert_eq!(Scenario::generate(0, &both).oracle, OracleKind::Backend);
    }

    #[test]
    fn dynamic_instances_record_updates_static_record_edges() {
        let cfg = CheckConfig::default();
        let stat = Scenario::generate(0, &cfg).instance;
        assert!(stat.updates.is_empty());
        let dyn_inst = Scenario::generate(1, &cfg).instance;
        assert!(!dyn_inst.updates.is_empty());
        assert!(dyn_inst.edges.is_empty());
    }
}
