//! Property test for the shrinker contract: *whatever `shrink_instance`
//! returns still violates*. The oracle here is a seeded known-bad stub —
//! a per-case random "guilty" subset of edges and updates whose joint
//! presence is the violation — so the test exercises the ddmin loop in
//! isolation from the (much slower) real differential oracles. The
//! replay step is a second, independent predicate evaluation on the
//! shrunk instance, mirroring what `sparsimatch check --replay` does
//! with a reproducer file.

use proptest::prelude::*;
use sparsimatch_check::shrink::DEFAULT_CALL_BUDGET;
use sparsimatch_check::{shrink_instance, CheckInstance};
use sparsimatch_dynamic::adversary::Update;
use sparsimatch_graph::ids::VertexId;

fn instance(n: usize, edges: Vec<(u32, u32)>, updates: Vec<Update>) -> CheckInstance {
    CheckInstance {
        family: "stub".to_string(),
        n,
        beta: 1,
        eps: 0.5,
        delta: None,
        algo_seed: 0,
        edges,
        updates,
    }
}

/// The known-bad stub: red iff every guilty edge and every guilty update
/// is still present.
fn is_red(inst: &CheckInstance, guilty_edges: &[(u32, u32)], guilty_updates: &[Update]) -> bool {
    guilty_edges.iter().all(|e| inst.edges.contains(e))
        && guilty_updates.iter().all(|u| inst.updates.contains(u))
}

fn dedup<T: Clone + PartialEq>(items: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    for x in items {
        if !out.contains(x) {
            out.push(x.clone());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shrunk_output_still_violates_and_is_minimal(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..40),
        raw_updates in proptest::collection::vec((any::<bool>(), 0u32..30, 0u32..30), 0..40),
        guilty_edge_count in 1usize..4,
        guilty_update_count in 0usize..4,
    ) {
        let updates: Vec<Update> = raw_updates
            .iter()
            .map(|&(ins, u, v)| {
                if ins {
                    Update::Insert(VertexId(u), VertexId(v))
                } else {
                    Update::Delete(VertexId(u), VertexId(v))
                }
            })
            .collect();
        // Guilt is assigned to a prefix of the generated lists; ddmin has
        // no notion of position, so which indices are guilty is
        // irrelevant to the property.
        let guilty_edges = dedup(&edges[..guilty_edge_count.min(edges.len())]);
        let guilty_updates = dedup(&updates[..guilty_update_count.min(updates.len())]);
        let inst = instance(30, edges, updates);
        prop_assert!(is_red(&inst, &guilty_edges, &guilty_updates), "original must violate");

        let (small, stats) = shrink_instance(
            &inst,
            |c| is_red(c, &guilty_edges, &guilty_updates),
            DEFAULT_CALL_BUDGET,
        );

        // The core contract: shrink -> replay (fresh evaluation) -> still red.
        prop_assert!(
            is_red(&small, &guilty_edges, &guilty_updates),
            "shrunk instance no longer violates: {small:?}"
        );
        // Never grows, and the recorded stats describe the actual output.
        prop_assert!(small.edges.len() <= inst.edges.len());
        prop_assert!(small.updates.len() <= inst.updates.len());
        prop_assert_eq!(stats.edges_before as usize, inst.edges.len());
        prop_assert_eq!(stats.edges_after as usize, small.edges.len());
        prop_assert_eq!(stats.updates_before as usize, inst.updates.len());
        prop_assert_eq!(stats.updates_after as usize, small.updates.len());
        // With a conjunction-of-presence oracle and an ample budget the
        // 1-minimal answer is exactly one copy of each guilty item.
        prop_assert_eq!(small.edges.len(), guilty_edges.len());
        prop_assert_eq!(small.updates.len(), guilty_updates.len());

        // Determinism: shrinking again from the original reproduces the
        // same instance, and the shrunk instance is a fixpoint.
        let (again, _) = shrink_instance(
            &inst,
            |c| is_red(c, &guilty_edges, &guilty_updates),
            DEFAULT_CALL_BUDGET,
        );
        prop_assert_eq!(&again, &small);
        let (fix, fix_stats) = shrink_instance(
            &small,
            |c| is_red(c, &guilty_edges, &guilty_updates),
            DEFAULT_CALL_BUDGET,
        );
        prop_assert_eq!(&fix, &small);
        prop_assert_eq!(fix_stats.edges_before, fix_stats.edges_after);

        // The shrunk instance survives the reproducer-file round trip
        // losslessly — the property `--replay` byte-identity rests on.
        let reparsed = CheckInstance::from_json(&small.to_json()).unwrap();
        prop_assert_eq!(&reparsed, &small);
        prop_assert_eq!(reparsed.to_json().to_pretty(), small.to_json().to_pretty());
    }
}
