//! Property-based tests for the dynamic matchers.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_dynamic::adversary::Update;
use sparsimatch_dynamic::oblivious::ObliviousDynamicSparsifier;
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::ids::VertexId;

const N: usize = 14;

#[derive(Clone, Debug)]
enum Op {
    Insert(usize, usize),
    Delete(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..N, 0..N).prop_map(|(u, v)| Op::Insert(u, v)),
            (0..N, 0..N).prop_map(|(u, v)| Op::Delete(u, v)),
        ],
        0..120,
    )
}

fn to_update(op: &Op) -> Option<Update> {
    match *op {
        Op::Insert(u, v) if u != v => Some(Update::Insert(VertexId::new(u), VertexId::new(v))),
        Op::Delete(u, v) if u != v => Some(Update::Delete(VertexId::new(u), VertexId::new(v))),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn served_matching_is_always_valid(ops in arb_ops(), seed in any::<u64>()) {
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = DynamicMatcher::new(N, params, seed);
        for op in &ops {
            if let Some(u) = to_update(op) {
                dm.apply(u);
                let snapshot = dm.graph().to_csr();
                prop_assert!(dm.matching().is_valid_for(&snapshot));
            }
        }
    }

    #[test]
    fn oblivious_sparsifier_invariants_under_arbitrary_ops(ops in arb_ops(), seed in any::<u64>()) {
        let params = SparsifierParams::with_delta(2, 0.5, 2);
        let mut s = ObliviousDynamicSparsifier::new(N, params);
        let mut rng = StdRng::seed_from_u64(seed);
        for op in &ops {
            match *op {
                Op::Insert(u, v) if u != v => {
                    s.insert_edge(VertexId::new(u), VertexId::new(v), &mut rng);
                }
                Op::Delete(u, v) if u != v => {
                    s.delete_edge(VertexId::new(u), VertexId::new(v), &mut rng);
                }
                _ => {}
            }
        }
        prop_assert!(s.check_invariants());
        // Sparsifier ⊆ current graph.
        let snapshot = s.graph().to_csr();
        for (_, u, v) in s.sparsifier_graph().edges() {
            prop_assert!(snapshot.has_edge(u, v));
        }
    }

    #[test]
    fn work_reports_are_positive_and_bounded(ops in arb_ops(), seed in any::<u64>()) {
        let params = SparsifierParams::with_delta(2, 0.5, 3);
        let mut dm = DynamicMatcher::new(N, params, seed);
        for op in &ops {
            if let Some(u) = to_update(op) {
                let r = dm.apply(u);
                prop_assert!(r.work >= 1);
                // On 14 vertices nothing can legitimately cost more than a
                // generous constant.
                prop_assert!(r.work < 100_000);
            }
        }
    }
}
