//! Experiment harness: drive an update stream through a dynamic matcher,
//! record per-update work, and audit the approximation ratio against
//! exact recomputation.

use crate::adversary::Adversary;
use crate::scheme::DynamicMatcher;
use rand::RngCore;
use sparsimatch_matching::blossom::maximum_matching;

/// Summary of a dynamic run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Updates applied.
    pub updates: usize,
    /// Maximum work charged to a single update.
    pub max_work: u64,
    /// Mean work per update.
    pub avg_work: f64,
    /// 99th-percentile work.
    pub p99_work: u64,
    /// Worst audited ratio `|MCM(G_t)| / |M_t|` across audit points
    /// (1.0 when the graph was empty at every audit).
    pub worst_ratio: f64,
    /// Number of audit points.
    pub audits: usize,
}

/// Drive `steps` updates from `adversary` through `matcher`, auditing the
/// ratio every `audit_every` updates (0 = never).
pub fn run_dynamic(
    matcher: &mut DynamicMatcher,
    adversary: &mut dyn Adversary,
    steps: usize,
    audit_every: usize,
    rng: &mut dyn RngCore,
) -> RunSummary {
    let mut works: Vec<u64> = Vec::with_capacity(steps);
    let mut worst_ratio = 1.0f64;
    let mut audits = 0usize;
    for step in 0..steps {
        let update = adversary.next(matcher.matching(), rng);
        let report = matcher.apply(update);
        works.push(report.work);
        if audit_every > 0 && step % audit_every == audit_every - 1 {
            let snapshot = matcher.graph().to_csr();
            let exact = maximum_matching(&snapshot).len();
            audits += 1;
            if exact > 0 {
                let served = matcher.matching().len().max(1);
                worst_ratio = worst_ratio.max(exact as f64 / served as f64);
            }
            assert!(
                matcher.matching().is_valid_for(&snapshot),
                "served matching invalid at step {step}"
            );
        }
    }
    summarize(works, worst_ratio, audits)
}

fn summarize(mut works: Vec<u64>, worst_ratio: f64, audits: usize) -> RunSummary {
    let updates = works.len();
    if updates == 0 {
        return RunSummary::default();
    }
    let total: u64 = works.iter().sum();
    works.sort_unstable();
    RunSummary {
        updates,
        max_work: *works.last().unwrap(),
        avg_work: total as f64 / updates as f64,
        p99_work: works[(updates * 99 / 100).min(updates - 1)],
        worst_ratio,
        audits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Policy, StreamAdversary};
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_core::params::SparsifierParams;
    use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};

    fn host(n: usize, rng: &mut StdRng) -> sparsimatch_graph::csr::CsrGraph {
        clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 5,
            },
            rng,
        )
    }

    #[test]
    fn oblivious_run_keeps_ratio() {
        let mut rng = StdRng::seed_from_u64(21);
        let h = host(60, &mut rng);
        let mut adv = StreamAdversary::new(&h, Policy::Oblivious { p_insert: 0.7 });
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = DynamicMatcher::new(60, params, 1);
        let s = run_dynamic(&mut dm, &mut adv, 3000, 250, &mut rng);
        assert_eq!(s.updates, 3000);
        assert!(s.audits >= 10);
        assert!(
            s.worst_ratio < 1.8,
            "ratio {} should stay near 1+eps (greedy floor is 2)",
            s.worst_ratio
        );
    }

    #[test]
    fn adaptive_adversary_does_not_break_ratio() {
        let mut rng = StdRng::seed_from_u64(22);
        let h = host(60, &mut rng);
        let mut adv = StreamAdversary::new(&h, Policy::AdaptiveDeleteMatched { p_insert: 0.65 });
        let params = SparsifierParams::practical(2, 0.4);
        let mut dm = DynamicMatcher::new(60, params, 2);
        let s = run_dynamic(&mut dm, &mut adv, 3000, 250, &mut rng);
        assert!(
            s.worst_ratio < 2.0,
            "adaptive ratio {} blew up",
            s.worst_ratio
        );
    }

    #[test]
    fn summaries_are_coherent() {
        let s = summarize(vec![1, 5, 3, 2, 100], 1.25, 2);
        assert_eq!(s.max_work, 100);
        assert_eq!(s.p99_work, 100);
        assert!((s.avg_work - 22.2).abs() < 1e-9);
        assert_eq!(s.updates, 5);
        assert_eq!(s.worst_ratio, 1.25);
    }

    #[test]
    fn empty_run() {
        let s = summarize(vec![], 1.0, 0);
        assert_eq!(s.updates, 0);
        assert_eq!(s.max_work, 0);
    }
}
