//! The Theorem 3.5 dynamic matcher.
//!
//! Implementation of the window scheme with explicit work accounting:
//!
//! * every update applies its graph mutation and (for deletions of
//!   currently-output pairs) prunes the output matching — O(1) work;
//! * when the window closes, the pending fresh matching (computed on the
//!   snapshot taken at the window's start, minus edges deleted during the
//!   window) becomes the output, a new static computation starts on a new
//!   snapshot, and a new window of length `max(1, ⌊ε/4·|M|⌋)` opens;
//! * the static computation's work — adjacency probes for the sparsifier,
//!   sparsifier edges for greedy, and blossom edge-visits for the bounded
//!   augmentation, all machine-independent unit counts — is time-sliced
//!   evenly over the window's updates, exactly as the worst-case variant
//!   of [Gupta–Peng] prescribes. [`UpdateReport::work`] is therefore the
//!   realized worst-case per-update work the theorem bounds by
//!   `O((β/ε³)·log(1/ε))`.

use crate::adversary::Update;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::scratch::OracleRebuildScratch;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::csr::GraphBuilder;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::bounded_aug::{
    eliminate_augmenting_paths_up_to_with, max_path_len_for_eps,
};
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::Matching;
use sparsimatch_obs::{keys, WorkMeter};

/// Per-update accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateReport {
    /// Work units charged to this update: O(1) bookkeeping plus this
    /// update's time-slice of the background static computation.
    pub work: u64,
    /// Whether the output matching was swapped at this update (window
    /// boundary).
    pub swapped: bool,
}

impl UpdateReport {
    /// Mirror into the unified [`WorkMeter`] accounting: one update, its
    /// work units, and the worst single-update work as a high-water mark
    /// (the quantity Theorem 3.5 bounds).
    pub fn mirror_into(&self, meter: &mut WorkMeter) {
        meter.incr(keys::UPDATES);
        meter.add(keys::UPDATE_WORK, self.work);
        meter.record_max(keys::MAX_UPDATE_WORK, self.work);
    }
}

/// Fully dynamic `(1+ε)`-approximate maximum matching over a fixed vertex
/// set.
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_dynamic::adversary::Update;
/// use sparsimatch_dynamic::scheme::DynamicMatcher;
/// use sparsimatch_graph::ids::VertexId;
///
/// let params = SparsifierParams::practical(1, 0.5);
/// let mut dm = DynamicMatcher::new(4, params, 42);
/// dm.apply(Update::Insert(VertexId(0), VertexId(1)));
/// dm.apply(Update::Insert(VertexId(2), VertexId(3)));
/// // The served matching is always a valid matching of the current graph.
/// let snapshot = dm.graph().to_csr();
/// assert!(dm.matching().is_valid_for(&snapshot));
/// ```
pub struct DynamicMatcher {
    graph: AdjListGraph,
    params: SparsifierParams,
    output: Matching,
    /// Fresh matching awaiting the end of the current window.
    pending: Option<Matching>,
    /// Updates remaining in the current window.
    window_left: usize,
    /// Work share charged to each update of the current window.
    share: u64,
    seed_counter: u64,
    base_seed: u64,
    /// High-water mark of any vertex degree (sizes the sampler overlay
    /// without rescanning; never shrinks, which only wastes capacity).
    max_degree_seen: usize,
    /// Reusable buffers for the background rebuilds: the sampler overlay,
    /// mark/index buffers, and blossom searcher persist across windows,
    /// so steady-state rebuilds stop paying allocation churn. Only the
    /// published `pending` matching is freshly allocated (it is handed
    /// out at the window boundary).
    scratch: OracleRebuildScratch,
}

impl DynamicMatcher {
    /// A matcher over `n` vertices, initially edgeless (the standard
    /// dynamic-model assumption). `params.eps` is the end-to-end target ε.
    pub fn new(n: usize, params: SparsifierParams, seed: u64) -> Self {
        DynamicMatcher {
            graph: AdjListGraph::new(n),
            params,
            output: Matching::new(n),
            pending: None,
            window_left: 1,
            share: 0,
            seed_counter: 0,
            base_seed: seed,
            max_degree_seen: 0,
            scratch: OracleRebuildScratch::new(),
        }
    }

    /// The served matching (always a valid matching of the current graph).
    pub fn matching(&self) -> &Matching {
        &self.output
    }

    /// The current graph.
    pub fn graph(&self) -> &AdjListGraph {
        &self.graph
    }

    /// Apply one update.
    ///
    /// The returned [`UpdateReport`] charges this update its O(1)
    /// mutation cost plus its time-slice of the background static
    /// recompute; Theorem 3.5 bounds that charge by
    /// [`work_bound`](Self::work_bound) up to this implementation's
    /// constants, and the served matching stays valid throughout:
    ///
    /// ```
    /// use sparsimatch_core::params::SparsifierParams;
    /// use sparsimatch_dynamic::adversary::Update;
    /// use sparsimatch_dynamic::scheme::DynamicMatcher;
    /// use sparsimatch_graph::ids::VertexId;
    ///
    /// let mut dm = DynamicMatcher::new(8, SparsifierParams::practical(1, 0.5), 7);
    /// for i in 0..4 {
    ///     let report = dm.apply(Update::Insert(VertexId(2 * i), VertexId(2 * i + 1)));
    ///     assert!(report.work <= 4 * dm.work_bound());
    ///     assert!(dm.matching().is_valid_for(&dm.graph().to_csr()));
    /// }
    /// ```
    pub fn apply(&mut self, update: Update) -> UpdateReport {
        let mut work = 1u64; // the O(1) mutation + bookkeeping
        match update {
            Update::Insert(u, v) => {
                self.graph.insert_edge(u, v);
                self.max_degree_seen = self
                    .max_degree_seen
                    .max(self.graph.degree(u))
                    .max(self.graph.degree(v));
            }
            Update::Delete(u, v) => {
                self.graph.delete_edge(u, v);
                // Prune the output and the pending matching in O(1).
                if self.output.mate(u) == Some(v) {
                    self.output.remove_pair(u);
                    work += 1;
                }
                if let Some(p) = &mut self.pending {
                    if p.mate(u) == Some(v) {
                        p.remove_pair(u);
                        work += 1;
                    }
                }
            }
        }
        work += self.share;
        self.window_left = self.window_left.saturating_sub(1);
        let mut swapped = false;
        if self.window_left == 0 {
            // Window boundary: publish the pending matching (already pruned
            // of in-window deletions), start a fresh computation on the
            // current graph, and size the next window.
            if let Some(p) = self.pending.take() {
                self.output = p;
            }
            let static_work = self.start_background();
            let window =
                ((self.params.eps / 4.0) * self.output.len().max(1) as f64).floor() as usize;
            let window = window.max(1);
            self.window_left = window;
            self.share = static_work.div_ceil(window as u64);
            swapped = true;
        }
        UpdateReport { work, swapped }
    }

    /// [`DynamicMatcher::apply`] that also mirrors the report into a
    /// [`WorkMeter`].
    pub fn apply_metered(&mut self, update: Update, meter: &mut WorkMeter) -> UpdateReport {
        let report = self.apply(update);
        report.mirror_into(meter);
        report
    }

    /// Run the static `(1+ε/4)` pipeline on a snapshot of the current
    /// graph; store the result as pending; return its measured work units.
    fn start_background(&mut self) -> u64 {
        self.seed_counter += 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.base_seed ^ self.seed_counter.wrapping_mul(0x9E3779B97F4A7C15),
        );
        let stage_eps = self.params.eps / 4.0;
        // Stage-ε sparsifier parameters with the caller's Δ-scaling.
        let n = self.graph.num_vertices();
        let mut work = 0u64;

        // Sparsify straight off the dynamic adjacency (it implements the
        // oracle), visiting only non-isolated vertices — the dynamic
        // structure knows them for free, and skipping the rest is what
        // turns the naive O(n·Δ) construction cost into the refined
        // O(|MCM|·β·Δ) of Observation 2.10 + Lemma 2.2 (n' ≤ (β+2)·|MCM|).
        // Work: one unit per adjacency probe (≤ mark_cap per vertex).
        // Marking runs through the matcher's persistent scratch buffers;
        // the overlay only ever grows to the degree high-water mark.
        self.scratch.clear();
        self.scratch
            .sampler
            .ensure_capacity(self.max_degree_seen.max(1));
        for v in 0..n {
            let v = VertexId::new(v);
            let deg = self.graph.degree(v);
            if deg == 0 {
                continue;
            }
            sparsimatch_core::sampler::mark_indices_for_vertex(
                &self.graph,
                v,
                self.params.delta,
                self.params.mark_cap(),
                &mut self.scratch.sampler,
                &mut rng,
                &mut self.scratch.indices,
            );
            for &i in &self.scratch.indices {
                self.scratch
                    .marks
                    .push((v, self.graph.neighbor(v, i as usize)));
            }
            work += deg.min(self.params.mark_cap()) as u64 + 1;
        }
        let mut b = GraphBuilder::with_capacity(n, self.scratch.marks.len());
        for &(u, v) in &self.scratch.marks {
            b.add_edge(u, v);
        }
        let sparse = b.build();
        work += sparse.num_edges() as u64;

        // Greedy + bounded augmentation on the sparsifier, reusing the
        // scratch searcher (identical output and stats to a fresh one —
        // `reset_from` re-zeroes everything including the work counter).
        let mut m = greedy_maximal_matching(&sparse);
        work += sparse.num_edges() as u64;
        let stats = eliminate_augmenting_paths_up_to_with(
            &sparse,
            &mut m,
            max_path_len_for_eps(stage_eps),
            &mut self.scratch.searcher,
        );
        work += stats.edge_visits;

        self.pending = Some(m);
        work
    }

    /// Theory bound on the worst-case per-update work: `O(Δ/ε³)` units.
    /// The constants reflect this implementation's splitting: the static
    /// stage runs at ε/4, its augmentation visits `O(m_Δ/(ε/4))` edges
    /// with `m_Δ ≤ 4·|MCM|·Δ`, and the window has `⌊ε/4·|M|⌋` updates —
    /// so the per-update share is about `Δ·(4/ε)²·4/ε = 64·Δ/ε³`.
    pub fn work_bound(&self) -> u64 {
        let eps = self.params.eps;
        (64.0 * self.params.mark_cap() as f64 / (eps * eps * eps)) as u64 + 1
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Update;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sparsimatch_matching::blossom::maximum_matching;

    fn insert(u: usize, v: usize) -> Update {
        Update::Insert(VertexId::new(u), VertexId::new(v))
    }
    fn delete(u: usize, v: usize) -> Update {
        Update::Delete(VertexId::new(u), VertexId::new(v))
    }

    #[test]
    fn output_always_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = DynamicMatcher::new(40, params, 7);
        let mut reference = AdjListGraph::new(40);
        for step in 0..1500 {
            let u = rng.random_range(0..40);
            let v = rng.random_range(0..40);
            if u == v {
                continue;
            }
            let upd = if rng.random_bool(0.6) {
                reference.insert_edge(VertexId::new(u), VertexId::new(v));
                insert(u, v)
            } else {
                reference.delete_edge(VertexId::new(u), VertexId::new(v));
                delete(u, v)
            };
            dm.apply(upd);
            // Validity: every output pair is a current edge (checked on a
            // sample of steps plus the first 50, where churn is highest).
            if step < 50 || step % 25 == 0 {
                let snapshot = dm.graph().to_csr();
                assert!(dm.matching().is_valid_for(&snapshot));
            }
        }
    }

    #[test]
    fn insert_only_stream_tracks_mcm() {
        let params = SparsifierParams::practical(1, 0.4);
        let mut dm = DynamicMatcher::new(100, params, 3);
        // Build a clique incrementally.
        for u in 0..100 {
            for v in (u + 1)..100 {
                dm.apply(insert(u, v));
            }
        }
        let snapshot = dm.graph().to_csr();
        let exact = maximum_matching(&snapshot).len();
        assert_eq!(exact, 50);
        // After ~5000 inserts the window machinery has cycled many times;
        // the served matching must be within (1+eps) of 50 (whp), plus the
        // stability slack of one window (<= eps/4 * |M|).
        assert!(
            dm.matching().len() as f64 * 1.55 >= exact as f64,
            "served {} vs exact {exact}",
            dm.matching().len()
        );
    }

    #[test]
    fn deletion_of_matched_edge_prunes_output() {
        let params = SparsifierParams::practical(1, 0.5);
        let mut dm = DynamicMatcher::new(4, params, 5);
        dm.apply(insert(0, 1));
        // Force window turnover so (0,1) can enter the output.
        for _ in 0..50 {
            dm.apply(insert(2, 3));
            dm.apply(delete(2, 3));
        }
        if dm.matching().mate(VertexId(0)) == Some(VertexId(1)) {
            dm.apply(delete(0, 1));
            assert!(!dm.matching().is_matched(VertexId(0)));
        }
    }

    #[test]
    fn work_per_update_is_bounded_by_theory_shape() {
        // On a growing clique stream (random insertion order, so the
        // intermediate graphs keep small neighborhood independence — a
        // row-major order would pass through star-like, huge-β states the
        // theorem does not cover), per-update work must stay within a
        // constant factor of the O(Δ/ε³) bound — in particular it must
        // not grow with n.
        use rand::seq::SliceRandom;
        let params = SparsifierParams::practical(3, 0.5);
        let mut dm = DynamicMatcher::new(120, params, 11);
        let mut edges: Vec<(usize, usize)> = (0..120)
            .flat_map(|u| ((u + 1)..120).map(move |v| (u, v)))
            .collect();
        let mut rng = StdRng::seed_from_u64(99);
        edges.shuffle(&mut rng);
        let mut max_work = 0u64;
        for (u, v) in edges {
            let r = dm.apply(insert(u, v));
            max_work = max_work.max(r.work);
        }
        let bound = dm.work_bound();
        assert!(
            max_work <= 4 * bound,
            "max work {max_work} vs theory shape {bound}"
        );
    }

    #[test]
    fn metered_updates_mirror_work() {
        let params = SparsifierParams::practical(1, 0.5);
        let mut dm = DynamicMatcher::new(10, params, 17);
        let mut meter = WorkMeter::new();
        let mut total = 0u64;
        let mut worst = 0u64;
        for i in 0..60 {
            let r = dm.apply_metered(insert(i % 9, (i + 1) % 9), &mut meter);
            total += r.work;
            worst = worst.max(r.work);
        }
        assert_eq!(meter.get(keys::UPDATES), 60);
        assert_eq!(meter.get(keys::UPDATE_WORK), total);
        assert_eq!(meter.get_max(keys::MAX_UPDATE_WORK), worst);
    }

    #[test]
    fn swap_reports_at_window_boundaries() {
        let params = SparsifierParams::practical(1, 0.5);
        let mut dm = DynamicMatcher::new(10, params, 13);
        let mut swaps = 0;
        for i in 0..100 {
            let r = dm.apply(insert(i % 9, (i + 1) % 9));
            swaps += r.swapped as u64;
        }
        assert!(swaps > 0, "windows must turn over");
    }
}
