//! Dynamic baselines for experiment E10.
//!
//! * [`NaiveRecompute`] — rerun the static `(1+ε)` pipeline after every
//!   update: per-update work `Θ(|MCM|·Δ)`, the quantity the window scheme
//!   amortizes away.
//! * [`ThresholdMaximalMatching`] — a Barenboim–Maimon-style deterministic
//!   dynamic *maximal* matching (2-approximation) with repair scans capped
//!   at `T = ⌈√(βn)⌉`: insertions match free endpoints in O(1); deleting a
//!   matched edge triggers a bounded scan of each endpoint's neighborhood
//!   for a free partner, falling back to a full scan only when the bounded
//!   scan is inconclusive (work counted honestly either way). On the
//!   bounded-β hosts of the experiments the bounded scan almost always
//!   suffices, so measured update work tracks `√(βn)` — the growth the
//!   paper's comparison quotes — while maximality is preserved exactly
//!   (audited in tests). See DESIGN.md §4.4 for the substitution note.

use crate::adversary::Update;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::csr::GraphBuilder;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::bounded_aug::approx_maximum_matching_from;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::Matching;

/// Full static recompute after every update.
pub struct NaiveRecompute {
    graph: AdjListGraph,
    params: SparsifierParams,
    output: Matching,
    seed: u64,
    counter: u64,
}

impl NaiveRecompute {
    /// A naive recomputing matcher on `n` vertices.
    pub fn new(n: usize, params: SparsifierParams, seed: u64) -> Self {
        NaiveRecompute {
            graph: AdjListGraph::new(n),
            params,
            output: Matching::new(n),
            seed,
            counter: 0,
        }
    }

    /// The served matching.
    pub fn matching(&self) -> &Matching {
        &self.output
    }

    /// Snapshot of the current graph (for exact audits).
    pub fn graph_snapshot(&self) -> sparsimatch_graph::csr::CsrGraph {
        self.graph.to_csr()
    }

    /// Apply one update; returns the work units spent.
    pub fn apply(&mut self, update: Update) -> u64 {
        match update {
            Update::Insert(u, v) => {
                self.graph.insert_edge(u, v);
            }
            Update::Delete(u, v) => {
                self.graph.delete_edge(u, v);
            }
        }
        self.counter += 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ self.counter);
        let n = self.graph.num_vertices();
        let mut work = 1u64;
        let marks =
            sparsimatch_core::sparsifier::mark_edges_oracle(&self.graph, &self.params, &mut rng);
        for v in 0..n {
            work += self
                .graph
                .degree(VertexId::new(v))
                .min(self.params.mark_cap()) as u64
                + 1;
        }
        let mut b = GraphBuilder::with_capacity(n, marks.len());
        for (u, v) in marks {
            b.add_edge(u, v);
        }
        let sparse = b.build();
        work += 2 * sparse.num_edges() as u64;
        let init = greedy_maximal_matching(&sparse);
        let (m, stats) = approx_maximum_matching_from(&sparse, init, self.params.eps / 2.5);
        work += stats.edge_visits;
        self.output = m;
        work
    }
}

use rand::SeedableRng;

/// Ablation baseline: the Gupta–Peng window scheme *without* the
/// sparsifier — the static `(1+ε)` computation runs on the full graph
/// snapshot, so its work is `Θ(m/ε)` per window instead of
/// `Θ(|MCM|·Δ/ε)`. Same windows, same pruning; isolates exactly what the
/// sparsifier buys inside Theorem 3.5.
pub struct WindowedFullRecompute {
    graph: AdjListGraph,
    eps: f64,
    output: Matching,
    pending: Option<Matching>,
    window_left: usize,
    share: u64,
}

impl WindowedFullRecompute {
    /// A windowed full-graph matcher on `n` vertices.
    pub fn new(n: usize, eps: f64) -> Self {
        WindowedFullRecompute {
            graph: AdjListGraph::new(n),
            eps,
            output: Matching::new(n),
            pending: None,
            window_left: 1,
            share: 0,
        }
    }

    /// The served matching.
    pub fn matching(&self) -> &Matching {
        &self.output
    }

    /// Apply one update; returns work units (time-sliced like the scheme).
    pub fn apply(&mut self, update: Update) -> u64 {
        let mut work = 1u64;
        match update {
            Update::Insert(u, v) => {
                self.graph.insert_edge(u, v);
            }
            Update::Delete(u, v) => {
                self.graph.delete_edge(u, v);
                if self.output.mate(u) == Some(v) {
                    self.output.remove_pair(u);
                    work += 1;
                }
                if let Some(p) = &mut self.pending {
                    if p.mate(u) == Some(v) {
                        p.remove_pair(u);
                        work += 1;
                    }
                }
            }
        }
        work += self.share;
        self.window_left = self.window_left.saturating_sub(1);
        if self.window_left == 0 {
            if let Some(p) = self.pending.take() {
                self.output = p;
            }
            // Static recompute on the full snapshot: work = edges scanned
            // by greedy + augmentation edge-visits.
            let snapshot = self.graph.to_csr();
            let mut static_work = 2 * snapshot.num_edges() as u64;
            let init = greedy_maximal_matching(&snapshot);
            let (m, stats) = approx_maximum_matching_from(&snapshot, init, self.eps / 4.0);
            static_work += stats.edge_visits;
            self.pending = Some(m);
            let window =
                (((self.eps / 4.0) * self.output.len().max(1) as f64).floor() as usize).max(1);
            self.window_left = window;
            self.share = static_work.div_ceil(window as u64);
        }
        work
    }
}

/// Deterministic dynamic maximal matching with `√(βn)`-bounded repair.
pub struct ThresholdMaximalMatching {
    graph: AdjListGraph,
    output: Matching,
    /// Repair scan budget `T = ⌈√(βn)⌉`.
    threshold: usize,
}

impl ThresholdMaximalMatching {
    /// A threshold matcher on `n` vertices for graphs of neighborhood
    /// independence ≤ `beta`.
    pub fn new(n: usize, beta: usize) -> Self {
        ThresholdMaximalMatching {
            graph: AdjListGraph::new(n),
            output: Matching::new(n),
            threshold: ((beta * n) as f64).sqrt().ceil() as usize + 1,
        }
    }

    /// The served (maximal) matching.
    pub fn matching(&self) -> &Matching {
        &self.output
    }

    /// The repair budget `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Snapshot of the current graph (for exact audits).
    pub fn graph_snapshot(&self) -> sparsimatch_graph::csr::CsrGraph {
        self.graph.to_csr()
    }

    /// Apply one update; returns work units (adjacency probes + O(1)).
    pub fn apply(&mut self, update: Update) -> u64 {
        match update {
            Update::Insert(u, v) => {
                self.graph.insert_edge(u, v);
                if !self.output.is_matched(u) && !self.output.is_matched(v) {
                    self.output.add_pair(u, v);
                }
                1
            }
            Update::Delete(u, v) => {
                self.graph.delete_edge(u, v);
                let mut work = 1u64;
                if self.output.mate(u) == Some(v) {
                    self.output.remove_pair(u);
                    work += self.repair(u);
                    work += self.repair(v);
                }
                work
            }
        }
    }

    /// Find a free neighbor for the newly freed `v`: scan up to `T`
    /// adjacency slots; if all scanned slots are matched and degree
    /// exceeds `T`, fall back to the full scan (counted).
    fn repair(&mut self, v: VertexId) -> u64 {
        if self.output.is_matched(v) {
            return 0;
        }
        let deg = self.graph.degree(v);
        let bounded = deg.min(self.threshold);
        let mut work = 0u64;
        for i in 0..bounded {
            work += 1;
            let u = self.graph.neighbor(v, i);
            if !self.output.is_matched(u) {
                self.output.add_pair(v, u);
                return work;
            }
        }
        // Inconclusive bounded scan on a high-degree vertex: full scan.
        for i in bounded..deg {
            work += 1;
            let u = self.graph.neighbor(v, i);
            if !self.output.is_matched(u) {
                self.output.add_pair(v, u);
                return work;
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Adversary, Policy, StreamAdversary};
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn threshold_matcher_stays_maximal() {
        let mut rng = StdRng::seed_from_u64(5);
        let host = clique_union(
            CliqueUnionConfig {
                n: 60,
                diversity: 2,
                clique_size: 12,
            },
            &mut rng,
        );
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 0.65 });
        let mut tm = ThresholdMaximalMatching::new(60, 2);
        for step in 0..3000 {
            let upd = adv.next(&Matching::new(60), &mut rng);
            tm.apply(upd);
            if step % 100 == 99 {
                let snapshot = tm.graph.to_csr();
                assert!(tm.matching().is_valid_for(&snapshot), "step {step}");
                assert!(tm.matching().is_maximal_in(&snapshot), "step {step}");
            }
        }
    }

    #[test]
    fn threshold_matcher_is_2_approx() {
        let mut rng = StdRng::seed_from_u64(6);
        let host = clique(30);
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 0.8 });
        let mut tm = ThresholdMaximalMatching::new(30, 1);
        for _ in 0..1500 {
            tm.apply(adv.next(&Matching::new(30), &mut rng));
        }
        let snapshot = tm.graph.to_csr();
        let exact = maximum_matching(&snapshot).len();
        assert!(2 * tm.matching().len() >= exact);
    }

    #[test]
    fn windowed_full_recompute_pays_for_skipping_the_sparsifier() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 400;
        let host = clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 2,
            },
            &mut rng,
        );
        // Drive both windowed matchers over the same insert stream.
        let mut no_sparsifier = WindowedFullRecompute::new(n, 0.5);
        let mut with_sparsifier =
            crate::scheme::DynamicMatcher::new(n, SparsifierParams::practical(2, 0.5), 7);
        let mut full_total = 0u64;
        let mut sparse_total = 0u64;
        // Random insertion order keeps the intermediate graphs β-bounded
        // (sorted order passes through star-like huge-β states).
        use rand::seq::SliceRandom;
        let mut stream: Vec<(VertexId, VertexId)> = host.edges().map(|(_, u, v)| (u, v)).collect();
        stream.shuffle(&mut rng);
        for (u, v) in stream {
            full_total += no_sparsifier.apply(Update::Insert(u, v));
            sparse_total += with_sparsifier.apply(Update::Insert(u, v)).work;
        }
        let snapshot = no_sparsifier.graph.to_csr();
        assert!(no_sparsifier.matching().is_valid_for(&snapshot));
        // Identical scheme, identical accuracy target — the sparsifier is
        // the only difference, and it must pay off on dense hosts.
        assert!(
            2 * sparse_total < full_total,
            "with sparsifier {sparse_total} vs without {full_total}"
        );
    }

    #[test]
    fn naive_recompute_accurate_but_expensive() {
        let mut rng = StdRng::seed_from_u64(7);
        let host = clique(40);
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 1.0 });
        let params = SparsifierParams::practical(1, 0.5);
        let mut nm = NaiveRecompute::new(40, params, 9);
        let mut total_work = 0u64;
        for _ in 0..host.num_edges() {
            total_work += nm.apply(adv.next(&Matching::new(40), &mut rng));
        }
        let snapshot = nm.graph.to_csr();
        let exact = maximum_matching(&snapshot).len();
        assert!(nm.matching().len() as f64 * 1.5 >= exact as f64);
        assert!(
            total_work as f64 / host.num_edges() as f64 > 40.0,
            "naive recompute should be far above O(1) per update"
        );
    }
}
