//! Update-stream adversaries.
//!
//! Streams are sampled from a fixed *host graph* so the dynamic graph's
//! neighborhood independence stays bounded by the host's β at every step
//! (an arbitrary random stream would not). Two policies:
//!
//! * [`Policy::Oblivious`] — inserts/deletes chosen independently of the
//!   algorithm's output (the standard oblivious-adversary model);
//! * [`Policy::AdaptiveDeleteMatched`] — the adversary Theorem 3.5 is
//!   proud to survive: it inspects the served matching every step and
//!   preferentially deletes currently-matched edges, forcing maximal
//!   repair pressure.

use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::Matching;

/// A single edge update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Delete edge `{u, v}`.
    Delete(VertexId, VertexId),
}

/// Anything that produces the next update given the adversary's view.
pub trait Adversary {
    /// Produce the next update. `output` is the algorithm's currently
    /// served matching (adaptive adversaries read it; oblivious ones must
    /// not — enforced by the implementations, not the signature).
    fn next(&mut self, output: &Matching, rng: &mut dyn rand::RngCore) -> Update;
}

/// Stream policy.
#[derive(Clone, Copy, Debug)]
pub enum Policy {
    /// Insert with probability `p_insert`, else delete a uniformly random
    /// present edge; never looks at the matching.
    Oblivious {
        /// Probability of an insert step (when both options exist).
        p_insert: f64,
    },
    /// Insert with probability `p_insert`; deletions target a uniformly
    /// random *matched* edge when one exists.
    AdaptiveDeleteMatched {
        /// Probability of an insert step (when both options exist).
        p_insert: f64,
    },
}

/// An adversary drawing updates from a host graph's edge set.
pub struct StreamAdversary {
    host: Vec<(u32, u32)>,
    /// Present edges, as indices into `host`, with O(1) sample/remove.
    present_list: Vec<u32>,
    /// Position of host edge `e` in `present_list`, or `u32::MAX`.
    position: Vec<u32>,
    policy: Policy,
}

impl StreamAdversary {
    /// An adversary over `host`'s edges, starting from the empty graph.
    pub fn new(host: &CsrGraph, policy: Policy) -> Self {
        let host_edges: Vec<(u32, u32)> = host.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let m = host_edges.len();
        StreamAdversary {
            host: host_edges,
            present_list: Vec::with_capacity(m),
            position: vec![u32::MAX; m],
            policy,
        }
    }

    /// Number of edges currently present.
    pub fn present(&self) -> usize {
        self.present_list.len()
    }

    /// Number of host edges currently absent.
    pub fn absent(&self) -> usize {
        self.host.len() - self.present_list.len()
    }

    fn insert_random(&mut self, rng: &mut dyn rand::RngCore) -> Update {
        debug_assert!(self.absent() > 0);
        // Rejection-sample an absent host edge (fast while density < ~90%).
        loop {
            let e = rng.random_range(0..self.host.len() as u32);
            if self.position[e as usize] == u32::MAX {
                self.position[e as usize] = self.present_list.len() as u32;
                self.present_list.push(e);
                let (u, v) = self.host[e as usize];
                return Update::Insert(VertexId(u), VertexId(v));
            }
        }
    }

    fn delete_edge_index(&mut self, e: u32) -> Update {
        let pos = self.position[e as usize];
        debug_assert_ne!(pos, u32::MAX);
        self.present_list.swap_remove(pos as usize);
        if (pos as usize) < self.present_list.len() {
            let moved = self.present_list[pos as usize];
            self.position[moved as usize] = pos;
        }
        self.position[e as usize] = u32::MAX;
        let (u, v) = self.host[e as usize];
        Update::Delete(VertexId(u), VertexId(v))
    }

    fn delete_random(&mut self, rng: &mut dyn rand::RngCore) -> Update {
        debug_assert!(self.present() > 0);
        let i = rng.random_range(0..self.present_list.len());
        let e = self.present_list[i];
        self.delete_edge_index(e)
    }

    fn delete_matched(&mut self, output: &Matching, rng: &mut dyn rand::RngCore) -> Update {
        // Collect present matched edges; fall back to a random deletion.
        let matched: Vec<u32> = self
            .present_list
            .iter()
            .copied()
            .filter(|&e| {
                let (u, v) = self.host[e as usize];
                output.mate(VertexId(u)) == Some(VertexId(v))
            })
            .collect();
        if matched.is_empty() {
            return self.delete_random(rng);
        }
        let e = matched[rng.random_range(0..matched.len())];
        self.delete_edge_index(e)
    }
}

impl Adversary for StreamAdversary {
    fn next(&mut self, output: &Matching, rng: &mut dyn rand::RngCore) -> Update {
        let (p_insert, adaptive) = match self.policy {
            Policy::Oblivious { p_insert } => (p_insert, false),
            Policy::AdaptiveDeleteMatched { p_insert } => (p_insert, true),
        };
        let can_insert = self.absent() > 0;
        let can_delete = self.present() > 0;
        let do_insert = match (can_insert, can_delete) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => rng.random_bool(p_insert),
            (false, false) => panic!("host graph has no edges"),
        };
        if do_insert {
            self.insert_random(rng)
        } else if adaptive {
            self.delete_matched(output, rng)
        } else {
            self.delete_random(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::clique;

    #[test]
    fn stream_stays_within_host() {
        let host = clique(10);
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 0.7 });
        let mut rng = StdRng::seed_from_u64(1);
        let output = Matching::new(10);
        let mut present = std::collections::HashSet::new();
        for _ in 0..2000 {
            match adv.next(&output, &mut rng) {
                Update::Insert(u, v) => {
                    assert!(host.has_edge(u, v));
                    assert!(
                        present.insert((u.0.min(v.0), u.0.max(v.0))),
                        "double insert"
                    );
                }
                Update::Delete(u, v) => {
                    assert!(
                        present.remove(&(u.0.min(v.0), u.0.max(v.0))),
                        "phantom delete"
                    );
                }
            }
            assert_eq!(present.len(), adv.present());
        }
    }

    #[test]
    fn adaptive_targets_matched_edges() {
        let host = clique(8);
        let mut adv = StreamAdversary::new(&host, Policy::AdaptiveDeleteMatched { p_insert: 1.0 });
        let mut rng = StdRng::seed_from_u64(2);
        // p_insert = 1 fills the host; once saturated the adversary is
        // forced to delete, and must hit the matched pair.
        let m = Matching::from_pairs(8, [(VertexId(0), VertexId(1))]);
        while adv.absent() > 0 {
            assert!(matches!(adv.next(&m, &mut rng), Update::Insert(..)));
        }
        match adv.next(&m, &mut rng) {
            Update::Delete(u, v) => {
                assert_eq!((u.0.min(v.0), u.0.max(v.0)), (0, 1));
            }
            other => panic!("expected delete, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_flips_direction() {
        let host = clique(4); // 6 edges
        let mut adv = StreamAdversary::new(&host, Policy::Oblivious { p_insert: 1.0 });
        let mut rng = StdRng::seed_from_u64(3);
        let output = Matching::new(4);
        for _ in 0..6 {
            assert!(matches!(adv.next(&output, &mut rng), Update::Insert(..)));
        }
        // Host saturated: forced to delete despite p_insert = 1.
        assert!(matches!(adv.next(&output, &mut rng), Update::Delete(..)));
    }
}
