//! A genuinely time-sliced dynamic matcher: the worst-case variant of the
//! Gupta–Peng scheme with the static computation executed as an explicit
//! resumable state machine, a bounded quantum of which runs inside each
//! update.
//!
//! [`crate::scheme::DynamicMatcher`] measures the same algorithm by
//! *attributing* the (eagerly computed) static work evenly over the
//! window — exact for accounting, but the computation itself is not
//! interruptible. [`SlicedComputation`] here is: the pipeline
//! (mark → build → greedy → bounded augmentation) is decomposed into
//! resumable phases, and [`WorstCaseDynamicMatcher::apply`] advances it
//! by at most `budget` work units per update. The realized per-update
//! work is therefore `budget` plus the largest *atomic* quantum (the CSR
//! layout step and one blossom search are not interruptible mid-flight —
//! the instruction-level slicing of the theory paper would cut those too,
//! at no asymptotic gain since both are `O(|E(G_Δ)|)`).

use crate::adversary::Update;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sampler::{mark_indices_for_vertex, PosArraySampler};
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::blossom::BlossomSearcher;
use sparsimatch_matching::bounded_aug::max_path_len_for_eps;
use sparsimatch_matching::Matching;

/// A resumable static `(1+ε/4)`-matching computation over a snapshot.
pub struct SlicedComputation {
    snapshot: CsrGraph,
    params: SparsifierParams,
    phase: Phase,
    marks: Vec<(u32, u32)>,
    sparse: Option<CsrGraph>,
    rng: StdRng,
    /// Total work units consumed so far.
    pub work_done: u64,
}

enum Phase {
    Marking {
        next_vertex: usize,
        sampler: PosArraySampler,
    },
    Build,
    Greedy {
        next_edge: usize,
        matching: Matching,
    },
    Augment {
        searcher: Box<BlossomSearcher>,
        cap: u32,
        max_cap: u32,
        bulk_exhausted: bool,
        certify_cursor: usize,
        certify_progress: bool,
        last_work: u64,
    },
    Done(Matching),
    Taken,
}

impl SlicedComputation {
    /// Start a computation over a snapshot of the current graph.
    pub fn new(snapshot: CsrGraph, params: SparsifierParams, seed: u64) -> Self {
        let max_deg = snapshot.max_degree();
        SlicedComputation {
            snapshot,
            params,
            phase: Phase::Marking {
                next_vertex: 0,
                sampler: PosArraySampler::new(max_deg.max(1)),
            },
            marks: Vec::new(),
            sparse: None,
            rng: StdRng::seed_from_u64(seed),
            work_done: 0,
        }
    }

    /// Is the result ready?
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }

    /// Take the finished matching (panics if not done).
    pub fn take_result(&mut self) -> Matching {
        match std::mem::replace(&mut self.phase, Phase::Taken) {
            Phase::Done(m) => m,
            _ => panic!("take_result before completion"),
        }
    }

    /// Advance by roughly `budget` work units; returns the units actually
    /// consumed (may exceed the budget by one atomic quantum).
    pub fn step(&mut self, budget: u64) -> u64 {
        let mut spent = 0u64;
        while spent < budget {
            match &mut self.phase {
                Phase::Marking {
                    next_vertex,
                    sampler,
                } => {
                    let n = self.snapshot.num_vertices();
                    if *next_vertex >= n {
                        self.phase = Phase::Build;
                        continue;
                    }
                    let v = VertexId::new(*next_vertex);
                    *next_vertex += 1;
                    let deg = self.snapshot.degree(v);
                    if deg == 0 {
                        continue; // isolated vertices are free to skip
                    }
                    let mut indices = Vec::new();
                    mark_indices_for_vertex(
                        &self.snapshot,
                        v,
                        self.params.delta,
                        self.params.mark_cap(),
                        sampler,
                        &mut self.rng,
                        &mut indices,
                    );
                    for &i in &indices {
                        self.marks
                            .push((v.0, self.snapshot.neighbor(v, i as usize).0));
                    }
                    spent += deg.min(self.params.mark_cap()) as u64 + 1;
                }
                Phase::Build => {
                    // Atomic quantum: lay out the sparsifier CSR.
                    let mut b =
                        GraphBuilder::with_capacity(self.snapshot.num_vertices(), self.marks.len());
                    for &(u, v) in &self.marks {
                        b.add_edge(VertexId(u), VertexId(v));
                    }
                    let sparse = b.build();
                    spent += self.marks.len() as u64 + 1;
                    self.marks.clear();
                    let matching = Matching::new(sparse.num_vertices());
                    self.sparse = Some(sparse);
                    self.phase = Phase::Greedy {
                        next_edge: 0,
                        matching,
                    };
                }
                Phase::Greedy {
                    next_edge,
                    matching,
                } => {
                    let sparse = self.sparse.as_ref().expect("built");
                    let m = sparse.num_edges();
                    let end = (*next_edge + (budget - spent) as usize).min(m);
                    for e in *next_edge..end {
                        let (u, v) = sparse.edge_endpoints(sparsimatch_graph::ids::EdgeId::new(e));
                        matching.add_pair(u, v);
                    }
                    spent += (end - *next_edge) as u64;
                    *next_edge = end;
                    if *next_edge >= m {
                        let stage_eps = self.params.eps / 4.0;
                        let max_cap = max_path_len_for_eps(stage_eps) as u32;
                        let searcher = Box::new(BlossomSearcher::new(matching));
                        self.phase = Phase::Augment {
                            last_work: searcher.work(),
                            searcher,
                            cap: 1,
                            max_cap,
                            bulk_exhausted: false,
                            certify_cursor: 0,
                            certify_progress: false,
                        };
                    }
                }
                Phase::Augment {
                    searcher,
                    cap,
                    max_cap,
                    bulk_exhausted,
                    certify_cursor,
                    certify_progress,
                    last_work,
                } => {
                    let sparse = self.sparse.as_ref().expect("built");
                    if !*bulk_exhausted {
                        // One multi-source forest search = one quantum.
                        let found = searcher.try_augment_any(sparse, *cap);
                        let w = searcher.work();
                        spent += w - *last_work + 1;
                        *last_work = w;
                        if !found {
                            if *cap >= *max_cap {
                                *bulk_exhausted = true;
                            } else {
                                *cap += 2;
                            }
                        }
                    } else {
                        // Certification sweep: one single-root search per
                        // quantum.
                        let n = sparse.num_vertices();
                        while *certify_cursor < n {
                            let v = VertexId::new(*certify_cursor);
                            if !searcher.is_free_vertex(v) || sparse.degree(v) == 0 {
                                *certify_cursor += 1;
                                continue;
                            }
                            break;
                        }
                        if *certify_cursor >= n {
                            if *certify_progress {
                                *certify_cursor = 0;
                                *certify_progress = false;
                                continue;
                            }
                            let m = std::mem::replace(
                                searcher,
                                Box::new(BlossomSearcher::new(&Matching::new(0))),
                            )
                            .into_matching();
                            self.phase = Phase::Done(m);
                            continue;
                        }
                        let v = VertexId::new(*certify_cursor);
                        *certify_cursor += 1;
                        if searcher.try_augment(sparse, v, *max_cap) {
                            *certify_progress = true;
                        }
                        let w = searcher.work();
                        spent += w - *last_work + 1;
                        *last_work = w;
                    }
                }
                Phase::Done(_) | Phase::Taken => break,
            }
        }
        self.work_done += spent;
        spent
    }
}

/// The worst-case dynamic matcher: identical guarantees to
/// [`crate::scheme::DynamicMatcher`], but the background computation is
/// physically interleaved with updates via [`SlicedComputation`].
pub struct WorstCaseDynamicMatcher {
    graph: AdjListGraph,
    params: SparsifierParams,
    output: Matching,
    computation: Option<SlicedComputation>,
    /// Deletions recorded during the current window (pruned from the
    /// pending result at publish time, O(1) each).
    window_deletions: Vec<(VertexId, VertexId)>,
    window_left: usize,
    budget: u64,
    seed_counter: u64,
    base_seed: u64,
}

impl WorstCaseDynamicMatcher {
    /// A matcher over `n` vertices, initially edgeless.
    pub fn new(n: usize, params: SparsifierParams, seed: u64) -> Self {
        WorstCaseDynamicMatcher {
            graph: AdjListGraph::new(n),
            params,
            output: Matching::new(n),
            computation: None,
            window_deletions: Vec::new(),
            window_left: 1,
            budget: 1,
            seed_counter: 0,
            base_seed: seed,
        }
    }

    /// The served matching.
    pub fn matching(&self) -> &Matching {
        &self.output
    }

    /// The current graph.
    pub fn graph(&self) -> &AdjListGraph {
        &self.graph
    }

    /// The per-update quantum budget currently in force.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Apply one update; returns the work units charged to it.
    pub fn apply(&mut self, update: Update) -> u64 {
        let mut work = 1u64;
        match update {
            Update::Insert(u, v) => {
                self.graph.insert_edge(u, v);
            }
            Update::Delete(u, v) => {
                self.graph.delete_edge(u, v);
                if self.output.mate(u) == Some(v) {
                    self.output.remove_pair(u);
                    work += 1;
                }
                self.window_deletions.push((u, v));
            }
        }
        // Advance the background computation by one quantum budget.
        if let Some(c) = &mut self.computation {
            work += c.step(self.budget);
        }
        self.window_left = self.window_left.saturating_sub(1);
        if self.window_left == 0 {
            let finished = self.computation.as_ref().is_some_and(|c| c.is_done());
            if self.computation.is_none() || finished {
                // Publish (if there is something to publish) and restart.
                if finished {
                    let mut fresh = self.computation.take().unwrap().take_result();
                    for &(u, v) in &self.window_deletions {
                        if fresh.mate(u) == Some(v) {
                            fresh.remove_pair(u);
                            work += 1;
                        }
                    }
                    self.output = fresh;
                }
                self.window_deletions.clear();
                self.start_window();
            }
            // else: computation still running — serve the stale matching
            // for another beat (Lemma 3.4 absorbs the slack; with the
            // theory budget this does not happen asymptotically).
        }
        work
    }

    fn start_window(&mut self) {
        self.seed_counter += 1;
        let snapshot = self.graph.to_csr();
        // Estimated static work: marking + sparsifier + augmentation,
        // all O(|E(G_Δ)|/ε) with |E(G_Δ)| ≤ naive n'·cap; window is the
        // Gupta–Peng ε/4·|M| length. The ratio is the Theorem 3.5 budget.
        let window =
            (((self.params.eps / 4.0) * self.output.len().max(1) as f64).floor() as usize).max(1);
        let non_isolated = snapshot.num_non_isolated().max(1);
        let est_sparse = (non_isolated * self.params.mark_cap()).max(1) as u64;
        let est_work = est_sparse * (2 + (8.0 / self.params.eps) as u64);
        self.budget = est_work.div_ceil(window as u64).max(1);
        self.computation = Some(SlicedComputation::new(
            snapshot,
            self.params,
            self.base_seed ^ self.seed_counter.wrapping_mul(0x9E3779B97F4A7C15),
        ));
        self.window_left = window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    fn insert(u: usize, v: usize) -> Update {
        Update::Insert(VertexId::new(u), VertexId::new(v))
    }

    #[test]
    fn sliced_computation_matches_unsliced_result_quality() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = clique_union(
            CliqueUnionConfig {
                n: 120,
                diversity: 2,
                clique_size: 24,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.4);
        let mut c = SlicedComputation::new(g.clone(), params, 5);
        // Drive with a small budget so every phase gets sliced repeatedly.
        let mut steps = 0;
        while !c.is_done() {
            c.step(50);
            steps += 1;
            assert!(steps < 1_000_000, "computation must terminate");
        }
        let m = c.take_result();
        assert!(m.is_valid_for(&g));
        let exact = maximum_matching(&g).len();
        assert!(
            m.len() as f64 * 1.4 >= exact as f64,
            "{} vs {exact}",
            m.len()
        );
        assert!(steps > 10, "budget 50 must actually slice the work");
    }

    #[test]
    fn step_respects_budget_modulo_one_quantum() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 25,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.5);
        let mut c = SlicedComputation::new(g.clone(), params, 7);
        let sparse_bound = (g.num_non_isolated() * params.mark_cap()) as u64;
        while !c.is_done() {
            let spent = c.step(100);
            // One atomic quantum is at most ~the sparsifier size.
            assert!(
                spent <= 100 + 2 * sparse_bound,
                "quantum overdraft too large: {spent}"
            );
        }
    }

    #[test]
    fn worst_case_matcher_serves_valid_accurate_matchings() {
        let mut rng = StdRng::seed_from_u64(3);
        let host = clique_union(
            CliqueUnionConfig {
                n: 80,
                diversity: 2,
                clique_size: 16,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = WorstCaseDynamicMatcher::new(80, params, 9);
        let edges: Vec<(u32, u32)> = host.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        // Insert everything, with interleaved deletes of random present
        // edges.
        let mut present = Vec::new();
        for (i, &(u, v)) in edges.iter().enumerate() {
            dm.apply(insert(u as usize, v as usize));
            present.push((u, v));
            if i % 7 == 6 {
                let k = rng.random_range(0..present.len());
                let (a, b) = present.swap_remove(k);
                dm.apply(Update::Delete(VertexId(a), VertexId(b)));
            }
            if i % 50 == 49 {
                let snap = dm.graph().to_csr();
                assert!(dm.matching().is_valid_for(&snap), "step {i}");
            }
        }
        let snap = dm.graph().to_csr();
        assert!(dm.matching().is_valid_for(&snap));
        let exact = maximum_matching(&snap).len();
        assert!(
            dm.matching().len() as f64 * 2.0 >= exact as f64,
            "served {} vs exact {exact}",
            dm.matching().len()
        );
    }

    #[test]
    fn per_update_work_stays_near_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        let host = clique_union(
            CliqueUnionConfig {
                n: 150,
                diversity: 2,
                clique_size: 30,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = WorstCaseDynamicMatcher::new(150, params, 11);
        let mut max_work = 0u64;
        let mut max_budget = 0u64;
        for (_, u, v) in host.edges() {
            let w = dm.apply(insert(u.index(), v.index()));
            max_work = max_work.max(w);
            max_budget = max_budget.max(dm.budget());
        }
        // Realized per-update work is the budget plus at most one atomic
        // quantum (bounded by the sparsifier size).
        let sparse_bound = (150 * params.mark_cap()) as u64;
        assert!(
            max_work <= max_budget + 3 * sparse_bound,
            "max work {max_work} vs budget {max_budget} + quantum {sparse_bound}"
        );
    }
}
