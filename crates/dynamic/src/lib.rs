#![warn(missing_docs)]

//! Fully dynamic `(1+ε)`-approximate maximum matching (Theorem 3.5).
//!
//! The scheme combines the random sparsifier with the Gupta–Peng stability
//! window (Lemma 3.4): a `(1+ε/4)`-approximate matching computed at update
//! step `t` stays `(1+ε)`-approximate for the next `⌊ε/4·|M_t|⌋` steps,
//! provided edges deleted from the graph are pruned from it (an O(1)
//! operation per deletion). The static `(1+ε/4)` computation over the
//! sparsifier costs `O(|MCM|·(β/ε²)·log(1/ε))` work (Theorem 3.1), which
//! amortizes — and, time-sliced across the window, *worst-cases* — to
//! `O((β/ε³)·log(1/ε))` per update. Crucially the approximation guarantee
//! survives an **adaptive** adversary: each static computation uses fresh
//! randomness on a snapshot the adversary had already committed to, and the
//! window re-use argument (Lemma 3.4) is deterministic.
//!
//! Modules:
//! * [`scheme`] — the Theorem 3.5 matcher with explicit work accounting;
//! * [`adversary`] — oblivious and adaptive update streams over a β-bounded
//!   host graph;
//! * [`baselines`] — naive full recompute and a Barenboim–Maimon-style
//!   `O(√(βn))` dynamic maximal matching comparator;
//! * [`harness`] — drives streams, records per-update work, audits the
//!   approximation ratio against exact recomputation.

pub mod adversary;
pub mod baselines;
pub mod harness;
pub mod oblivious;
pub mod scheme;
pub mod sliced;

pub use adversary::{Adversary, StreamAdversary, Update};
pub use scheme::{DynamicMatcher, UpdateReport};
pub use sliced::{SlicedComputation, WorstCaseDynamicMatcher};
