//! The *oblivious-adversary* dynamic sparsifier of Section 3.3's opening
//! paragraph.
//!
//! Against an adversary that cannot see the algorithm's coins, the
//! sparsifier itself can be maintained directly: after each update
//! `(u, v)`, discard the marks of `u` and of `v` and draw fresh ones —
//! `O(Δ)` worst-case work. Every vertex's marks are always a uniform
//! sample of its *current* neighborhood (any change to a vertex's
//! incident edges makes it an update endpoint, hence resampled), so at
//! every time step the maintained edge set is exactly `G_Δ`-distributed
//! and Theorem 2.1 applies verbatim — provided the update sequence was
//! fixed in advance. An adaptive adversary breaks this (it can observe
//! the output and steer; that is why Theorem 3.5's windowed scheme in
//! [`crate::scheme`] exists), which the test
//! `adaptive_adversary_breaks_naive_maintenance_assumption` demonstrates
//! is not merely hypothetical bookkeeping.

use rand::seq::index::sample;
use rand::Rng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::adjlist::AdjListGraph;
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::ids::VertexId;
use std::collections::HashMap;

/// Maintains `G_Δ` under edge updates with `O(Δ)` worst-case work per
/// update (oblivious adversary model).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_dynamic::oblivious::ObliviousDynamicSparsifier;
/// use sparsimatch_graph::ids::VertexId;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut s = ObliviousDynamicSparsifier::new(4, SparsifierParams::practical(1, 0.5));
/// s.insert_edge(VertexId(0), VertexId(1), &mut rng);
/// s.insert_edge(VertexId(2), VertexId(3), &mut rng);
/// assert_eq!(s.sparsifier_edges(), 2); // low degrees keep everything
/// s.delete_edge(VertexId(0), VertexId(1), &mut rng);
/// assert_eq!(s.sparsifier_edges(), 1);
/// assert!(s.check_invariants());
/// ```
pub struct ObliviousDynamicSparsifier {
    graph: AdjListGraph,
    params: SparsifierParams,
    /// Current marks of each vertex (neighbor ids).
    marks: Vec<Vec<u32>>,
    /// Mark multiplicity per undirected edge (1 or 2 sides).
    marked_edges: HashMap<(u32, u32), u8>,
}

impl ObliviousDynamicSparsifier {
    /// An empty maintained sparsifier over `n` vertices.
    pub fn new(n: usize, params: SparsifierParams) -> Self {
        ObliviousDynamicSparsifier {
            graph: AdjListGraph::new(n),
            params,
            marks: vec![Vec::new(); n],
            marked_edges: HashMap::new(),
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &AdjListGraph {
        &self.graph
    }

    /// Number of distinct edges currently in the maintained sparsifier.
    pub fn sparsifier_edges(&self) -> usize {
        self.marked_edges.len()
    }

    /// Insert edge `{u, v}`; returns the work units spent (O(Δ)).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, rng: &mut impl Rng) -> u64 {
        if !self.graph.insert_edge(u, v) {
            return 1;
        }
        1 + self.resample(u, rng) + self.resample(v, rng)
    }

    /// Delete edge `{u, v}`; returns the work units spent (O(Δ)).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId, rng: &mut impl Rng) -> u64 {
        if !self.graph.delete_edge(u, v) {
            return 1;
        }
        1 + self.resample(u, rng) + self.resample(v, rng)
    }

    fn edge_key(u: VertexId, v: VertexId) -> (u32, u32) {
        (u.0.min(v.0), u.0.max(v.0))
    }

    /// Discard `v`'s marks and draw fresh ones from its current
    /// neighborhood; O(mark_cap) work.
    fn resample(&mut self, v: VertexId, rng: &mut impl Rng) -> u64 {
        let mut work = 0u64;
        // Remove old marks.
        let old = std::mem::take(&mut self.marks[v.index()]);
        for w in old {
            work += 1;
            let key = Self::edge_key(v, VertexId(w));
            if let Some(count) = self.marked_edges.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    self.marked_edges.remove(&key);
                }
            }
        }
        // Fresh marks from the current adjacency.
        let deg = self.graph.degree(v);
        let fresh: Vec<u32> = if deg <= self.params.mark_cap() {
            (0..deg).map(|i| self.graph.neighbor(v, i).0).collect()
        } else {
            sample(rng, deg, self.params.delta)
                .into_iter()
                .map(|i| self.graph.neighbor(v, i).0)
                .collect()
        };
        for &w in &fresh {
            work += 1;
            let key = Self::edge_key(v, VertexId(w));
            *self.marked_edges.entry(key).or_insert(0) += 1;
        }
        self.marks[v.index()] = fresh;
        work
    }

    /// Snapshot the maintained sparsifier as a CSR graph.
    pub fn sparsifier_graph(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.graph.num_vertices(), self.marked_edges.len());
        for &(u, v) in self.marked_edges.keys() {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.build()
    }

    /// Audit invariant: every vertex holds exactly `min(deg, cap or Δ)`
    /// marks, all of current neighbors, and the edge multiset matches.
    pub fn check_invariants(&self) -> bool {
        let n = self.graph.num_vertices();
        let mut recount: HashMap<(u32, u32), u8> = HashMap::new();
        for v in 0..n {
            let vid = VertexId::new(v);
            let deg = self.graph.degree(vid);
            let expected = if deg <= self.params.mark_cap() {
                deg
            } else {
                self.params.delta
            };
            if self.marks[v].len() != expected {
                return false;
            }
            let mut distinct = self.marks[v].clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != self.marks[v].len() {
                return false;
            }
            for &w in &self.marks[v] {
                if !self.graph.has_edge(vid, VertexId(w)) {
                    return false;
                }
                *recount.entry(Self::edge_key(vid, VertexId(w))).or_insert(0) += 1;
            }
        }
        recount == self.marked_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    fn params() -> SparsifierParams {
        SparsifierParams::practical(2, 0.4)
    }

    #[test]
    fn invariants_hold_along_random_streams() {
        let mut rng = StdRng::seed_from_u64(1);
        let host = clique_union(
            CliqueUnionConfig {
                n: 60,
                diversity: 2,
                clique_size: 12,
            },
            &mut rng,
        );
        let mut s = ObliviousDynamicSparsifier::new(60, params());
        let edges: Vec<(u32, u32)> = host.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let mut present: Vec<(u32, u32)> = Vec::new();
        for (i, &(u, v)) in edges.iter().enumerate() {
            s.insert_edge(VertexId(u), VertexId(v), &mut rng);
            present.push((u, v));
            if i % 5 == 4 {
                let k = rng.random_range(0..present.len());
                let (a, b) = present.swap_remove(k);
                s.delete_edge(VertexId(a), VertexId(b), &mut rng);
            }
            if i % 40 == 39 {
                assert!(s.check_invariants(), "step {i}");
            }
        }
        assert!(s.check_invariants());
    }

    #[test]
    fn sparsifier_preserves_matching_under_oblivious_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let host = clique(100);
        let mut s = ObliviousDynamicSparsifier::new(100, SparsifierParams::practical(1, 0.4));
        for (_, u, v) in host.edges() {
            s.insert_edge(u, v, &mut rng);
        }
        let sparse = s.sparsifier_graph();
        let mcm = maximum_matching(&sparse).len();
        assert!(
            mcm as f64 * 1.4 >= 50.0,
            "maintained sparsifier lost the matching: {mcm}"
        );
        // And it is a subgraph of the current graph.
        let snapshot = s.graph().to_csr();
        for (_, u, v) in sparse.edges() {
            assert!(snapshot.has_edge(u, v));
        }
    }

    #[test]
    fn update_work_is_bounded_by_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        let host = clique(200);
        let p = SparsifierParams::practical(1, 0.4);
        let mut s = ObliviousDynamicSparsifier::new(200, p);
        let mut max_work = 0u64;
        for (_, u, v) in host.edges() {
            max_work = max_work.max(s.insert_edge(u, v, &mut rng));
        }
        // Each update resamples two vertices: <= 2·(old + fresh) + 1
        // <= 4·cap + 1.
        assert!(
            max_work <= 4 * p.mark_cap() as u64 + 1,
            "work {max_work} above O(Δ) bound"
        );
    }

    #[test]
    fn deletions_remove_stale_marks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = ObliviousDynamicSparsifier::new(4, params());
        s.insert_edge(VertexId(0), VertexId(1), &mut rng);
        s.insert_edge(VertexId(1), VertexId(2), &mut rng);
        assert_eq!(s.sparsifier_edges(), 2, "low degree keeps everything");
        s.delete_edge(VertexId(0), VertexId(1), &mut rng);
        assert_eq!(s.sparsifier_edges(), 1);
        assert!(s.check_invariants());
        let sparse = s.sparsifier_graph();
        assert!(!sparse.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn duplicate_operations_are_cheap_noops() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ObliviousDynamicSparsifier::new(3, params());
        assert!(s.insert_edge(VertexId(0), VertexId(1), &mut rng) > 1);
        assert_eq!(s.insert_edge(VertexId(0), VertexId(1), &mut rng), 1);
        assert_eq!(s.delete_edge(VertexId(1), VertexId(2), &mut rng), 1);
    }

    /// The reason Theorem 3.5 does NOT rely on this maintainer: an
    /// adaptive adversary that observes the coins can *steer the mark
    /// distribution*. Concretely, by deleting-and-reinserting one fixed
    /// edge whenever it is currently unmarked (an adaptive choice — an
    /// oblivious sequence cannot condition on the marks), the adversary
    /// drives `P[e ∈ G_Δ]` from its stationary `≈ 2Δ/deg` to essentially
    /// 1, violating the uniform-marking premise of Theorem 2.1's proof.
    #[test]
    fn adaptive_adversary_breaks_naive_maintenance_assumption() {
        let mut rng = StdRng::seed_from_u64(6);
        let host = clique(40);
        let p = SparsifierParams::with_delta(1, 0.5, 2); // cap 4 << deg 39
        let (a, b) = (VertexId(0), VertexId(1));
        let key = (0u32, 1u32);

        // Stationary (oblivious) marking rate of the fixed edge.
        let trials = 400;
        let mut marked = 0usize;
        for _ in 0..trials {
            let mut s = ObliviousDynamicSparsifier::new(40, p);
            for (_, u, v) in host.edges() {
                s.insert_edge(u, v, &mut rng);
            }
            marked += s.marked_edges.contains_key(&key) as usize;
        }
        let oblivious_rate = marked as f64 / trials as f64;
        assert!(
            oblivious_rate < 0.5,
            "stationary rate should be ~2Δ/deg ≈ 0.1, got {oblivious_rate}"
        );

        // Adaptive steering: churn e whenever it is unmarked.
        let mut s = ObliviousDynamicSparsifier::new(40, p);
        for (_, u, v) in host.edges() {
            s.insert_edge(u, v, &mut rng);
        }
        for _ in 0..200 {
            if s.marked_edges.contains_key(&key) {
                break;
            }
            s.delete_edge(a, b, &mut rng);
            s.insert_edge(a, b, &mut rng);
        }
        assert!(
            s.marked_edges.contains_key(&key),
            "the adaptive strategy pins the edge into the sparsifier"
        );
        assert!(s.check_invariants());
    }
}
